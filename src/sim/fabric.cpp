#include "sim/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

#include "core/strings.hpp"

namespace hpcmon::sim {

using core::Duration;
using core::JobId;
using core::LogEvent;
using core::LogFacility;
using core::Severity;
using core::TimePoint;

const std::vector<int> Fabric::kEmptyRoute{};

Fabric::Fabric(const Topology& topo, const FabricParams& params, core::Rng rng)
    : topo_(topo), params_(params), rng_(rng) {
  links_.resize(topo.num_links());
  node_injection_.assign(topo.num_nodes(), 0.0);
}

void Fabric::set_job_flows(JobId job, std::vector<Flow> flows) {
  if (flows.empty()) {
    flows_.erase(job);
  } else {
    flows_[job] = std::move(flows);
  }
}

void Fabric::clear_job_flows(JobId job) { flows_.erase(job); }

double Fabric::capacity(int link_index) const {
  return topo_.link(link_index).global ? params_.global_link_capacity_gbps
                                       : params_.link_capacity_gbps;
}

const std::vector<int>& Fabric::route_routers(int src_router, int dst_router) {
  const auto key = static_cast<std::uint64_t>(src_router) *
                       static_cast<std::uint64_t>(topo_.num_routers()) +
                   static_cast<std::uint64_t>(dst_router);
  if (auto it = route_cache_.find(key); it != route_cache_.end()) {
    return it->second;
  }
  // BFS over up links gives minimal hop-count routes on both fabrics and
  // naturally reroutes around downed links.
  std::vector<int> prev_link(topo_.num_routers(), -1);
  std::vector<char> seen(topo_.num_routers(), 0);
  std::deque<int> frontier{src_router};
  seen[src_router] = 1;
  bool found = src_router == dst_router;
  while (!frontier.empty() && !found) {
    const int r = frontier.front();
    frontier.pop_front();
    for (int li : topo_.links_from(r)) {
      if (!links_[li].up) continue;
      const int nr = topo_.link(li).dst_router;
      if (seen[nr]) continue;
      seen[nr] = 1;
      prev_link[nr] = li;
      if (nr == dst_router) {
        found = true;
        break;
      }
      frontier.push_back(nr);
    }
  }
  std::vector<int> path;
  if (found) {
    int r = dst_router;
    while (r != src_router) {
      const int li = prev_link[r];
      assert(li >= 0);
      path.push_back(li);
      r = topo_.link(li).src_router;
    }
    std::reverse(path.begin(), path.end());
  }
  return route_cache_.emplace(key, std::move(path)).first->second;
}

const std::vector<int>& Fabric::route(int src_node, int dst_node) {
  return route_routers(topo_.router_of_node(src_node),
                       topo_.router_of_node(dst_node));
}

void Fabric::tick(TimePoint now, Duration dt, std::vector<LogEvent>& log_out) {
  const double dt_s = core::to_seconds(dt);

  // Pass 1: accumulate raw demand per link and per source NIC.
  for (auto& l : links_) {
    l.demand_gbps = 0.0;
    l.carried_gbps = 0.0;
  }
  std::vector<double> nic_demand(node_injection_.size(), 0.0);
  for (const auto& [job, flows] : flows_) {
    for (const auto& f : flows) {
      nic_demand[f.src_node] += f.gbps;
      for (int li : route(f.src_node, f.dst_node)) {
        links_[li].demand_gbps += f.gbps;
      }
    }
  }

  // Pass 2: per-flow delivered fraction = min bottleneck share along the
  // path (including the source NIC); re-accumulate carried bandwidth.
  std::fill(node_injection_.begin(), node_injection_.end(), 0.0);
  for (const auto& [job, flows] : flows_) {
    for (const auto& f : flows) {
      double fraction = 1.0;
      if (nic_demand[f.src_node] > params_.injection_capacity_gbps) {
        fraction = std::min(
            fraction, params_.injection_capacity_gbps / nic_demand[f.src_node]);
      }
      const auto& path = route(f.src_node, f.dst_node);
      if (path.empty() && f.src_node != f.dst_node &&
          topo_.router_of_node(f.src_node) != topo_.router_of_node(f.dst_node)) {
        fraction = 0.0;  // unreachable (partitioned by down links)
      }
      for (int li : path) {
        const double cap = capacity(li);
        if (links_[li].demand_gbps > cap) {
          fraction = std::min(fraction, cap / links_[li].demand_gbps);
        }
      }
      const double carried = f.gbps * fraction;
      node_injection_[f.src_node] += carried;
      for (int li : path) links_[li].carried_gbps += carried;
    }
  }

  // Pass 3: link state + counters + error processes.
  for (std::size_t i = 0; i < links_.size(); ++i) {
    auto& l = links_[i];
    const double cap = capacity(static_cast<int>(i));
    l.utilization = l.carried_gbps / cap;
    l.stall_rate = l.demand_gbps > cap ? (l.demand_gbps - cap) / cap : 0.0;
    l.traffic_bytes += l.carried_gbps * 1e9 / 8.0 * dt_s;
    l.stalls += l.stall_rate * dt_s * 1e6;  // stall events ~ microsec scale
    const double bits = l.carried_gbps * 1e9 * dt_s;
    const double mean_errors = bits * params_.base_ber * l.ber_multiplier;
    if (mean_errors > 0.0) {
      const auto errs = rng_.poisson(mean_errors);
      if (errs > 0) {
        l.bit_errors += static_cast<double>(errs);
        if (mean_errors > 1.0 || errs > 2) {
          log_out.push_back(
              {now, now, topo_.link(static_cast<int>(i)).component,
               LogFacility::kNetwork, Severity::kWarning, core::kNoJob,
               core::strformat("HSN link CRC retry count %lld",
                               static_cast<long long>(errs))});
        }
      }
    }
    if (l.stall_rate > 1.0) {
      log_out.push_back({now, now, topo_.link(static_cast<int>(i)).component,
                         LogFacility::kNetwork, Severity::kNotice, core::kNoJob,
                         core::strformat("HSN throttle: demand %.1fx capacity",
                                         l.demand_gbps / cap)});
    }
  }
}

double Fabric::job_path_stall(JobId job) const {
  auto it = flows_.find(job);
  if (it == flows_.end() || it->second.empty()) return 0.0;
  double total = 0.0;
  int count = 0;
  for (const auto& f : it->second) {
    const auto key = static_cast<std::uint64_t>(topo_.router_of_node(f.src_node)) *
                         static_cast<std::uint64_t>(topo_.num_routers()) +
                     static_cast<std::uint64_t>(topo_.router_of_node(f.dst_node));
    auto rit = route_cache_.find(key);
    if (rit == route_cache_.end()) continue;
    for (int li : rit->second) {
      total += links_[li].stall_rate;
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / count;
}

double Fabric::job_delivered_fraction(JobId job) const {
  auto it = flows_.find(job);
  if (it == flows_.end() || it->second.empty()) return 1.0;
  double demand = 0.0;
  double carried = 0.0;
  for (const auto& f : it->second) {
    demand += f.gbps;
    // Recompute the flow's delivered fraction from current link states.
    const auto key = static_cast<std::uint64_t>(topo_.router_of_node(f.src_node)) *
                         static_cast<std::uint64_t>(topo_.num_routers()) +
                     static_cast<std::uint64_t>(topo_.router_of_node(f.dst_node));
    auto rit = route_cache_.find(key);
    double fraction = 1.0;
    if (rit != route_cache_.end()) {
      for (int li : rit->second) {
        const auto& l = links_[li];
        const double cap = topo_.link(li).global
                               ? params_.global_link_capacity_gbps
                               : params_.link_capacity_gbps;
        if (l.demand_gbps > cap) fraction = std::min(fraction, cap / l.demand_gbps);
      }
    }
    carried += f.gbps * fraction;
  }
  return demand == 0.0 ? 1.0 : carried / demand;
}

void Fabric::set_link_ber_multiplier(int link_index, double multiplier) {
  links_.at(link_index).ber_multiplier = multiplier;
}

void Fabric::set_link_up(int link_index, bool up) {
  if (links_.at(link_index).up != up) {
    links_.at(link_index).up = up;
    invalidate_routes();
  }
}

}  // namespace hpcmon::sim
