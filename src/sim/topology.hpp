// Physical machine model: Cray-XC-style cabinet/chassis/blade/node hierarchy
// plus an HSN router/link graph in either 3D-torus (Gemini-era XE/XK) or
// dragonfly (Aries-era XC) arrangement — the two fabrics the paper's sites
// run (Sec. II.9).
//
// Components are registered in the MetricRegistry with Cray-style cnames
// (c<cab>-0c<chassis>s<slot>n<node>) so dashboards and logs read like the
// real thing. One router serves each blade (as on XC, where four nodes share
// an Aries).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/registry.hpp"

namespace hpcmon::sim {

enum class FabricKind : std::uint8_t { kTorus3D, kDragonfly };

/// Machine size knobs. Defaults give a small but structurally faithful
/// machine (2 cabinets x 3 chassis x 8 blades x 4 nodes = 192 nodes).
struct MachineShape {
  int cabinets = 2;
  int chassis_per_cabinet = 3;
  int blades_per_chassis = 8;
  int nodes_per_blade = 4;
  /// Fraction of nodes carrying one GPU (Piz-Daint-style hybrid machine).
  double gpu_node_fraction = 0.0;
  int filesystems = 1;
  int osts_per_filesystem = 8;

  int nodes_per_chassis() const { return blades_per_chassis * nodes_per_blade; }
  int nodes_per_cabinet() const {
    return chassis_per_cabinet * nodes_per_chassis();
  }
  int total_nodes() const { return cabinets * nodes_per_cabinet(); }
  int total_blades() const {
    return cabinets * chassis_per_cabinet * blades_per_chassis;
  }
};

/// One directed HSN link between two routers.
struct LinkInfo {
  int src_router = 0;
  int dst_router = 0;
  core::ComponentId component{0};  // registered kHsnLink component
  bool global = false;             // dragonfly inter-group link
};

class Topology {
 public:
  /// Build the component tree and fabric graph, registering every component.
  Topology(core::MetricRegistry& registry, const MachineShape& shape,
           FabricKind fabric);

  const MachineShape& shape() const { return shape_; }
  FabricKind fabric_kind() const { return fabric_; }

  // -- Nodes ---------------------------------------------------------------
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  core::ComponentId node(int index) const { return nodes_.at(index); }
  /// Reverse lookup; -1 when the component is not a node.
  int node_index(core::ComponentId id) const;
  bool node_has_gpu(int node_index) const { return gpu_of_node_.at(node_index) >= 0; }
  /// GPU component for a node, or kNoComponent.
  core::ComponentId gpu_of(int node_index) const;

  int cabinet_of_node(int node_index) const;  // cabinet ordinal
  core::ComponentId cabinet(int cabinet_index) const {
    return cabinets_.at(cabinet_index);
  }
  int num_cabinets() const { return static_cast<int>(cabinets_.size()); }
  /// Nodes contained in one cabinet, in index order.
  std::vector<int> nodes_in_cabinet(int cabinet_index) const;

  // -- Routers and links ---------------------------------------------------
  int num_routers() const { return num_routers_; }
  int router_of_node(int node_index) const {
    return node_index / shape_.nodes_per_blade;
  }
  core::ComponentId router_component(int router) const {
    return routers_.at(router);
  }
  int num_links() const { return static_cast<int>(links_.size()); }
  const LinkInfo& link(int link_index) const { return links_.at(link_index); }
  /// Outgoing link indices of a router.
  const std::vector<int>& links_from(int router) const {
    return out_links_.at(router);
  }
  /// Link index from src to dst router, or -1 if not adjacent.
  int link_between(int src_router, int dst_router) const;

  /// Torus coordinate of a router (x: blade slot, y: chassis, z: cabinet).
  struct Coord {
    int x = 0, y = 0, z = 0;
  };
  Coord torus_coord(int router) const;
  /// Dragonfly group of a router (== cabinet ordinal).
  int group_of(int router) const {
    return router / (shape_.chassis_per_cabinet * shape_.blades_per_chassis);
  }

  // -- Filesystems ---------------------------------------------------------
  int num_filesystems() const { return shape_.filesystems; }
  core::ComponentId mds(int fs) const { return mds_.at(fs); }
  core::ComponentId ost(int fs, int ost_index) const {
    return osts_.at(fs).at(ost_index);
  }
  int osts_per_fs() const { return shape_.osts_per_filesystem; }

  // -- Facility ------------------------------------------------------------
  core::ComponentId system() const { return system_; }
  core::ComponentId facility_sensor() const { return facility_; }

 private:
  void build_torus_links(core::MetricRegistry& registry);
  void build_dragonfly_links(core::MetricRegistry& registry);
  int add_link(core::MetricRegistry& registry, int src, int dst, bool global);

  MachineShape shape_;
  FabricKind fabric_;
  core::ComponentId system_{0};
  core::ComponentId facility_{0};
  std::vector<core::ComponentId> cabinets_;
  std::vector<core::ComponentId> chassis_;
  std::vector<core::ComponentId> blades_;
  std::vector<core::ComponentId> nodes_;
  std::vector<core::ComponentId> routers_;
  std::vector<int> gpu_of_node_;             // -1 or index into gpus_
  std::vector<core::ComponentId> gpus_;
  std::vector<core::ComponentId> mds_;
  std::vector<std::vector<core::ComponentId>> osts_;
  std::vector<LinkInfo> links_;
  std::vector<std::vector<int>> out_links_;
  int num_routers_ = 0;
  std::uint32_t first_node_raw_ = 0;  // dense node ids for reverse lookup
};

}  // namespace hpcmon::sim
