// Batch scheduler: FCFS queue with simple backfill, pluggable placement
// policies, and health-gate hooks.
//
// Three paper threads meet here:
//  * Fig 1 / [2]: Topologically-Aware Scheduling — the kTopoAware policy
//    packs jobs onto contiguous router neighbourhoods, reducing path overlap
//    and hence congestion, which raises delivered injection bandwidth.
//  * NERSC/CSC (Sec. II.3/II.4): queue backlog is a monitored signal; the
//    scheduler exposes queue depth and emits scheduler log events.
//  * CSCS (Sec. II.5): optional pre/post-job node health checks; a node
//    failing its pre-check is replaced and quarantined so "a problem should
//    only be encountered by at most one batch job".
#pragma once

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/ids.hpp"
#include "core/log_event.hpp"
#include "core/rng.hpp"
#include "sim/apps.hpp"
#include "sim/fabric.hpp"
#include "sim/filesystem.hpp"
#include "sim/node.hpp"
#include "sim/topology.hpp"

namespace hpcmon::sim {

enum class PlacementPolicy : std::uint8_t { kFirstFit, kRandom, kTopoAware };

enum class JobState : std::uint8_t { kQueued, kRunning, kCompleted, kFailed };

struct JobRequest {
  int num_nodes = 1;
  core::Duration nominal_runtime = 10 * core::kMinute;
  AppProfile profile;
  bool needs_gpu = false;
};

struct JobRecord {
  core::JobId id = core::kNoJob;
  JobRequest request;
  core::TimePoint submit_time = 0;
  core::TimePoint start_time = -1;
  core::TimePoint end_time = -1;
  std::vector<int> nodes;           // node indices while running/after
  double progress = 0.0;            // 0..1 of nominal work
  JobState state = JobState::kQueued;
  /// Set if a node-problem probe fired on any of this job's nodes while it
  /// ran (used to evaluate the health-gate policy).
  bool saw_problem = false;
  /// Time-integral of HSN path stall experienced (congestion exposure).
  double stall_integral = 0.0;

  core::Duration actual_runtime() const {
    return (start_time >= 0 && end_time >= 0) ? end_time - start_time : -1;
  }
};

class Scheduler {
 public:
  Scheduler(const Topology& topo, Fabric& fabric, FsModel& fs,
            PlacementPolicy policy, core::Rng rng);

  core::JobId submit(core::TimePoint now, JobRequest request);

  /// Phase A of a tick: project running jobs' demand onto node states, the
  /// fabric, and the filesystem (call before Fabric::tick / FsModel::tick).
  void apply_loads(core::TimePoint now, std::vector<NodeState>& nodes);

  /// Phase B: read congestion/latency results, advance job progress,
  /// complete/fail jobs, then start queued jobs onto free nodes.
  void advance(core::TimePoint now, core::Duration dt,
               std::vector<NodeState>& nodes,
               std::vector<core::LogEvent>& log_out);

  int queue_depth() const { return static_cast<int>(queue_.size()); }
  int running_count() const { return static_cast<int>(running_.size()); }
  const JobRecord* job(core::JobId id) const;
  std::vector<core::JobId> running_jobs() const { return running_; }
  const std::vector<core::JobId>& completed_jobs() const { return completed_; }
  /// Job currently occupying a node, or kNoJob.
  core::JobId job_on_node(int node) const { return node_owner_.at(node); }

  void set_policy(PlacementPolicy p) { policy_ = p; }
  PlacementPolicy policy() const { return policy_; }

  /// Remove/restore a node from service (response-path action). Affects
  /// future placement only; running jobs keep their nodes.
  void set_node_available(int node, bool available) {
    node_unavailable_.at(node) = !available;
  }
  bool node_available(int node) const { return !node_unavailable_.at(node); }

  /// Kill a running job (state -> kFailed, nodes released). Optionally
  /// requeue a fresh copy of the request at the back of the queue — the
  /// "drain and restart" response to a wedged node. Returns false if the
  /// job is not running.
  bool fail_job(core::TimePoint now, core::JobId id, bool requeue,
                std::vector<core::LogEvent>& log_out);

  /// CSCS-style gates. Pre-check runs per node before a job starts: nodes
  /// that fail are quarantined (marked unavailable) and replaced. Post-check
  /// runs per node after a job ends: failures quarantine the node.
  using NodeCheck = std::function<bool(int node)>;
  void set_pre_job_check(NodeCheck check) { pre_check_ = std::move(check); }
  void set_post_job_check(NodeCheck check) { post_check_ = std::move(check); }

  /// Probe evaluated on every running job's nodes each tick; a true result
  /// marks the job's saw_problem flag (ground truth for gate evaluation).
  void set_node_problem_probe(NodeCheck probe) { problem_probe_ = std::move(probe); }

  /// Lifetime callbacks (job-log forwarding, JobStore population).
  using JobCallback = std::function<void(const JobRecord&)>;
  void set_on_start(JobCallback cb) { on_start_ = std::move(cb); }
  void set_on_end(JobCallback cb) { on_end_ = std::move(cb); }

  /// Mean spread (max - min node index) of placements made so far; a compact
  /// placement metric used by topology-aware scheduling tests.
  double mean_placement_span() const;

 private:
  std::vector<int> free_nodes(bool needs_gpu) const;
  bool try_start(core::TimePoint now, core::JobId id,
                 std::vector<core::LogEvent>& log_out);
  std::vector<int> place(const std::vector<int>& free, int count);
  void install_flows(JobRecord& rec);
  void finish(core::TimePoint now, JobRecord& rec, JobState final_state,
              std::vector<core::LogEvent>& log_out);

  const Topology& topo_;
  Fabric& fabric_;
  FsModel& fs_;
  PlacementPolicy policy_;
  core::Rng rng_;

  std::unordered_map<core::JobId, JobRecord> jobs_;
  std::deque<core::JobId> queue_;
  std::vector<core::JobId> running_;
  std::vector<core::JobId> completed_;
  std::vector<core::JobId> node_owner_;   // [node]
  std::vector<char> node_unavailable_;    // [node]
  std::uint64_t next_job_ = 1;
  NodeCheck pre_check_;
  NodeCheck post_check_;
  NodeCheck problem_probe_;
  JobCallback on_start_;
  JobCallback on_end_;
  std::int64_t span_sum_ = 0;
  std::int64_t span_count_ = 0;
};

}  // namespace hpcmon::sim
