// Power and thermal model: per-node draw, per-cabinet aggregation,
// SEDC-style cabinet sensors, and facility environment (temperature,
// humidity, corrosive gas).
//
// Implements the telemetry behind two case studies: KAUST's power-profile
// anomaly detection (Sec. II.7, Fig 3 — per-cabinet power exposes load
// imbalance) and ORNL's datacenter-environment monitoring after the GPU
// sulfur-corrosion failure campaign (Sec. II.6 — ASHRAE gas/particulate
// limits).
#pragma once

#include <vector>

#include "core/log_event.hpp"
#include "core/rng.hpp"
#include "core/time.hpp"
#include "sim/node.hpp"
#include "sim/topology.hpp"

namespace hpcmon::sim {

struct PowerParams {
  double node_idle_w = 95.0;
  double node_peak_w = 350.0;   // at cpu_util == 1
  double gpu_idle_w = 25.0;
  double gpu_peak_w = 250.0;
  double blower_w_per_cabinet = 1800.0;  // fans/PSU overhead per cabinet
  double noise_w = 3.0;                  // per-node measurement noise (stddev)
  double inlet_temp_c = 21.0;
  /// Cabinet outlet temp rises this many degC per kW of cabinet draw.
  double temp_c_per_kw = 0.25;
};

/// Facility environment state (ASHRAE-relevant quantities, Sec. II.6).
struct FacilityEnv {
  double corrosion_ppb = 3.0;   // corrosive gas concentration
  double humidity_pct = 45.0;
  double particulates_ugm3 = 8.0;
};

class PowerModel {
 public:
  PowerModel(const Topology& topo, const PowerParams& params, core::Rng rng);

  /// Recompute all power/thermal readings from current node states.
  void tick(core::TimePoint now, core::Duration dt,
            const std::vector<NodeState>& nodes,
            std::vector<core::LogEvent>& log_out);

  double node_power_w(int node) const { return node_power_.at(node); }
  double cabinet_power_w(int cabinet) const {
    return cabinet_power_.at(cabinet);
  }
  double system_power_w() const { return system_power_; }
  double cabinet_temp_c(int cabinet) const { return cabinet_temp_.at(cabinet); }
  /// Cumulative energy counter, joules (PMDB-style).
  double energy_joules() const { return energy_joules_; }

  const FacilityEnv& facility() const { return facility_; }

  // -- Fault hooks ----------------------------------------------------------
  /// Corrosive-gas excursion (e.g. nearby construction): level until t_end.
  void set_corrosion_excursion(double ppb, core::TimePoint until);
  void set_inlet_temp(double celsius) { params_.inlet_temp_c = celsius; }

 private:
  const Topology& topo_;
  PowerParams params_;
  core::Rng rng_;
  std::vector<double> node_power_;
  std::vector<double> cabinet_power_;
  std::vector<double> cabinet_temp_;
  double system_power_ = 0.0;
  double energy_joules_ = 0.0;
  FacilityEnv facility_;
  double excursion_ppb_ = 0.0;
  core::TimePoint excursion_until_ = 0;
};

}  // namespace hpcmon::sim
