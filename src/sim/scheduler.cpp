#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>

#include "core/strings.hpp"

namespace hpcmon::sim {

using core::Duration;
using core::JobId;
using core::LogEvent;
using core::LogFacility;
using core::Severity;
using core::TimePoint;

Scheduler::Scheduler(const Topology& topo, Fabric& fabric, FsModel& fs,
                     PlacementPolicy policy, core::Rng rng)
    : topo_(topo), fabric_(fabric), fs_(fs), policy_(policy), rng_(rng) {
  node_owner_.assign(topo.num_nodes(), core::kNoJob);
  node_unavailable_.assign(topo.num_nodes(), 0);
}

JobId Scheduler::submit(TimePoint now, JobRequest request) {
  const JobId id{next_job_++};
  JobRecord rec;
  rec.id = id;
  rec.request = std::move(request);
  rec.submit_time = now;
  jobs_.emplace(id, std::move(rec));
  queue_.push_back(id);
  return id;
}

const JobRecord* Scheduler::job(JobId id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

void Scheduler::apply_loads(TimePoint /*now*/, std::vector<NodeState>& nodes) {
  // Reset load fields; fault/health fields persist across ticks.
  for (auto& n : nodes) {
    n.cpu_util = 0.02;  // OS noise
    n.mem_used_gb = 0.0;
    n.read_mbps = 0.0;
    n.write_mbps = 0.0;
    n.md_ops = 0.0;
    n.gpu_util = 0.0;
  }
  fs_.begin_tick();

  for (const JobId id : running_) {
    auto& rec = jobs_.at(id);
    const auto& profile = rec.request.profile;
    const int phase_idx = profile.phase_at(rec.progress);
    const AppPhase& phase =
        profile.phases.empty() ? AppPhase{} : profile.phases.at(phase_idx);
    const int n = static_cast<int>(rec.nodes.size());
    const int active =
        std::max(1, static_cast<int>(phase.active_fraction * n + 0.5));
    const int fs_index =
        static_cast<int>(core::raw(id) % static_cast<std::uint64_t>(
                                             std::max(1, fs_.num_filesystems())));
    for (int i = 0; i < n; ++i) {
      auto& ns = nodes[rec.nodes[i]];
      const bool is_active = i < active;
      ns.cpu_util = std::min(1.0, ns.cpu_util +
                                      (is_active ? phase.cpu_util : 0.04));
      ns.mem_used_gb += phase.mem_gb_per_node;
      if (ns.hung) ns.cpu_util = 0.0;
      if (is_active && !ns.hung) {
        ns.read_mbps += phase.read_mbps_per_node;
        ns.write_mbps += phase.write_mbps_per_node;
        ns.md_ops += phase.md_ops_per_node;
        if (topo_.node_has_gpu(rec.nodes[i])) {
          ns.gpu_util = std::min(1.0, ns.gpu_util + phase.cpu_util);
        }
        fs_.add_demand(fs_index, rec.nodes[i], phase.read_mbps_per_node,
                       phase.write_mbps_per_node, phase.md_ops_per_node);
      }
    }
    // Ring flows among the phase's active nodes.
    std::vector<Flow> flows;
    if (phase.net_gbps_per_node > 0.0 && active > 1) {
      flows.reserve(active);
      for (int i = 0; i < active; ++i) {
        flows.push_back({rec.nodes[i], rec.nodes[(i + 1) % active],
                         phase.net_gbps_per_node});
      }
    }
    fabric_.set_job_flows(id, std::move(flows));
  }
}

void Scheduler::advance(TimePoint now, Duration dt,
                        std::vector<NodeState>& nodes,
                        std::vector<LogEvent>& log_out) {
  // 1. Progress running jobs against the congestion/latency just computed.
  std::vector<JobId> finished;
  for (const JobId id : running_) {
    auto& rec = jobs_.at(id);
    const auto& profile = rec.request.profile;
    const AppPhase& phase = profile.phases.empty()
                                ? AppPhase{}
                                : profile.phases.at(profile.phase_at(rec.progress));
    double rate = 1.0;
    // DVFS (Amdahl over the phase's compute share): only the compute-bound
    // part of the phase slows when cores are downclocked.
    double pstate_sum = 0.0;
    for (const int node : rec.nodes) pstate_sum += nodes[node].pstate;
    const double pstate =
        rec.nodes.empty() ? 1.0
                          : pstate_sum / static_cast<double>(rec.nodes.size());
    if (pstate < 1.0) {
      const double cpu_share = std::clamp(phase.cpu_util, 0.0, 1.0);
      rate /= cpu_share / pstate + (1.0 - cpu_share);
    }
    const double stall = fabric_.job_path_stall(id);
    rec.stall_integral += stall * core::to_seconds(dt);
    if (profile.network_sensitivity > 0.0 && phase.net_gbps_per_node > 0.0) {
      rate /= 1.0 + profile.network_sensitivity * stall;
    }
    // Filesystem slowdown only matters in proportion to how I/O-bound the
    // phase is: a compute phase issuing one metadata op/s should not crawl
    // because another job is hammering the OSTs.
    const double io_intensity = phase.read_mbps_per_node +
                                phase.write_mbps_per_node +
                                4.0 * phase.md_ops_per_node;
    if (io_intensity > 0.0) {
      const int fs_index = static_cast<int>(
          core::raw(id) %
          static_cast<std::uint64_t>(std::max(1, fs_.num_filesystems())));
      const double fs_slow = fs_.io_slowdown(fs_index);
      const double io_weight = std::min(1.0, io_intensity / 500.0);
      rate /= 1.0 + profile.io_sensitivity * (fs_slow - 1.0) * io_weight;
    }
    bool any_hung = false;
    for (int node : rec.nodes) {
      if (nodes[node].hung) any_hung = true;
      if (problem_probe_ && problem_probe_(node)) rec.saw_problem = true;
    }
    if (any_hung) rate = 0.0;
    rec.progress += rate * static_cast<double>(dt) /
                    static_cast<double>(rec.request.nominal_runtime);
    if (rec.progress >= 1.0) finished.push_back(id);
  }
  for (const JobId id : finished) {
    finish(now, jobs_.at(id), JobState::kCompleted, log_out);
  }

  // 2. FCFS with simple backfill: walk the queue, starting whatever fits.
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (try_start(now, *it, log_out)) {
      it = queue_.erase(it);
    } else {
      ++it;  // backfill: later, smaller jobs may still fit
    }
  }
}

std::vector<int> Scheduler::free_nodes(bool needs_gpu) const {
  std::vector<int> out;
  for (int i = 0; i < topo_.num_nodes(); ++i) {
    if (node_owner_[i] == core::kNoJob && !node_unavailable_[i] &&
        (!needs_gpu || topo_.node_has_gpu(i))) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<int> Scheduler::place(const std::vector<int>& free, int count) {
  const int n = static_cast<int>(free.size());
  if (n < count) return {};
  switch (policy_) {
    case PlacementPolicy::kFirstFit:
      return {free.begin(), free.begin() + count};
    case PlacementPolicy::kRandom: {
      std::vector<int> shuffled = free;
      std::shuffle(shuffled.begin(), shuffled.end(), rng_.engine());
      shuffled.resize(count);
      std::sort(shuffled.begin(), shuffled.end());
      return shuffled;
    }
    case PlacementPolicy::kTopoAware: {
      // Minimal-span contiguous window over the (sorted) free list: keeps a
      // job's routers close together, shrinking path overlap between jobs.
      int best_start = 0;
      int best_span = free[count - 1] - free[0];
      for (int i = 0; i + count <= n; ++i) {
        const int span = free[i + count - 1] - free[i];
        if (span < best_span) {
          best_span = span;
          best_start = i;
        }
      }
      return {free.begin() + best_start, free.begin() + best_start + count};
    }
  }
  return {};
}

bool Scheduler::try_start(TimePoint now, JobId id,
                          std::vector<LogEvent>& log_out) {
  auto& rec = jobs_.at(id);
  auto free = free_nodes(rec.request.needs_gpu);
  // Pre-job health gate: filter out nodes failing their check, quarantine
  // them ("the problem node taken out of service", Sec. II.5).
  if (pre_check_) {
    std::vector<int> healthy;
    healthy.reserve(free.size());
    for (int node : free) {
      if (pre_check_(node)) {
        healthy.push_back(node);
      } else {
        node_unavailable_[node] = 1;
        log_out.push_back({now, now, topo_.node(node), LogFacility::kHealth,
                           Severity::kWarning, id,
                           "pre-job health check failed; node quarantined"});
      }
    }
    free = std::move(healthy);
  }
  auto chosen = place(free, rec.request.num_nodes);
  if (chosen.empty()) return false;

  rec.nodes = std::move(chosen);
  rec.start_time = now;
  rec.state = JobState::kRunning;
  for (int node : rec.nodes) node_owner_[node] = id;
  running_.push_back(id);
  span_sum_ += rec.nodes.back() - rec.nodes.front();
  ++span_count_;
  log_out.push_back(
      {now, now, topo_.system(), LogFacility::kScheduler, Severity::kInfo, id,
       core::strformat("job %llu start app=%s nodes=%d",
                       static_cast<unsigned long long>(core::raw(id)),
                       rec.request.profile.name.c_str(),
                       rec.request.num_nodes)});
  if (on_start_) on_start_(rec);
  return true;
}

void Scheduler::finish(TimePoint now, JobRecord& rec, JobState final_state,
                       std::vector<LogEvent>& log_out) {
  rec.end_time = now;
  rec.state = final_state;
  fabric_.clear_job_flows(rec.id);
  for (int node : rec.nodes) {
    node_owner_[node] = core::kNoJob;
    if (post_check_ && !post_check_(node)) {
      node_unavailable_[node] = 1;
      log_out.push_back({now, now, topo_.node(node), LogFacility::kHealth,
                         Severity::kWarning, rec.id,
                         "post-job health check failed; node quarantined"});
    }
  }
  running_.erase(std::remove(running_.begin(), running_.end(), rec.id),
                 running_.end());
  completed_.push_back(rec.id);
  log_out.push_back(
      {now, now, topo_.system(), LogFacility::kScheduler, Severity::kInfo,
       rec.id,
       core::strformat("job %llu end state=%s runtime=%s",
                       static_cast<unsigned long long>(core::raw(rec.id)),
                       final_state == JobState::kCompleted ? "completed" : "failed",
                       core::format_duration(rec.actual_runtime()).c_str())});
  if (on_end_) on_end_(rec);
}

bool Scheduler::fail_job(TimePoint now, JobId id, bool requeue,
                         std::vector<LogEvent>& log_out) {
  auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second.state != JobState::kRunning) {
    return false;
  }
  auto request_copy = it->second.request;
  finish(now, it->second, JobState::kFailed, log_out);
  if (requeue) submit(now, std::move(request_copy));
  return true;
}

double Scheduler::mean_placement_span() const {
  return span_count_ == 0
             ? 0.0
             : static_cast<double>(span_sum_) / static_cast<double>(span_count_);
}

}  // namespace hpcmon::sim
