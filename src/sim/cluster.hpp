// Cluster: the facade that wires topology, fabric, filesystem, power, GPUs,
// scheduler, workload, clock drift, and fault injection into one stepped
// simulation. This is the "machine" that hpcmon's monitoring stack observes.
//
// The read accessors on this class are deliberately the *vendor interface*
// Table I demands: documented, raw, maximum-fidelity data for every
// subsystem. Samplers in hpcmon::collect consume only these accessors.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/clock.hpp"
#include "core/ids.hpp"
#include "core/log_event.hpp"
#include "core/registry.hpp"
#include "core/rng.hpp"
#include "sim/event_queue.hpp"
#include "sim/fabric.hpp"
#include "sim/filesystem.hpp"
#include "sim/gpu.hpp"
#include "sim/node.hpp"
#include "sim/power.hpp"
#include "sim/scheduler.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"

namespace hpcmon::sim {

struct ClusterParams {
  MachineShape shape;
  FabricKind fabric_kind = FabricKind::kDragonfly;
  FabricParams fabric;
  FsParams fs;
  PowerParams power;
  GpuParams gpu;
  NodeParams node;
  PlacementPolicy placement = PlacementPolicy::kFirstFit;
  core::Duration tick = core::kSecond;
  std::uint64_t seed = 42;
  /// Enable per-node local clock drift (Sec. III-A failure mode).
  bool clock_drift = false;
  double drift_skew_ppm_sigma = 20.0;      // per-node constant skew spread
  core::Duration drift_walk_sigma = 2 * core::kMillisecond;
};

/// Ground-truth record of an injected fault (for detector evaluation).
struct FaultEvent {
  std::string kind;
  std::string target;
  core::TimePoint start = 0;
  core::Duration duration = 0;
  double magnitude = 0.0;
};

class Cluster {
 public:
  explicit Cluster(const ClusterParams& params);

  // -- Simulation control ---------------------------------------------------
  core::TimePoint now() const { return clock_.now(); }
  core::Duration tick_interval() const { return params_.tick; }
  /// Step the simulation forward to absolute time t (multiple ticks).
  void run_until(core::TimePoint t);
  void run_for(core::Duration d) { run_until(now() + d); }
  /// Schedule arbitrary callbacks on the simulation timeline.
  EventQueue& events() { return events_; }

  // -- Structure ------------------------------------------------------------
  core::MetricRegistry& registry() { return registry_; }
  const Topology& topology() const { return *topo_; }
  Scheduler& scheduler() { return *scheduler_; }
  Fabric& fabric() { return *fabric_; }
  FsModel& fs() { return *fs_; }
  PowerModel& power() { return *power_; }
  GpuFleet& gpus() { return *gpus_; }

  // -- Raw data interface (what samplers read) -------------------------------
  const NodeState& node_state(int node) const { return nodes_.at(node); }
  double node_mem_free_gb(int node) const;
  const NodeParams& node_params() const { return params_.node; }
  /// Timestamp the node's local (drifting) clock would stamp right now.
  core::TimePoint node_local_time(int node);
  /// Set a node's DVFS p-state in [0.4, 1.0] (response-path knob: the paper
  /// envisions "downclocking components" and p-state/power-cap sweeps).
  void set_node_pstate(int node, double pstate);
  /// Apply one p-state machine-wide.
  void set_all_pstates(double pstate);
  /// Kill the job currently holding `node` (optionally requeueing a copy).
  /// Returns the killed job id, or kNoJob when the node was idle. The
  /// "drain a wedged node" response action.
  core::JobId fail_job_on_node(int node, bool requeue);
  /// Drain accumulated log events (ERD-style event stream).
  std::vector<core::LogEvent> drain_logs();
  /// Enqueue an externally produced event (health suites, probes) onto the
  /// same stream the platform's own components log to.
  void emit_log(core::LogEvent event) { push_log(std::move(event)); }
  std::size_t pending_log_count() const { return log_queue_.size(); }

  // -- Workload ---------------------------------------------------------------
  /// Start submitting a stochastic job stream from `at` onward.
  void start_workload(const WorkloadParams& params, core::TimePoint at = 0);
  /// Submit one specific job at a given time.
  void submit_at(core::TimePoint at, JobRequest request);

  // -- Fault injection (each records ground truth in fault_log()) ------------
  void inject_link_ber(core::TimePoint at, int link, double multiplier,
                       core::Duration duration);
  void inject_link_down(core::TimePoint at, int link, core::Duration duration);
  void inject_ost_slowdown(core::TimePoint at, int fs, int ost, double factor,
                           core::Duration duration);
  void inject_mds_slowdown(core::TimePoint at, int fs, double factor,
                           core::Duration duration);
  void inject_node_hang(core::TimePoint at, int node, core::Duration duration);
  void inject_mem_leak(core::TimePoint at, int node, double gb_per_hour,
                       core::Duration duration);
  void inject_fs_unmount(core::TimePoint at, int node, core::Duration duration);
  void inject_corrosion_excursion(core::TimePoint at, double ppb,
                                  core::Duration duration);
  void inject_gpu_failure(core::TimePoint at, int node);
  void inject_log_storm(core::TimePoint at, core::Duration duration,
                        int events_per_tick, std::string message);
  const std::vector<FaultEvent>& fault_log() const { return fault_log_; }

 private:
  void step();  // one tick
  void push_log(core::LogEvent ev);

  ClusterParams params_;
  core::MetricRegistry registry_;
  core::SimClock clock_;
  core::Rng rng_;
  EventQueue events_;
  std::unique_ptr<Topology> topo_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<FsModel> fs_;
  std::unique_ptr<PowerModel> power_;
  std::unique_ptr<GpuFleet> gpus_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<WorkloadGenerator> workload_;
  std::vector<NodeState> nodes_;
  std::vector<double> leak_rate_gb_per_s_;
  std::vector<core::DriftClock> node_clocks_;
  std::deque<core::LogEvent> log_queue_;
  std::vector<FaultEvent> fault_log_;
};

}  // namespace hpcmon::sim
