#include "sim/cluster.hpp"

#include <algorithm>
#include <cassert>

#include "core/strings.hpp"

namespace hpcmon::sim {

using core::Duration;
using core::LogEvent;
using core::LogFacility;
using core::Severity;
using core::TimePoint;

Cluster::Cluster(const ClusterParams& params)
    : params_(params), rng_(params.seed) {
  topo_ = std::make_unique<Topology>(registry_, params.shape,
                                     params.fabric_kind);
  fabric_ = std::make_unique<Fabric>(*topo_, params.fabric, rng_.fork());
  fs_ = std::make_unique<FsModel>(*topo_, params.fs, rng_.fork());
  power_ = std::make_unique<PowerModel>(*topo_, params.power, rng_.fork());
  gpus_ = std::make_unique<GpuFleet>(*topo_, params.gpu, rng_.fork());
  scheduler_ = std::make_unique<Scheduler>(*topo_, *fabric_, *fs_,
                                           params.placement, rng_.fork());
  nodes_.resize(topo_->num_nodes());
  leak_rate_gb_per_s_.assign(topo_->num_nodes(), 0.0);
  if (params.clock_drift) {
    auto drift_rng = rng_.fork();
    node_clocks_.reserve(topo_->num_nodes());
    for (int i = 0; i < topo_->num_nodes(); ++i) {
      core::DriftClock::Params dp;
      dp.offset0 = static_cast<Duration>(drift_rng.normal(0.0, 5e3));  // ~5ms
      dp.skew_ppm = drift_rng.normal(0.0, params.drift_skew_ppm_sigma);
      dp.walk_sigma = params.drift_walk_sigma;
      node_clocks_.emplace_back(dp, drift_rng.fork());
    }
  }
}

double Cluster::node_mem_free_gb(int node) const {
  const auto& n = nodes_.at(node);
  return std::max(0.0, params_.node.mem_total_gb - params_.node.os_mem_gb -
                           n.mem_used_gb - n.leak_gb);
}

TimePoint Cluster::node_local_time(int node) {
  if (node_clocks_.empty()) return clock_.now();
  return node_clocks_.at(node).local_time(clock_.now());
}

void Cluster::set_node_pstate(int node, double pstate) {
  nodes_.at(node).pstate = std::clamp(pstate, 0.4, 1.0);
}

void Cluster::set_all_pstates(double pstate) {
  for (auto& n : nodes_) n.pstate = std::clamp(pstate, 0.4, 1.0);
}

core::JobId Cluster::fail_job_on_node(int node, bool requeue) {
  const auto id = scheduler_->job_on_node(node);
  if (id == core::kNoJob) return core::kNoJob;
  std::vector<LogEvent> events;
  scheduler_->fail_job(clock_.now(), id, requeue, events);
  for (auto& ev : events) push_log(std::move(ev));
  return id;
}

std::vector<LogEvent> Cluster::drain_logs() {
  std::vector<LogEvent> out(log_queue_.begin(), log_queue_.end());
  log_queue_.clear();
  return out;
}

void Cluster::push_log(LogEvent ev) {
  // Stamp local_time with the originating component's drifting clock when
  // the component maps to a node (Sec. III-A: sources stamp locally).
  if (!node_clocks_.empty() && ev.component != core::kNoComponent) {
    const int node = topo_->node_index(ev.component);
    if (node >= 0) ev.local_time = node_clocks_[node].local_time(ev.time);
  }
  log_queue_.push_back(std::move(ev));
}

void Cluster::run_until(TimePoint t) {
  while (clock_.now() + params_.tick <= t) {
    clock_.advance_by(params_.tick);
    step();
  }
}

void Cluster::step() {
  const TimePoint now = clock_.now();
  const Duration dt = params_.tick;
  events_.run_until(now);

  std::vector<LogEvent> events;
  scheduler_->apply_loads(now, nodes_);
  // Apply accumulated memory leaks on top of application demand.
  for (int i = 0; i < topo_->num_nodes(); ++i) {
    if (leak_rate_gb_per_s_[i] > 0.0) {
      nodes_[i].leak_gb += leak_rate_gb_per_s_[i] * core::to_seconds(dt);
    }
  }
  fabric_->tick(now, dt, events);
  fs_->tick(now, dt, events);
  power_->tick(now, dt, nodes_, events);
  gpus_->tick(now, dt, power_->facility().corrosion_ppb, events);
  scheduler_->advance(now, dt, nodes_, events);

  // Background console chatter: roughly one routine line per 64 nodes/tick,
  // so log analysis always has a noise floor to discriminate against.
  const double mean_noise = topo_->num_nodes() / 64.0 * 0.1;
  const auto noise = rng_.poisson(mean_noise);
  for (std::int64_t i = 0; i < noise; ++i) {
    const int node =
        static_cast<int>(rng_.uniform_int(0, topo_->num_nodes() - 1));
    events.push_back({now, now, topo_->node(node), LogFacility::kConsole,
                      Severity::kInfo, core::kNoJob,
                      "systemd: session opened for user operator"});
  }
  for (auto& ev : events) push_log(std::move(ev));
}

void Cluster::start_workload(const WorkloadParams& params, TimePoint at) {
  workload_ = std::make_unique<WorkloadGenerator>(params, rng_.fork());
  // Self-rescheduling arrival process.
  struct Arrival {
    Cluster* cluster;
    void operator()(TimePoint now) const {
      auto req = cluster->workload_->next_request();
      cluster->scheduler_->submit(now, std::move(req));
      cluster->events_.schedule_at(
          now + cluster->workload_->next_interarrival(), Arrival{*this});
    }
  };
  events_.schedule_at(at, Arrival{this});
}

void Cluster::submit_at(TimePoint at, JobRequest request) {
  events_.schedule_at(at, [this, request = std::move(request)](TimePoint now) {
    scheduler_->submit(now, request);
  });
}

void Cluster::inject_link_ber(TimePoint at, int link, double multiplier,
                              Duration duration) {
  fault_log_.push_back({"link_ber",
                        registry_.component(topo_->link(link).component).name,
                        at, duration, multiplier});
  events_.schedule_at(at, [this, link, multiplier](TimePoint) {
    fabric_->set_link_ber_multiplier(link, multiplier);
  });
  events_.schedule_at(at + duration, [this, link](TimePoint) {
    fabric_->set_link_ber_multiplier(link, 1.0);
  });
}

void Cluster::inject_link_down(TimePoint at, int link, Duration duration) {
  fault_log_.push_back({"link_down",
                        registry_.component(topo_->link(link).component).name,
                        at, duration, 1.0});
  events_.schedule_at(at, [this, link](TimePoint now) {
    fabric_->set_link_up(link, false);
    push_log({now, now, topo_->link(link).component, LogFacility::kNetwork,
              Severity::kError, core::kNoJob, "HSN link failed: lane degrade"});
  });
  events_.schedule_at(at + duration, [this, link](TimePoint now) {
    fabric_->set_link_up(link, true);
    push_log({now, now, topo_->link(link).component, LogFacility::kNetwork,
              Severity::kNotice, core::kNoJob, "HSN link recovered"});
  });
}

void Cluster::inject_ost_slowdown(TimePoint at, int fs, int ost, double factor,
                                  Duration duration) {
  fault_log_.push_back({"ost_slowdown",
                        registry_.component(topo_->ost(fs, ost)).name, at,
                        duration, factor});
  events_.schedule_at(at, [this, fs, ost, factor](TimePoint) {
    fs_->set_ost_slowdown(fs, ost, factor);
  });
  events_.schedule_at(at + duration, [this, fs, ost](TimePoint) {
    fs_->set_ost_slowdown(fs, ost, 1.0);
  });
}

void Cluster::inject_mds_slowdown(TimePoint at, int fs, double factor,
                                  Duration duration) {
  fault_log_.push_back({"mds_slowdown", registry_.component(topo_->mds(fs)).name,
                        at, duration, factor});
  events_.schedule_at(at, [this, fs, factor](TimePoint) {
    fs_->set_mds_slowdown(fs, factor);
  });
  events_.schedule_at(at + duration, [this, fs](TimePoint) {
    fs_->set_mds_slowdown(fs, 1.0);
  });
}

void Cluster::inject_node_hang(TimePoint at, int node, Duration duration) {
  fault_log_.push_back({"node_hang", registry_.component(topo_->node(node)).name,
                        at, duration, 1.0});
  events_.schedule_at(at, [this, node](TimePoint now) {
    nodes_[node].hung = true;
    push_log({now, now, topo_->node(node), LogFacility::kConsole,
              Severity::kError, scheduler_->job_on_node(node),
              "soft lockup - CPU stuck for 22s"});
  });
  events_.schedule_at(at + duration, [this, node](TimePoint) {
    nodes_[node].hung = false;
  });
}

void Cluster::inject_mem_leak(TimePoint at, int node, double gb_per_hour,
                              Duration duration) {
  fault_log_.push_back({"mem_leak", registry_.component(topo_->node(node)).name,
                        at, duration, gb_per_hour});
  events_.schedule_at(at, [this, node, gb_per_hour](TimePoint) {
    leak_rate_gb_per_s_[node] = gb_per_hour / 3600.0;
  });
  events_.schedule_at(at + duration, [this, node](TimePoint) {
    leak_rate_gb_per_s_[node] = 0.0;
    nodes_[node].leak_gb = 0.0;  // daemon restarted
  });
}

void Cluster::inject_fs_unmount(TimePoint at, int node, Duration duration) {
  fault_log_.push_back({"fs_unmount",
                        registry_.component(topo_->node(node)).name, at,
                        duration, 1.0});
  events_.schedule_at(at, [this, node](TimePoint now) {
    nodes_[node].fs_mounted = false;
    push_log({now, now, topo_->node(node), LogFacility::kFilesystem,
              Severity::kError, core::kNoJob,
              "lustre: connection to MDS lost; mount inactive"});
  });
  events_.schedule_at(at + duration, [this, node](TimePoint) {
    nodes_[node].fs_mounted = true;
  });
}

void Cluster::inject_corrosion_excursion(TimePoint at, double ppb,
                                         Duration duration) {
  fault_log_.push_back({"corrosion", "facility.env", at, duration, ppb});
  events_.schedule_at(at, [this, ppb, duration](TimePoint now) {
    power_->set_corrosion_excursion(ppb, now + duration);
  });
}

void Cluster::inject_gpu_failure(TimePoint at, int node) {
  fault_log_.push_back({"gpu_failure",
                        registry_.component(topo_->node(node)).name, at, 0, 1.0});
  events_.schedule_at(at, [this, node](TimePoint now) {
    gpus_->force_health(node, GpuHealth::kFailed);
    push_log({now, now, topo_->gpu_of(node), LogFacility::kHardware,
              Severity::kCritical, scheduler_->job_on_node(node),
              "GPU has fallen off the bus"});
  });
}

void Cluster::inject_log_storm(TimePoint at, Duration duration,
                               int events_per_tick, std::string message) {
  fault_log_.push_back({"log_storm", "system", at, duration,
                        static_cast<double>(events_per_tick)});
  const TimePoint end = at + duration;
  struct Storm {
    Cluster* cluster;
    TimePoint end;
    int per_tick;
    std::string message;
    void operator()(TimePoint now) const {
      for (int i = 0; i < per_tick; ++i) {
        const int node = static_cast<int>(cluster->rng_.uniform_int(
            0, cluster->topo_->num_nodes() - 1));
        cluster->push_log({now, now, cluster->topo_->node(node),
                           LogFacility::kConsole, Severity::kWarning,
                           core::kNoJob, message});
      }
      if (now + cluster->params_.tick < end) {
        cluster->events_.schedule_at(now + cluster->params_.tick, Storm{*this});
      }
    }
  };
  events_.schedule_at(at, Storm{this, end, events_per_tick, std::move(message)});
}

}  // namespace hpcmon::sim
