#include "sim/filesystem.hpp"

#include <algorithm>

#include "core/strings.hpp"

namespace hpcmon::sim {

using core::Duration;
using core::LogEvent;
using core::LogFacility;
using core::Severity;
using core::TimePoint;

FsModel::FsModel(const Topology& topo, const FsParams& params, core::Rng rng)
    : topo_(topo), params_(params), rng_(rng) {
  const int nfs = topo.num_filesystems();
  mds_.resize(nfs);
  osts_.resize(nfs);
  ost_read_demand_.resize(nfs);
  ost_write_demand_.resize(nfs);
  for (int f = 0; f < nfs; ++f) {
    osts_[f].resize(topo.osts_per_fs());
    ost_read_demand_[f].assign(topo.osts_per_fs(), 0.0);
    ost_write_demand_[f].assign(topo.osts_per_fs(), 0.0);
  }
  node_read_.assign(topo.num_nodes(), 0.0);
  node_write_.assign(topo.num_nodes(), 0.0);
}

void FsModel::begin_tick() {
  for (auto& m : mds_) m.demand = 0.0;
  for (auto& fs : osts_) {
    for (auto& o : fs) o.demand = 0.0;
  }
  for (auto& fs : ost_read_demand_) std::fill(fs.begin(), fs.end(), 0.0);
  for (auto& fs : ost_write_demand_) std::fill(fs.begin(), fs.end(), 0.0);
  std::fill(node_read_.begin(), node_read_.end(), 0.0);
  std::fill(node_write_.begin(), node_write_.end(), 0.0);
}

void FsModel::add_demand(int fs, int node, double read_mbps, double write_mbps,
                         double md_ops) {
  const int nost = num_osts(fs);
  const int ost = node % nost;  // round-robin striping by node index
  osts_[fs][ost].demand += read_mbps + write_mbps;
  ost_read_demand_[fs][ost] += read_mbps;
  ost_write_demand_[fs][ost] += write_mbps;
  mds_[fs].demand += md_ops;
  node_read_[node] += read_mbps;
  node_write_[node] += write_mbps;
}

namespace {
// M/M/1-style latency inflation: latency = base / (1 - rho), rho clamped.
double queueing_latency(double base_ms, double rho, double max_rho) {
  const double r = std::clamp(rho, 0.0, max_rho);
  return base_ms / (1.0 - r);
}
}  // namespace

void FsModel::tick(TimePoint now, Duration dt, std::vector<LogEvent>& log_out) {
  const double dt_s = core::to_seconds(dt);
  for (int f = 0; f < num_filesystems(); ++f) {
    // MDS.
    auto& m = mds_[f];
    const double mds_cap = params_.mds_ops_capacity / m.slowdown;
    m.utilization = mds_cap > 0 ? m.demand / mds_cap : 1.0;
    m.carried = std::min(m.demand, mds_cap);
    m.latency_ms = queueing_latency(params_.base_md_latency_ms * m.slowdown,
                                    m.utilization, params_.max_rho);
    m.ops += m.carried * dt_s;
    if (m.utilization > 0.9) {
      log_out.push_back({now, now, topo_.mds(f), LogFacility::kFilesystem,
                         Severity::kWarning, core::kNoJob,
                         core::strformat("MDS request queue saturated: %.0f%%",
                                         m.utilization * 100.0)});
    }
    // OSTs.
    for (int o = 0; o < num_osts(f); ++o) {
      auto& t = osts_[f][o];
      const double cap = params_.ost_bandwidth_mbps / t.slowdown;
      t.utilization = cap > 0 ? t.demand / cap : 1.0;
      t.carried = std::min(t.demand, cap);
      t.latency_ms = queueing_latency(params_.base_io_latency_ms * t.slowdown,
                                      t.utilization, params_.max_rho);
      const double scale = t.demand > 0 ? t.carried / t.demand : 0.0;
      t.read_bytes += ost_read_demand_[f][o] * scale * 1e6 * dt_s;
      t.write_bytes += ost_write_demand_[f][o] * scale * 1e6 * dt_s;
      if (t.slowdown > 2.0) {
        log_out.push_back(
            {now, now, topo_.ost(f, o), LogFacility::kFilesystem,
             Severity::kError, core::kNoJob,
             core::strformat("OST slow ios: latency %.1f ms", t.latency_ms)});
      }
    }
  }
}

double FsModel::io_slowdown(int fs) const {
  // Bandwidth-bound work takes demand/carried times longer when the targets
  // are oversubscribed (throughput share), not the queueing-latency factor —
  // latency is what probes see, throughput is what checkpoints feel.
  const auto& m = mds_[fs];
  const double md_factor =
      (m.demand > 0 && m.carried > 0) ? m.demand / m.carried : 1.0;
  double demand = 0.0;
  double carried = 0.0;
  for (const auto& o : osts_[fs]) {
    demand += o.demand;
    carried += o.carried;
  }
  const double ost_factor =
      (demand > 0 && carried > 0) ? demand / carried : 1.0;
  return std::max({1.0, md_factor, ost_factor});
}

double FsModel::fs_read_mbps(int fs) const {
  double total = 0.0;
  for (int o = 0; o < num_osts(fs); ++o) {
    const auto& t = osts_[fs][o];
    const double scale = t.demand > 0 ? t.carried / t.demand : 0.0;
    total += ost_read_demand_[fs][o] * scale;
  }
  return total;
}

double FsModel::fs_write_mbps(int fs) const {
  double total = 0.0;
  for (int o = 0; o < num_osts(fs); ++o) {
    const auto& t = osts_[fs][o];
    const double scale = t.demand > 0 ? t.carried / t.demand : 0.0;
    total += ost_write_demand_[fs][o] * scale;
  }
  return total;
}

void FsModel::set_ost_slowdown(int fs, int ost, double factor) {
  osts_.at(fs).at(ost).slowdown = factor;
}

void FsModel::set_mds_slowdown(int fs, double factor) {
  mds_.at(fs).slowdown = factor;
}

}  // namespace hpcmon::sim
