// Log event store with an inverted token index.
//
// Models the Splunk-style workflow the paper describes (Sec. IV-C): events
// are kept in native (structured) form; an index over message tokens makes
// "detection of well-known log lines" and occurrence counting cheap. Glob
// patterns (not full regex) cover the SEC-style matching used in production.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/log_event.hpp"
#include "core/result.hpp"
#include "core/series_buffer.hpp"
#include "core/time.hpp"

namespace hpcmon::store {

/// Filter for log queries; unset fields match everything.
struct LogQuery {
  core::TimeRange range{INT64_MIN, INT64_MAX};
  std::optional<core::Severity> max_severity;  // at least this severe (<=)
  std::optional<core::LogFacility> facility;
  std::optional<core::ComponentId> component;
  std::optional<core::JobId> job;
  /// Token that must appear in the message (fast path via index).
  std::string token;
  /// Glob over the whole message ('*'/'?'), applied after other filters.
  std::string message_glob;
};

class LogStore {
 public:
  /// Append one event. Events must arrive in non-decreasing `time` order
  /// (the transport guarantees this per stream); out-of-order events are
  /// clamped to the last seen time to keep range queries correct.
  void append(core::LogEvent event);
  void append_batch(std::vector<core::LogEvent> events);

  std::vector<core::LogEvent> query(const LogQuery& q) const;
  std::size_t count(const LogQuery& q) const { return query(q).size(); }

  /// Occurrence counts per time bucket (Splunk-style histogram).
  std::vector<core::TimedValue> count_by_bucket(const LogQuery& q,
                                                core::Duration bucket) const;

  std::size_t size() const;
  /// Total events at each severity (dashboard summary row).
  std::vector<std::size_t> severity_histogram() const;

  /// Persist all events (binary frames, lossless) so log history survives
  /// restarts; the token index is rebuilt on load. Loading appends into
  /// `out` (which is not movable — it owns a mutex).
  core::Status save_to_file(const std::string& path) const;
  static core::Status load_from_file(const std::string& path, LogStore& out);

 private:
  bool matches(const core::LogEvent& e, const LogQuery& q) const;

  mutable std::mutex mu_;
  std::vector<core::LogEvent> events_;
  std::unordered_map<std::string, std::vector<std::uint32_t>> token_index_;
  core::TimePoint last_time_ = INT64_MIN;
};

}  // namespace hpcmon::store
