// Per-chunk statistics for stepped aggregation.
//
// The paper (Sec. IV-C) motivates time-series engines chosen for "superior
// data compression and query performance"; the query half of that claim
// rests on never decompressing data you can answer from metadata. A
// ChunkSummary is computed once at seal time and stored beside the
// compressed payload, so aggregate()/downsample() answer fully-covered
// chunks in O(1) and only decode the boundary chunks of a range — the
// stepped-aggregation trick every production TSDB (Influx, Prometheus,
// Gorilla) uses. The same struct doubles as the running accumulator when
// summaries and raw points are combined in time order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string_view>

#include "core/series_buffer.hpp"  // TimedValue

namespace hpcmon::store {

enum class Agg : std::uint8_t { kSum, kMean, kMin, kMax, kCount, kLast };

std::string_view to_string(Agg agg);

/// Order-sensitive value statistics over a run of points. `add`/`merge` must
/// be fed in time order (chunks are, and queries walk chunks oldest-first),
/// so `first`/`last` track the temporally first/last values.
struct ChunkSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double first = 0.0;
  double last = 0.0;

  void add(double v) {
    if (count == 0) {
      min = max = first = v;
    } else {
      min = std::min(min, v);
      max = std::max(max, v);
    }
    last = v;
    sum += v;
    ++count;
  }
  void add(const core::TimedValue& p) { add(p.value); }

  /// Fold in a summary of strictly later points.
  void merge(const ChunkSummary& later) {
    if (later.count == 0) return;
    if (count == 0) {
      *this = later;
      return;
    }
    count += later.count;
    sum += later.sum;
    min = std::min(min, later.min);
    max = std::max(max, later.max);
    last = later.last;
  }

  friend bool operator==(const ChunkSummary&, const ChunkSummary&) = default;
};

/// Answer an aggregate from a summary alone; nullopt when no points.
inline std::optional<double> summary_aggregate(const ChunkSummary& s, Agg agg) {
  if (s.count == 0) return std::nullopt;
  switch (agg) {
    case Agg::kSum: return s.sum;
    case Agg::kMean: return s.sum / static_cast<double>(s.count);
    case Agg::kMin: return s.min;
    case Agg::kMax: return s.max;
    case Agg::kCount: return static_cast<double>(s.count);
    case Agg::kLast: return s.last;
  }
  return std::nullopt;
}

}  // namespace hpcmon::store
