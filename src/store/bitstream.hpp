// Bit-granular writer/reader used by the chunk codecs.
//
// Kept deliberately simple: append-only writer over a byte vector, and a
// cursor-based reader. Both are bounds-checked; the reader reports exhaustion
// via eof() rather than throwing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hpcmon::store {

class BitWriter {
 public:
  /// Append the low `bits` bits of `value`, most-significant first.
  void write(std::uint64_t value, int bits);
  void write_bit(bool bit) { write(bit ? 1 : 0, 1); }

  /// Number of bits written so far.
  std::size_t bit_count() const { return bit_count_; }
  /// Finished byte buffer (padded with zero bits).
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() && { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_count_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  /// Read `bits` bits (MSB-first). Returns 0 and sets eof on underrun.
  std::uint64_t read(int bits);
  bool read_bit() { return read(1) != 0; }

  bool eof() const { return eof_; }
  std::size_t bits_consumed() const { return cursor_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t cursor_ = 0;  // bit cursor
  bool eof_ = false;
};

}  // namespace hpcmon::store
