// Bit-granular writer/reader used by the chunk codecs — word-at-a-time.
//
// Both sides run on a 64-bit accumulator instead of per-bit byte pokes: the
// writer packs fields at the top of an accumulator and spills whole words
// into the byte buffer (endian-safe big-endian stores, so the bitstream
// layout — MSB-first — is byte-identical to the original bit-at-a-time
// implementation); the reader bulk-loads 8 bytes at a time and serves reads
// by shifting. A typical Gorilla field (1-16 bits) costs a couple of shifts
// and one branch instead of a per-bit loop, which is where the batch decode
// path (cursor.hpp) gets its throughput.
//
// Semantics are unchanged from the bit-at-a-time version: the writer is
// append-only over a byte vector (padded with zero bits), the reader is
// bounds-checked and reports underrun via eof() rather than throwing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hpcmon::store {

namespace detail {

/// Endian-safe big-endian word load/store (compilers lower these to a single
/// load/store + bswap on little-endian hosts).
inline std::uint64_t load_be64(const std::uint8_t* p) {
  return (static_cast<std::uint64_t>(p[0]) << 56) |
         (static_cast<std::uint64_t>(p[1]) << 48) |
         (static_cast<std::uint64_t>(p[2]) << 40) |
         (static_cast<std::uint64_t>(p[3]) << 32) |
         (static_cast<std::uint64_t>(p[4]) << 24) |
         (static_cast<std::uint64_t>(p[5]) << 16) |
         (static_cast<std::uint64_t>(p[6]) << 8) |
         static_cast<std::uint64_t>(p[7]);
}

inline void store_be64(std::uint8_t* p, std::uint64_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 56);
  p[1] = static_cast<std::uint8_t>(v >> 48);
  p[2] = static_cast<std::uint8_t>(v >> 40);
  p[3] = static_cast<std::uint8_t>(v >> 32);
  p[4] = static_cast<std::uint8_t>(v >> 24);
  p[5] = static_cast<std::uint8_t>(v >> 16);
  p[6] = static_cast<std::uint8_t>(v >> 8);
  p[7] = static_cast<std::uint8_t>(v);
}

}  // namespace detail

class BitWriter {
 public:
  /// Pre-size the byte buffer (e.g. worst-case bytes from a sample count) so
  /// the encode loop never reallocates mid-stream.
  void reserve(std::size_t bytes) { bytes_.reserve(bytes); }

  /// Append the low `bits` bits of `value`, most-significant first.
  void write(std::uint64_t value, int bits) {
    if (bits <= 0) return;
    if (finished_) unfinish();
    if (bits < 64) value &= (~std::uint64_t{0}) >> (64 - bits);
    bit_count_ += static_cast<std::size_t>(bits);
    const int space = 64 - filled_;
    if (bits <= space) {
      acc_ |= value << (space - bits);
      filled_ += bits;
      if (filled_ == 64) flush_word();
      return;
    }
    // Split across the word boundary: top `space` bits now, rest after the
    // spill. `space` >= 1 here (a full accumulator is flushed eagerly), so
    // both shift amounts stay in [1, 63].
    acc_ |= value >> (bits - space);
    flush_word();
    const int rest = bits - space;
    acc_ = (value & ((~std::uint64_t{0}) >> (64 - rest))) << (64 - rest);
    filled_ = rest;
  }
  void write_bit(bool bit) { write(bit ? 1 : 0, 1); }

  /// Number of bits written so far.
  std::size_t bit_count() const { return bit_count_; }
  /// Finished byte buffer (padded with zero bits). Writing may continue
  /// afterwards; the partial tail byte is re-opened transparently.
  const std::vector<std::uint8_t>& bytes() {
    finish();
    return bytes_;
  }
  std::vector<std::uint8_t> take() && {
    finish();
    return std::move(bytes_);
  }

 private:
  void flush_word() {
    const std::size_t n = bytes_.size();
    bytes_.resize(n + 8);
    detail::store_be64(bytes_.data() + n, acc_);
    acc_ = 0;
    filled_ = 0;
  }
  void finish();    // spill pending accumulator bits (zero-padded) to bytes_
  void unfinish();  // re-open a partial tail byte for continued writes

  std::vector<std::uint8_t> bytes_;
  std::uint64_t acc_ = 0;  // pending bits at the top; low bits are zero
  int filled_ = 0;         // valid bits in acc_
  std::size_t bit_count_ = 0;
  bool finished_ = false;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes)
      : data_(bytes.data()), size_(bytes.size()) {}

  /// Read `bits` bits (MSB-first). Returns 0 and sets eof on underrun.
  std::uint64_t read(int bits) {
    if (bits <= 0 || eof_) return 0;
    if (bits > avail_) {
      refill();
      if (bits > avail_) return read_split(bits);
    }
    return extract(bits);
  }
  bool read_bit() { return read(1) != 0; }

  /// Look at the next `bits` bits (1..57) without consuming them. Bits past
  /// the end of the stream read as zero; peek never sets eof.
  std::uint64_t peek(int bits) {
    if (bits > avail_) refill();
    return acc_ >> (64 - bits);
  }

  /// Consume `bits` bits; same underrun semantics as read().
  void skip(int bits) { (void)read(bits); }

  bool eof() const { return eof_; }
  std::size_t bits_consumed() const { return consumed_; }

 private:
  void refill() {
    if (avail_ == 0 && size_ - pos_ >= 8) {
      acc_ = detail::load_be64(data_ + pos_);
      pos_ += 8;
      avail_ = 64;
      return;
    }
    while (avail_ <= 56 && pos_ < size_) {
      acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << (56 - avail_);
      avail_ += 8;
    }
  }
  std::uint64_t extract(int bits) {  // requires 1 <= bits <= avail_
    const std::uint64_t v = acc_ >> (64 - bits);
    acc_ = bits == 64 ? 0 : acc_ << bits;
    avail_ -= bits;
    consumed_ += static_cast<std::size_t>(bits);
    return v;
  }
  std::uint64_t read_split(int bits);  // word-boundary straddle or underrun
  std::uint64_t underrun();            // mark eof, zero the accumulator

  const std::uint8_t* data_;
  std::size_t size_;
  std::uint64_t acc_ = 0;  // unread bits at the top; low bits are zero
  int avail_ = 0;          // valid bits in acc_
  std::size_t pos_ = 0;    // bytes loaded into acc_ so far
  std::size_t consumed_ = 0;  // bits handed out
  bool eof_ = false;
};

}  // namespace hpcmon::store
