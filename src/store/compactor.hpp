// Compactor: the background mutator that moves telemetry down the ladder.
//
// TierStore (tier.hpp) owns the durable state machine; the Compactor owns
// the policy. One run_pass(now) does three phases, each a journaled
// transaction against the TierStore:
//   A. Hot ingest — sealed hot-store chunks older than `hot_window` become
//      one raw tier-0 file per priority class; ONE commit record covers all
//      of them plus the new eviction watermark, and only after that commit
//      are the exact snapshot chunks evicted from the hot shards (publish
//      before evict: a transient duplicate beats a transient gap, and the
//      span view dedups exact-timestamp collisions in favor of hot).
//   B. Aging — tier-k files past their class's retention are decoded,
//      re-bucketed at tier k+1's resolution, and replaced by one file per
//      (tier, class) in a single intent/commit transaction; the index
//      summaries merge in time order, so raw-sample stats stay exact no
//      matter how many times data ages.
//   C. Expiry — last-tier files past retention are durably deleted.
//
// A corrupt source chunk (CRC/decode failure) is skipped and counted, never
// wedging the ladder; an injected kCrash aborts the pass and marks the
// TierStore dead — the test harness rebuilds on the same directory, which
// is exactly what the crash-matrix battery does at every fs-op index.
//
// The stack runs run_pass on the simulated timeline behind a
// CircuitBreaker: a sick disk opens the breaker and the system degrades to
// "stop compacting, keep serving" instead of hot-looping failed I/O.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/priority.hpp"
#include "core/time.hpp"
#include "obs/registry.hpp"
#include "store/tier.hpp"
#include "store/tsdb.hpp"

namespace hpcmon::store {

struct CompactorOptions {
  /// Sealed hot chunks whose newest point is older than this are tiered
  /// out and evicted behind the durable watermark.
  core::Duration hot_window = 6 * core::kHour;
  /// Priority class of a series (drives per-class retention and file
  /// grouping); kStandard when unset.
  std::function<core::Priority(core::SeriesId)> priority_of;
};

class Compactor {
 public:
  Compactor(std::vector<TimeSeriesStore*> hot_shards, TierStore* tiers,
            CompactorOptions opts);

  /// One full pass (maintain → hot ingest → aging → expiry) at simulated
  /// time `now`. Returns the first failure; partial progress is durable
  /// and the next pass resumes where this one stopped.
  core::Status run_pass(core::TimePoint now);

  /// Catalog compact.* instruments.
  void attach_to(obs::ObsRegistry& registry) const;

 private:
  core::Status compact_hot(core::TimePoint now);
  core::Status age_tiers(core::TimePoint now);
  core::Status expire_last(core::TimePoint now);

  std::vector<TimeSeriesStore*> shards_;
  TierStore* tiers_;
  CompactorOptions opts_;

  obs::Counter passes_;
  obs::Counter pass_failures_;
  obs::Counter files_written_;
  obs::Counter files_aged_;
  obs::Counter files_expired_;
  obs::Counter chunks_compacted_;
  obs::Counter samples_tiered_;
  obs::Counter corrupt_entries_skipped_;
  obs::Counter bytes_written_;
};

}  // namespace hpcmon::store
