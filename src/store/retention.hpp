// Hierarchical retention: hot (full fidelity, in-memory) -> warm
// (downsampled) -> cold (archived compressed chunks, reloadable).
//
// Table I (Data Storage and Formats): "all storage does not have to be
// equally performant; hierarchical storage models with the ability to locate
// and reload data as needed are desirable" and "easy access to historical
// data ... in conjunction with current data is required". TieredStore keeps
// the partition invariant that every raw point lives in exactly one of
// {hot, cold}: eviction moves whole sealed chunks from hot into the cold
// archive, emitting downsampled aggregates into warm on the way. Queries
// therefore merge tiers without double counting.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/result.hpp"
#include "store/tsdb.hpp"

namespace hpcmon::store {

/// Cold tier: serialized compressed chunks with a time index per series.
/// Supports save/load to a file so "archived" history can move to slower
/// media and be located + reloaded later.
class Archive {
 public:
  Archive() = default;
  // reloads_ is atomic (concurrent const fetch() calls mutate it), which
  // drops the implicit moves load_from_file's by-value return relies on.
  Archive(Archive&& o) noexcept
      : blobs_(std::move(o.blobs_)),
        reloads_(o.reloads_.load(std::memory_order_relaxed)) {}
  Archive& operator=(Archive&& o) noexcept {
    blobs_ = std::move(o.blobs_);
    reloads_.store(o.reloads_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    return *this;
  }

  void store(core::SeriesId series, Chunk&& chunk);

  /// Decompress and return archived points of `series` within `range`.
  std::vector<core::TimedValue> fetch(core::SeriesId series,
                                      const core::TimeRange& range) const;

  std::size_t blob_count() const;
  std::size_t byte_size() const;
  /// Number of chunk reloads performed by fetch() so far.
  std::size_t reload_count() const {
    return reloads_.load(std::memory_order_relaxed);
  }

  core::Status save_to_file(const std::string& path) const;
  static core::Result<Archive> load_from_file(const std::string& path);

 private:
  struct Blob {
    core::TimePoint min_time = 0;
    core::TimePoint max_time = 0;
    std::vector<std::uint8_t> raw;
  };
  std::map<std::uint32_t, std::vector<Blob>> blobs_;  // raw series id -> blobs
  // Atomic: fetch() is const and runs concurrently from query threads; a
  // plain counter here was a data race under tsan.
  mutable std::atomic<std::size_t> reloads_{0};
};

struct RetentionPolicy {
  core::Duration hot_window = 6 * core::kHour;
  core::Duration warm_window = 7 * core::kDay;
  core::Duration warm_bucket = 5 * core::kMinute;
  Agg warm_agg = Agg::kMean;
};

class TieredStore {
 public:
  explicit TieredStore(const RetentionPolicy& policy,
                       std::size_t chunk_points = 512);

  bool append(core::SeriesId series, core::TimePoint t, double value) {
    return hot_.append(series, t, value);
  }
  void append(const core::Sample& s) { hot_.append(s); }
  std::size_t append_batch(std::span<const core::Sample> samples) {
    return hot_.append_batch(samples);
  }

  /// Run retention at `now`: age hot chunks into warm+cold, expire warm.
  /// Returns the number of chunks archived.
  std::size_t enforce(core::TimePoint now);

  /// Merge hot + warm (downsampled history): the everyday dashboard query.
  std::vector<core::TimedValue> query_range(core::SeriesId series,
                                            const core::TimeRange& range) const;

  /// Merge hot + cold (full-fidelity history, reloading archives): the
  /// "apply new analyses to historical data" path.
  std::vector<core::TimedValue> query_full(core::SeriesId series,
                                           const core::TimeRange& range) const;

  std::optional<core::TimedValue> latest(core::SeriesId series) const {
    return hot_.latest(series);
  }

  TimeSeriesStore& hot() { return hot_; }
  const TimeSeriesStore& hot() const { return hot_; }
  const TimeSeriesStore& warm() const { return warm_; }
  Archive& archive() { return archive_; }
  const Archive& archive() const { return archive_; }
  const RetentionPolicy& policy() const { return policy_; }

 private:
  RetentionPolicy policy_;
  TimeSeriesStore hot_;
  TimeSeriesStore warm_;
  Archive archive_;
};

}  // namespace hpcmon::store
