#include "store/compactor.hpp"

#include <algorithm>
#include <array>
#include <map>

#include "store/cursor.hpp"

namespace hpcmon::store {
using core::Status;

namespace {

core::TimePoint bucket_start(core::TimePoint t, core::Duration b) {
  auto q = t / b;
  if (t % b < 0) --q;
  return q * b;
}

/// Re-bucket `points` (time-ordered) at `resolution` with `agg`; the output
/// timestamps are absolute floor-aligned bucket starts, so buckets from
/// different compactions of the same epoch line up exactly.
std::vector<core::TimedValue> rebucket(
    const std::vector<core::TimedValue>& points, core::Duration resolution,
    Agg agg) {
  if (resolution <= 0) return points;  // raw destination: pass through
  std::map<core::TimePoint, ChunkSummary> buckets;
  for (const auto& p : points) {
    buckets[bucket_start(p.time, resolution)].add(p);
  }
  std::vector<core::TimedValue> out;
  out.reserve(buckets.size());
  for (const auto& [t, s] : buckets) {
    if (const auto v = summary_aggregate(s, agg)) out.push_back({t, *v});
  }
  return out;
}

}  // namespace

Compactor::Compactor(std::vector<TimeSeriesStore*> hot_shards,
                     TierStore* tiers, CompactorOptions opts)
    : shards_(std::move(hot_shards)), tiers_(tiers), opts_(std::move(opts)) {}

Status Compactor::run_pass(core::TimePoint now) {
  auto st = tiers_->maintain();
  if (st.is_ok()) st = compact_hot(now);
  if (st.is_ok()) st = age_tiers(now);
  if (st.is_ok()) st = expire_last(now);
  if (!st.is_ok()) {
    pass_failures_.add();
    return st;
  }
  passes_.add();
  return Status::ok();
}

Status Compactor::compact_hot(core::TimePoint now) {
  const auto cutoff = now - opts_.hot_window;
  // Snapshot the aged sealed chunks of every shard plus the watermark that
  // is safe once (and only once) they are durable.
  struct Picked {
    core::SeriesId series;
    std::shared_ptr<const Chunk> chunk;
  };
  std::array<std::vector<Picked>, core::kPriorityClasses> by_class;
  std::vector<std::vector<std::pair<core::SeriesId, std::uint64_t>>>
      evictions(shards_.size());
  core::TimePoint watermark = cutoff;
  std::size_t total = 0;
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    auto set = shards_[si]->sealed_chunks_before(cutoff);
    watermark = std::min(watermark, set.safe_watermark);
    for (auto& [sid, chunk] : set.chunks) {
      const auto cls = static_cast<std::size_t>(
          opts_.priority_of ? opts_.priority_of(sid)
                            : core::Priority::kStandard);
      evictions[si].emplace_back(sid, chunk->id());
      by_class[cls].push_back({sid, std::move(chunk)});
      ++total;
    }
  }
  if (total == 0 && watermark <= tiers_->watermark()) return Status::ok();

  std::vector<TierWriteSpec> specs;
  std::uint64_t samples = 0;
  std::uint64_t bytes = 0;
  for (std::size_t cls = 0; cls < by_class.size(); ++cls) {
    auto& picked = by_class[cls];
    if (picked.empty()) continue;
    std::sort(picked.begin(), picked.end(),
              [](const Picked& a, const Picked& b) {
                if (core::raw(a.series) != core::raw(b.series)) {
                  return core::raw(a.series) < core::raw(b.series);
                }
                return a.chunk->min_time() < b.chunk->min_time();
              });
    TierWriteSpec spec;
    spec.tier = 0;
    spec.cls = static_cast<std::uint32_t>(cls);
    for (const auto& p : picked) {
      TierWriteSpec::SeriesChunk sc;
      sc.series = p.series;
      sc.min_time = p.chunk->min_time();
      sc.max_time = p.chunk->max_time();
      sc.summary = p.chunk->summary();
      sc.payload = p.chunk->serialize();  // raw tier is byte-identical
      samples += p.chunk->count();
      bytes += sc.payload.size();
      spec.chunks.push_back(std::move(sc));
    }
    specs.push_back(std::move(spec));
  }

  const auto st = tiers_->ingest_hot(specs, watermark);
  if (!st.is_ok()) return st;
  // Durable → now (and only now) evict exactly the snapshot from the hot
  // shards, behind the committed watermark.
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    shards_[si]->evict_chunks(evictions[si]);
  }
  files_written_.add(specs.size());
  chunks_compacted_.add(total);
  samples_tiered_.add(samples);
  bytes_written_.add(bytes);
  return Status::ok();
}

Status Compactor::age_tiers(core::TimePoint now) {
  const auto& policy = tiers_->policy();
  for (std::uint32_t k = 0; k + 1 < policy.tiers.size(); ++k) {
    const auto next_res = policy.tiers[k + 1].resolution;
    const auto next_agg = policy.tiers[k + 1].agg;
    for (std::uint32_t cls = 0; cls < core::kPriorityClasses; ++cls) {
      const auto keep = policy.tiers[k].keep[cls];
      std::vector<std::shared_ptr<const TierFile>> srcs;
      for (auto& f : tiers_->files(k, cls)) {
        if (f->meta().max_time < now - keep) srcs.push_back(std::move(f));
      }
      if (srcs.empty()) continue;

      // Gather every source entry per series, in time order, then decode,
      // concatenate, and re-bucket at the destination resolution.
      std::map<std::uint32_t,
               std::vector<std::pair<const TierFile*, const TierEntry*>>>
          per_series;
      for (const auto& f : srcs) {
        for (const auto& e : f->entries()) {
          per_series[core::raw(e.series)].emplace_back(f.get(), &e);
        }
      }
      TierWriteSpec dest;
      dest.tier = k + 1;
      dest.cls = cls;
      std::uint64_t bytes = 0;
      for (auto& [sid, list] : per_series) {
        std::sort(list.begin(), list.end(), [](const auto& a, const auto& b) {
          if (a.second->min_time != b.second->min_time) {
            return a.second->min_time < b.second->min_time;
          }
          return a.second->payload_crc < b.second->payload_crc;
        });
        // A crash between a hot-ingest commit and the hot eviction re-tiers
        // the same chunk into a second file (see TierStore::entries_for);
        // collapse those duplicates here too, or aging would double-count.
        list.erase(std::unique(list.begin(), list.end(),
                               [](const auto& a, const auto& b) {
                                 return a.second->min_time ==
                                            b.second->min_time &&
                                        a.second->max_time ==
                                            b.second->max_time &&
                                        a.second->summary.count ==
                                            b.second->summary.count &&
                                        a.second->payload_crc ==
                                            b.second->payload_crc;
                               }),
                   list.end());
        std::vector<core::TimedValue> points;
        ChunkSummary summary;
        core::TimePoint min_t = 0;
        core::TimePoint max_t = 0;
        bool any = false;
        for (const auto& [file, e] : list) {
          auto chunk = file->load_chunk(*e);
          if (!chunk.is_ok()) {
            // Corrupt entry: skip (typed, counted); the ladder keeps moving
            // and the loss is bounded to this entry.
            corrupt_entries_skipped_.add();
            continue;
          }
          decode_all(chunk.value(), points);  // batch-append, no temp vector
          summary.merge(e->summary);
          min_t = any ? std::min(min_t, e->min_time) : e->min_time;
          max_t = any ? std::max(max_t, e->max_time) : e->max_time;
          any = true;
        }
        if (!any || points.empty()) continue;
        std::sort(points.begin(), points.end(),
                  [](const auto& a, const auto& b) { return a.time < b.time; });
        TierWriteSpec::SeriesChunk sc;
        sc.series = core::SeriesId{sid};
        sc.min_time = min_t;
        sc.max_time = max_t;
        sc.summary = summary;
        sc.payload =
            Chunk::compress(rebucket(points, next_res, next_agg)).serialize();
        bytes += sc.payload.size();
        dest.chunks.push_back(std::move(sc));
      }

      // Everything in the sources was corrupt: nothing to carry downward,
      // so the sources simply expire.
      const auto st = dest.chunks.empty() ? tiers_->expire(srcs)
                                          : tiers_->age(srcs, dest);
      if (!st.is_ok()) return st;
      files_aged_.add(srcs.size());
      if (!dest.chunks.empty()) {
        files_written_.add();
        bytes_written_.add(bytes);
      }
    }
  }
  return Status::ok();
}

Status Compactor::expire_last(core::TimePoint now) {
  const auto& policy = tiers_->policy();
  if (policy.tiers.empty()) return Status::ok();
  const auto last = static_cast<std::uint32_t>(policy.tiers.size() - 1);
  for (std::uint32_t cls = 0; cls < core::kPriorityClasses; ++cls) {
    const auto keep = policy.tiers[last].keep[cls];
    std::vector<std::shared_ptr<const TierFile>> srcs;
    for (auto& f : tiers_->files(last, cls)) {
      if (f->meta().max_time < now - keep) srcs.push_back(std::move(f));
    }
    if (srcs.empty()) continue;
    const auto st = tiers_->expire(srcs);
    if (!st.is_ok()) return st;
    files_expired_.add(srcs.size());
  }
  return Status::ok();
}

void Compactor::attach_to(obs::ObsRegistry& registry) const {
  registry.attach({"compact.passes", "passes",
                   "compactor passes completed end to end"},
                  &passes_);
  registry.attach({"compact.pass_failures", "passes",
                   "compactor passes aborted by an I/O failure"},
                  &pass_failures_);
  registry.attach({"compact.files_written", "files",
                   "tier files durably written (ingest + aging)"},
                  &files_written_);
  registry.attach({"compact.files_aged", "files",
                   "tier files replaced by a coarser tier"},
                  &files_aged_);
  registry.attach({"compact.files_expired", "files",
                   "last-tier files durably deleted by retention"},
                  &files_expired_);
  registry.attach({"compact.chunks_compacted", "chunks",
                   "sealed hot chunks moved into tier 0"},
                  &chunks_compacted_);
  registry.attach({"compact.samples_tiered", "samples",
                   "raw samples whose custody moved to the tier ladder"},
                  &samples_tiered_);
  registry.attach({"compact.corrupt_entries_skipped", "chunks",
                   "source entries dropped during aging (CRC/decode failed)"},
                  &corrupt_entries_skipped_);
  registry.attach({"compact.bytes_written", "bytes",
                   "bytes written into tier files"},
                  &bytes_written_);
}

}  // namespace hpcmon::store
