// ChunkCursor: streaming point-by-point decoder of a chunk's Gorilla
// bitstream.
//
// query_range used to decompress-everything-then-filter: every overlapping
// chunk was materialized into a full vector even when the query wanted the
// first few points. A cursor decodes one point per next() call, so callers
// stop as soon as they pass range.end (early exit) and never allocate a
// point vector at all — the dashboard/detector streaming path the paper's
// Table I consumers ("multiple consumers ... at variety of locations") need.
//
// scan_batch() is the bulk fast path underneath decompress, the decode
// cache, aggregation boundary walks, and tier downsampling: it decodes a
// run of points into a caller-provided buffer with all decoder state held
// in registers, only spilling back to the cursor at block boundaries. Use
// next() when a scan may stop early; use scan_batch()/decode_all() when
// most of the chunk is needed anyway.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/series_buffer.hpp"  // TimedValue
#include "store/bitstream.hpp"

namespace hpcmon::store {

class Chunk;

/// Forward-only decoder over one chunk. The chunk must outlive the cursor
/// (the cursor reads the chunk's payload in place; chunks are immutable).
class ChunkCursor {
 public:
  explicit ChunkCursor(const Chunk& chunk);

  /// Decode the next point into `out`; false at end of stream (or on a
  /// truncated bitstream, matching Chunk::decompress's stop-early contract).
  bool next(core::TimedValue& out) { return scan_batch({&out, 1}) == 1; }

  /// Decode up to out.size() points into `out`; returns the number produced.
  /// Returns less than out.size() only at end of stream or on a malformed
  /// bitstream (same stop-early contract as next()). Resumable: alternating
  /// scan_batch and next on one cursor yields the same point sequence.
  std::size_t scan_batch(std::span<core::TimedValue> out);

  /// Points not yet decoded (upper bound; a malformed stream ends sooner).
  std::uint32_t remaining() const { return count_ - index_; }

 private:
  BitReader reader_;
  std::uint32_t count_ = 0;
  std::uint32_t index_ = 0;
  std::int64_t time_ = 0;
  std::int64_t prev_delta_ = 0;
  std::uint64_t value_bits_ = 0;
  int prev_leading_ = 0;
  int prev_trailing_ = 0;
};

/// Append every point of `chunk` to `out` in one batch decode; returns the
/// number appended (== chunk.count() unless the bitstream is malformed).
/// `out` keeps its existing contents, so callers can fuse multi-chunk walks
/// into one reused buffer.
std::size_t decode_all(const Chunk& chunk, std::vector<core::TimedValue>& out);

}  // namespace hpcmon::store
