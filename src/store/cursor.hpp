// ChunkCursor: streaming point-by-point decoder of a chunk's Gorilla
// bitstream.
//
// query_range used to decompress-everything-then-filter: every overlapping
// chunk was materialized into a full vector even when the query wanted the
// first few points. A cursor decodes one point per next() call, so callers
// stop as soon as they pass range.end (early exit) and never allocate a
// point vector at all — the dashboard/detector streaming path the paper's
// Table I consumers ("multiple consumers ... at variety of locations") need.
#pragma once

#include <cstdint>

#include "core/series_buffer.hpp"  // TimedValue
#include "store/bitstream.hpp"

namespace hpcmon::store {

class Chunk;

/// Forward-only decoder over one chunk. The chunk must outlive the cursor
/// (the cursor reads the chunk's payload in place; chunks are immutable).
class ChunkCursor {
 public:
  explicit ChunkCursor(const Chunk& chunk);

  /// Decode the next point into `out`; false at end of stream (or on a
  /// truncated bitstream, matching Chunk::decompress's stop-early contract).
  bool next(core::TimedValue& out);

  /// Points not yet decoded (upper bound; a malformed stream ends sooner).
  std::uint32_t remaining() const { return count_ - index_; }

 private:
  BitReader reader_;
  std::uint32_t count_ = 0;
  std::uint32_t index_ = 0;
  std::int64_t time_ = 0;
  std::int64_t prev_delta_ = 0;
  std::uint64_t value_bits_ = 0;
  int prev_leading_ = 0;
  int prev_trailing_ = 0;
};

}  // namespace hpcmon::store
