// ChunkCache: bounded LRU of recently decompressed chunks.
//
// Dashboards poll the same windows every few seconds (the paper's Table I
// lists dashboards, detectors, and response hooks all reading concurrently),
// so the same sealed chunks get decoded over and over. Entries are keyed by
// the chunk's generation id — unique per compressed chunk for the process
// lifetime — so eviction (evict_before) invalidates precisely and a recycled
// slot can never serve stale points. Decoded vectors are handed out as
// shared_ptr: a hit is a refcount bump, and readers keep their snapshot even
// if the entry is evicted mid-query.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/series_buffer.hpp"  // TimedValue
#include "obs/registry.hpp"

namespace hpcmon::store {

using DecodedChunk = std::shared_ptr<const std::vector<core::TimedValue>>;

class ChunkCache {
 public:
  /// Point-in-time view of the cache's obs instruments.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;      // pushed out by capacity
    std::uint64_t invalidations = 0;  // dropped by erase() (store eviction)
    std::size_t entries = 0;
  };

  /// `capacity`: maximum cached chunks; 0 disables caching entirely.
  explicit ChunkCache(std::size_t capacity) : capacity_(capacity) {}

  /// Look up a decoded chunk; refreshes LRU position on hit.
  DecodedChunk get(std::uint64_t chunk_id);

  /// Insert a freshly decoded chunk, evicting the least-recently-used entry
  /// when full. No-op when capacity is 0 or the id is already cached.
  void put(std::uint64_t chunk_id, DecodedChunk points);

  /// Drop a chunk (store eviction); counts as an invalidation if present.
  void erase(std::uint64_t chunk_id);

  Stats stats() const;

  /// Catalog the cache's instruments as store.cache_* in `registry`. Entries
  /// gauges sum across attachments so sharded stores report total residency.
  void attach_to(obs::ObsRegistry& registry) const;

 private:
  using LruList = std::list<std::pair<std::uint64_t, DecodedChunk>>;

  mutable std::mutex mu_;
  std::size_t capacity_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, LruList::iterator> index_;
  // Counted straight into obs instruments: the degradation loop, the
  // hpcmon.self.* export, and query_stats() all read the same atomics.
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter evictions_;
  obs::Counter invalidations_;
  obs::Gauge entries_;
};

}  // namespace hpcmon::store
