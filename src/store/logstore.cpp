#include "store/logstore.hpp"
#include <cstdio>

#include "transport/codec.hpp"

#include <algorithm>

#include "core/strings.hpp"

namespace hpcmon::store {

using core::LogEvent;
using core::TimedValue;

void LogStore::append(LogEvent event) {
  std::scoped_lock lock(mu_);
  if (event.time < last_time_) event.time = last_time_;
  last_time_ = event.time;
  const auto idx = static_cast<std::uint32_t>(events_.size());
  for (const auto& tok : core::tokenize_words(event.message)) {
    auto& postings = token_index_[tok];
    if (postings.empty() || postings.back() != idx) postings.push_back(idx);
  }
  events_.push_back(std::move(event));
}

void LogStore::append_batch(std::vector<LogEvent> events) {
  for (auto& e : events) append(std::move(e));
}

bool LogStore::matches(const LogEvent& e, const LogQuery& q) const {
  if (!q.range.contains(e.time)) return false;
  if (q.max_severity && e.severity > *q.max_severity) return false;
  if (q.facility && e.facility != *q.facility) return false;
  if (q.component && e.component != *q.component) return false;
  if (q.job && e.job != *q.job) return false;
  if (!q.message_glob.empty() &&
      !core::glob_match(q.message_glob, e.message)) {
    return false;
  }
  return true;
}

std::vector<LogEvent> LogStore::query(const LogQuery& q) const {
  std::scoped_lock lock(mu_);
  std::vector<LogEvent> out;
  if (!q.token.empty()) {
    const auto it = token_index_.find(core::to_lower(q.token));
    if (it == token_index_.end()) return out;
    for (const auto idx : it->second) {
      const auto& e = events_[idx];
      if (matches(e, q)) out.push_back(e);
    }
    return out;
  }
  // Time-ordered scan; narrow with binary search on the range start.
  const auto begin = std::lower_bound(
      events_.begin(), events_.end(), q.range.begin,
      [](const LogEvent& e, core::TimePoint t) { return e.time < t; });
  for (auto it2 = begin; it2 != events_.end() && it2->time < q.range.end;
       ++it2) {
    if (matches(*it2, q)) out.push_back(*it2);
  }
  return out;
}

std::vector<TimedValue> LogStore::count_by_bucket(const LogQuery& q,
                                                  core::Duration bucket) const {
  std::vector<TimedValue> out;
  if (bucket <= 0) return out;
  const auto hits = query(q);
  std::size_t i = 0;
  while (i < hits.size()) {
    const core::TimePoint start = hits[i].time / bucket * bucket;
    double n = 0;
    while (i < hits.size() && hits[i].time < start + bucket) {
      ++n;
      ++i;
    }
    out.push_back({start, n});
  }
  return out;
}

std::size_t LogStore::size() const {
  std::scoped_lock lock(mu_);
  return events_.size();
}

std::vector<std::size_t> LogStore::severity_histogram() const {
  std::scoped_lock lock(mu_);
  std::vector<std::size_t> hist(8, 0);
  for (const auto& e : events_) {
    hist[static_cast<std::size_t>(e.severity)]++;
  }
  return hist;
}

namespace {
constexpr std::uint32_t kLogMagic = 0x48504D4C;  // "HPML"
constexpr std::size_t kFrameEvents = 1024;       // events per stored frame
}  // namespace

core::Status LogStore::save_to_file(const std::string& path) const {
  std::scoped_lock lock(mu_);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return core::Status::error("cannot open " + path);
  bool ok = std::fwrite(&kLogMagic, 4, 1, f) == 1;
  const auto total = static_cast<std::uint64_t>(events_.size());
  ok = ok && std::fwrite(&total, 8, 1, f) == 1;
  for (std::size_t start = 0; ok && start < events_.size();
       start += kFrameEvents) {
    const std::size_t end = std::min(events_.size(), start + kFrameEvents);
    const std::vector<LogEvent> slice(events_.begin() + start,
                                      events_.begin() + end);
    const auto frame = transport::encode_logs(slice);
    const auto len = static_cast<std::uint32_t>(frame.payload.size());
    ok = std::fwrite(&len, 4, 1, f) == 1 &&
         std::fwrite(frame.payload.data(), 1, len, f) == len;
  }
  std::fclose(f);
  return ok ? core::Status::ok() : core::Status::error("short write " + path);
}

core::Status LogStore::load_from_file(const std::string& path, LogStore& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return core::Status::error("cannot open " + path);
  std::uint32_t magic = 0;
  std::uint64_t total = 0;
  if (std::fread(&magic, 4, 1, f) != 1 || magic != kLogMagic ||
      std::fread(&total, 8, 1, f) != 1) {
    std::fclose(f);
    return core::Status::error("bad log archive header in " + path);
  }
  std::uint64_t loaded = 0;
  while (loaded < total) {
    std::uint32_t len = 0;
    if (std::fread(&len, 4, 1, f) != 1) break;
    transport::Frame frame;
    frame.type = transport::FrameType::kLogs;
    frame.payload.resize(len);
    if (std::fread(frame.payload.data(), 1, len, f) != len) break;
    auto events = transport::decode_logs(frame);
    if (!events.is_ok()) break;
    loaded += events.value().size();
    out.append_batch(std::move(events).take());
  }
  std::fclose(f);
  if (loaded != total) {
    return core::Status::error("truncated log archive " + path);
  }
  return core::Status::ok();
}

}  // namespace hpcmon::store
