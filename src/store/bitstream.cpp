#include "store/bitstream.hpp"

namespace hpcmon::store {

void BitWriter::write(std::uint64_t value, int bits) {
  for (int i = bits - 1; i >= 0; --i) {
    const bool bit = (value >> i) & 1;
    const std::size_t byte_index = bit_count_ / 8;
    if (byte_index == bytes_.size()) bytes_.push_back(0);
    if (bit) {
      bytes_[byte_index] |=
          static_cast<std::uint8_t>(1u << (7 - bit_count_ % 8));
    }
    ++bit_count_;
  }
}

std::uint64_t BitReader::read(int bits) {
  std::uint64_t value = 0;
  for (int i = 0; i < bits; ++i) {
    const std::size_t byte_index = cursor_ / 8;
    if (byte_index >= bytes_.size()) {
      eof_ = true;
      return 0;
    }
    const bool bit = (bytes_[byte_index] >> (7 - cursor_ % 8)) & 1;
    value = (value << 1) | (bit ? 1 : 0);
    ++cursor_;
  }
  return value;
}

}  // namespace hpcmon::store
