#include "store/bitstream.hpp"

namespace hpcmon::store {

void BitWriter::finish() {
  if (finished_) return;
  int pending = filled_;
  std::uint64_t acc = acc_;
  while (pending > 0) {
    bytes_.push_back(static_cast<std::uint8_t>(acc >> 56));
    acc <<= 8;
    pending -= 8;
  }
  acc_ = 0;
  filled_ = 0;
  finished_ = true;
}

void BitWriter::unfinish() {
  finished_ = false;
  const int tail = static_cast<int>(bit_count_ % 8);
  if (tail != 0) {
    // The last byte holds `tail` real bits at its top plus zero padding;
    // pull it back into the accumulator so new bits pack right behind them.
    acc_ = static_cast<std::uint64_t>(bytes_.back()) << 56;
    bytes_.pop_back();
    filled_ = tail;
  }
}

std::uint64_t BitReader::read_split(int bits) {
  // refill() already ran: either the stream is exhausted mid-field, or the
  // field straddles the accumulator boundary (avail_ >= 57, bits > avail_).
  if (pos_ >= size_) return underrun();
  const int first = avail_;
  const std::uint64_t hi = extract(first);
  refill();
  const int rest = bits - first;  // 1..7
  if (rest > avail_) return underrun();
  return (hi << rest) | extract(rest);
}

std::uint64_t BitReader::underrun() {
  eof_ = true;
  consumed_ = size_ * 8;
  pos_ = size_;
  acc_ = 0;
  avail_ = 0;
  return 0;
}

}  // namespace hpcmon::store
