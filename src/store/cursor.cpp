#include "store/cursor.hpp"

#include "store/chunk.hpp"
#include "store/codec_detail.hpp"

namespace hpcmon::store {

using core::TimedValue;

ChunkCursor::ChunkCursor(const Chunk& chunk)
    : reader_(chunk.payload()), count_(chunk.count()) {}

bool ChunkCursor::next(TimedValue& out) {
  if (index_ >= count_) return false;
  if (index_ == 0) {
    // Header point: full timestamp + full value bits.
    time_ = detail::unzigzag(reader_.read(64));
    value_bits_ = reader_.read(64);
    out = {time_, detail::bits_double(value_bits_)};
    ++index_;
    return true;
  }
  // Accumulate in unsigned space: a corrupt stream can carry deltas that
  // overflow int64, which must wrap (and fail validation) rather than be UB.
  prev_delta_ = static_cast<std::int64_t>(
      static_cast<std::uint64_t>(prev_delta_) +
      static_cast<std::uint64_t>(detail::read_dod(reader_)));
  time_ = static_cast<std::int64_t>(static_cast<std::uint64_t>(time_) +
                                    static_cast<std::uint64_t>(prev_delta_));
  if (reader_.read_bit()) {
    std::uint64_t x;
    if (reader_.read_bit()) {
      prev_leading_ = static_cast<int>(reader_.read(5));
      const int meaningful = static_cast<int>(reader_.read(6)) + 1;
      prev_trailing_ = 64 - prev_leading_ - meaningful;
      if (prev_trailing_ < 0) {  // window wider than 64 bits: garbage stream
        index_ = count_;
        return false;
      }
      x = reader_.read(meaningful) << prev_trailing_;
    } else {
      const int meaningful = 64 - prev_leading_ - prev_trailing_;
      x = reader_.read(meaningful) << prev_trailing_;
    }
    value_bits_ ^= x;
  }
  if (reader_.eof()) {  // malformed input: stop at what decoded cleanly
    index_ = count_;
    return false;
  }
  out = {time_, detail::bits_double(value_bits_)};
  ++index_;
  return true;
}

}  // namespace hpcmon::store
