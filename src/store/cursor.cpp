#include "store/cursor.hpp"

#include "store/chunk.hpp"
#include "store/codec_detail.hpp"

namespace hpcmon::store {

using core::TimedValue;

ChunkCursor::ChunkCursor(const Chunk& chunk)
    : reader_(chunk.payload()), count_(chunk.count()) {}

std::size_t ChunkCursor::scan_batch(std::span<TimedValue> out) {
  std::size_t produced = 0;
  if (out.empty() || index_ >= count_) return 0;
  if (index_ == 0) {
    // Header point: full timestamp + full value bits.
    time_ = detail::unzigzag(reader_.read(64));
    value_bits_ = reader_.read(64);
    out[0] = {time_, detail::bits_double(value_bits_)};
    ++index_;
    if (++produced == out.size()) return produced;
  }

  // Decoder state lives in locals for the duration of the block so the
  // inner loop runs out of registers; spilled back on exit (the cursor is
  // resumable across scan_batch/next calls).
  std::int64_t time = time_;
  std::int64_t prev_delta = prev_delta_;
  std::uint64_t vbits = value_bits_;
  int lead = prev_leading_;
  int trail = prev_trailing_;
  std::uint32_t idx = index_;

  while (idx < count_ && produced < out.size()) {
    // Accumulate in unsigned space: a corrupt stream can carry deltas that
    // overflow int64, which must wrap (and fail validation) rather than be
    // UB.
    prev_delta = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(prev_delta) +
        static_cast<std::uint64_t>(detail::read_dod(reader_)));
    time = static_cast<std::int64_t>(static_cast<std::uint64_t>(time) +
                                     static_cast<std::uint64_t>(prev_delta));
    // Value control: '0' same value, '10' reuse window, '11' new window.
    // peek is zero-padded past end-of-stream, so a truncated control bit
    // lands in the '0'/'10' arms and the skip/read below trips eof.
    const auto ctl = static_cast<unsigned>(reader_.peek(2));
    if ((ctl & 0b10u) == 0) {
      reader_.skip(1);
    } else if (ctl == 0b11u) {
      reader_.skip(2);
      const std::uint64_t win = reader_.read(11);  // 5b leading, 6b meaningful
      lead = static_cast<int>(win >> 6);
      const int meaningful = static_cast<int>(win & 63u) + 1;
      trail = 64 - lead - meaningful;
      if (trail < 0) {  // window wider than 64 bits: garbage stream
        idx = count_;
        break;
      }
      vbits ^= reader_.read(meaningful) << trail;
    } else {
      reader_.skip(2);
      const int meaningful = 64 - lead - trail;
      vbits ^= reader_.read(meaningful) << trail;
    }
    if (reader_.eof()) {  // malformed input: stop at what decoded cleanly
      idx = count_;
      break;
    }
    out[produced++] = {time, detail::bits_double(vbits)};
    ++idx;
  }

  time_ = time;
  prev_delta_ = prev_delta;
  value_bits_ = vbits;
  prev_leading_ = lead;
  prev_trailing_ = trail;
  index_ = idx;
  return produced;
}

std::size_t decode_all(const Chunk& chunk, std::vector<TimedValue>& out) {
  const std::size_t base = out.size();
  out.resize(base + chunk.count());
  ChunkCursor cursor(chunk);
  const std::size_t n = cursor.scan_batch({out.data() + base, chunk.count()});
  out.resize(base + n);
  return n;
}

}  // namespace hpcmon::store
