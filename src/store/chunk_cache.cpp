#include "store/chunk_cache.hpp"

namespace hpcmon::store {

DecodedChunk ChunkCache::get(std::uint64_t chunk_id) {
  std::scoped_lock lock(mu_);
  const auto it = index_.find(chunk_id);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void ChunkCache::put(std::uint64_t chunk_id, DecodedChunk points) {
  if (capacity_ == 0) return;
  std::scoped_lock lock(mu_);
  if (index_.contains(chunk_id)) return;  // racing readers decoded it twice
  while (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.emplace_front(chunk_id, std::move(points));
  index_.emplace(chunk_id, lru_.begin());
}

void ChunkCache::erase(std::uint64_t chunk_id) {
  std::scoped_lock lock(mu_);
  const auto it = index_.find(chunk_id);
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
  ++stats_.invalidations;
}

ChunkCache::Stats ChunkCache::stats() const {
  std::scoped_lock lock(mu_);
  Stats s = stats_;
  s.entries = lru_.size();
  return s;
}

}  // namespace hpcmon::store
