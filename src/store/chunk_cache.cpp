#include "store/chunk_cache.hpp"

namespace hpcmon::store {

DecodedChunk ChunkCache::get(std::uint64_t chunk_id) {
  std::scoped_lock lock(mu_);
  const auto it = index_.find(chunk_id);
  if (it == index_.end()) {
    misses_.add();
    return nullptr;
  }
  hits_.add();
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void ChunkCache::put(std::uint64_t chunk_id, DecodedChunk points) {
  if (capacity_ == 0) return;
  std::scoped_lock lock(mu_);
  if (index_.contains(chunk_id)) return;  // racing readers decoded it twice
  while (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    evictions_.add();
  }
  lru_.emplace_front(chunk_id, std::move(points));
  index_.emplace(chunk_id, lru_.begin());
  entries_.set(static_cast<double>(lru_.size()));
}

void ChunkCache::erase(std::uint64_t chunk_id) {
  std::scoped_lock lock(mu_);
  const auto it = index_.find(chunk_id);
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
  invalidations_.add();
  entries_.set(static_cast<double>(lru_.size()));
}

ChunkCache::Stats ChunkCache::stats() const {
  Stats s;
  s.hits = hits_.value();
  s.misses = misses_.value();
  s.evictions = evictions_.value();
  s.invalidations = invalidations_.value();
  {
    std::scoped_lock lock(mu_);
    s.entries = lru_.size();
  }
  return s;
}

void ChunkCache::attach_to(obs::ObsRegistry& registry) const {
  using obs::GaugeAgg;
  registry.attach({"store.cache_hits", "chunks", "decode-cache hits"}, &hits_);
  registry.attach({"store.cache_misses", "chunks", "decode-cache misses"},
                  &misses_);
  registry.attach(
      {"store.cache_evictions", "chunks", "decode-cache capacity evictions"},
      &evictions_);
  registry.attach({"store.cache_invalidations", "chunks",
                   "decode-cache entries dropped by store eviction"},
                  &invalidations_);
  obs::InstrumentInfo entries;
  entries.name = "store.cache_entries";
  entries.unit = "chunks";
  entries.description = "decoded chunks resident in the cache";
  entries.gauge_agg = GaugeAgg::kSum;  // shards report total residency
  registry.attach(entries, &entries_);
}

}  // namespace hpcmon::store
