// Job allocation store: which job held which nodes, when.
//
// The paper notes (Fig 4/5 discussion) that "per-job analysis requires
// storing and extraction of job allocations and timeframes, which adds to
// storage and query complexity". JobStore is that piece: populated from
// scheduler events, queried by the drill-down path (aggregate spike ->
// component -> owning job) and by per-job dashboards.
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/ids.hpp"
#include "core/time.hpp"

namespace hpcmon::store {

/// Store-side view of a job (decoupled from the simulator's JobRecord).
struct JobMeta {
  core::JobId id = core::kNoJob;
  std::string app_name;
  std::vector<int> nodes;  // node indices
  core::TimePoint submit_time = 0;
  core::TimePoint start_time = -1;
  core::TimePoint end_time = -1;  // -1 while running
  bool failed = false;

  bool running_at(core::TimePoint t) const {
    return start_time >= 0 && t >= start_time &&
           (end_time < 0 || t < end_time);
  }
};

class JobStore {
 public:
  void record_start(const JobMeta& meta);
  /// Record completion; `meta.id` must have been started (else inserted).
  void record_end(const JobMeta& meta);

  std::optional<JobMeta> get(core::JobId id) const;
  /// Jobs whose [start, end) intersects the range (running jobs included).
  std::vector<JobMeta> jobs_overlapping(const core::TimeRange& range) const;
  /// Job holding `node` at time t, if any.
  std::optional<JobMeta> job_on_node_at(int node, core::TimePoint t) const;
  std::vector<JobMeta> running_at(core::TimePoint t) const;
  std::size_t size() const;

  /// All completed runs of an app, for runtime-variability analysis
  /// (HLRS aggressor/victim, Sec. II.10).
  std::vector<JobMeta> completed_runs_of(const std::string& app_name) const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<core::JobId, JobMeta> jobs_;
};

}  // namespace hpcmon::store
