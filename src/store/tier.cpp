#include "store/tier.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>

#include "core/crc32.hpp"
#include "store/cursor.hpp"

namespace hpcmon::store {
namespace fs = std::filesystem;
using core::FsFault;
using core::FsOp;
using core::Result;
using core::Status;

namespace {

constexpr std::uint32_t kTierMagic = 0x46545048;     // "HPTF"
constexpr std::uint32_t kTierVersion = 1;
constexpr std::uint32_t kJournalMagic = 0x4A435048;  // "HPCJ"
constexpr std::uint32_t kJournalVersion = 1;
constexpr std::size_t kHeaderBytes = 56;
constexpr std::size_t kEntryBytes = 84;
constexpr std::size_t kIndexCrcOffset = 52;  // last header field

enum JournalType : std::uint8_t {
  kIntent = 1,   // op, dest (tier, cls, seq), srcs
  kCommit = 2,   // watermark (INT64_MIN = unchanged), ops
  kCleaned = 3,  // op (all of the op's source unlinks completed)
  kDelete = 4,   // op, srcs (expiry: deletion recorded ahead of unlinks)
};

struct FileId {
  std::uint32_t tier = 0;
  std::uint32_t cls = 0;
  std::uint64_t seq = 0;
};

// Fixed-layout little-helper codec (host-endian, like every other on-disk
// format in the repo).
struct Buf {
  std::vector<std::uint8_t> b;
  void put(const void* p, std::size_t n) {
    const auto* c = static_cast<const std::uint8_t*>(p);
    b.insert(b.end(), c, c + n);
  }
  void u8(std::uint8_t v) { put(&v, 1); }
  void u32(std::uint32_t v) { put(&v, 4); }
  void u64(std::uint64_t v) { put(&v, 8); }
  void i64(std::int64_t v) { put(&v, 8); }
  void f64(double v) { put(&v, 8); }
};

struct Reader {
  const std::uint8_t* p = nullptr;
  std::size_t n = 0;
  std::size_t off = 0;
  bool fail = false;

  bool get(void* d, std::size_t k) {
    if (fail || off + k > n) {
      fail = true;
      return false;
    }
    std::memcpy(d, p + off, k);
    off += k;
    return true;
  }
  std::uint8_t u8() { std::uint8_t v = 0; get(&v, 1); return v; }
  std::uint32_t u32() { std::uint32_t v = 0; get(&v, 4); return v; }
  std::uint64_t u64() { std::uint64_t v = 0; get(&v, 8); return v; }
  std::int64_t i64() { std::int64_t v = 0; get(&v, 8); return v; }
  double f64() { double v = 0; get(&v, 8); return v; }
};

core::TimePoint bucket_start(core::TimePoint t, core::Duration b) {
  auto q = t / b;
  if (t % b < 0) --q;
  return q * b;
}

}  // namespace

// ---------------------------------------------------------------- TierFile

Result<std::shared_ptr<const TierFile>> TierFile::load(std::string path) {
  using R = Result<std::shared_ptr<const TierFile>>;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return R(Status::error("tier: cannot open " + path));
  std::fseek(f, 0, SEEK_END);
  const long fsize = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (fsize < static_cast<long>(kHeaderBytes)) {
    std::fclose(f);
    return R(Status::corruption("tier: truncated header in " + path));
  }
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(fsize));
  const bool read_ok = std::fread(buf.data(), 1, buf.size(), f) == buf.size();
  std::fclose(f);
  if (!read_ok) return R(Status::error("tier: cannot read " + path));

  Reader r{buf.data(), buf.size()};
  auto file = std::shared_ptr<TierFile>(new TierFile());
  const auto magic = r.u32();
  const auto version = r.u32();
  file->meta_.tier = r.u32();
  file->meta_.cls = r.u32();
  file->meta_.seq = r.u64();
  file->meta_.resolution = r.i64();
  file->meta_.min_time = r.i64();
  file->meta_.max_time = r.i64();
  const auto entry_count = r.u32();
  const auto stored_crc = r.u32();
  if (r.fail || magic != kTierMagic || version != kTierVersion) {
    return R(Status::corruption("tier: bad magic/version in " + path));
  }
  const std::size_t index_end =
      kHeaderBytes + static_cast<std::size_t>(entry_count) * kEntryBytes;
  if (index_end > buf.size()) {
    return R(Status::corruption("tier: truncated index in " + path));
  }
  // index_crc covers header (crc field excluded) + index.
  std::uint32_t crc = core::crc32(buf.data(), kIndexCrcOffset);
  crc = core::crc32(buf.data() + kHeaderBytes, index_end - kHeaderBytes, crc);
  if (crc != stored_crc) {
    return R(Status::corruption("tier: index CRC mismatch in " + path));
  }
  if (file->meta_.cls >= core::kPriorityClasses ||
      file->meta_.min_time > file->meta_.max_time) {
    return R(Status::corruption("tier: invalid metadata in " + path));
  }
  file->entries_.reserve(entry_count);
  for (std::uint32_t i = 0; i < entry_count; ++i) {
    TierEntry e;
    e.series = core::SeriesId{r.u32()};
    e.summary.count = r.u64();
    e.min_time = r.i64();
    e.max_time = r.i64();
    e.summary.sum = r.f64();
    e.summary.min = r.f64();
    e.summary.max = r.f64();
    e.summary.first = r.f64();
    e.summary.last = r.f64();
    e.offset = r.u64();
    e.payload_len = r.u32();
    e.payload_crc = r.u32();
    if (r.fail || e.offset < index_end || e.offset + e.payload_len > buf.size() ||
        e.min_time > e.max_time || e.summary.count == 0) {
      return R(Status::corruption("tier: invalid index entry in " + path));
    }
    file->entries_.push_back(e);
  }
  file->path_ = std::move(path);
  file->bytes_ = buf.size();
  return R(std::shared_ptr<const TierFile>(std::move(file)));
}

std::vector<const TierEntry*> TierFile::find(core::SeriesId series,
                                             const core::TimeRange& range)
    const {
  std::vector<const TierEntry*> out;
  if (range.begin >= range.end) return out;
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), series,
      [](const TierEntry& e, core::SeriesId s) {
        return core::raw(e.series) < core::raw(s);
      });
  for (; it != entries_.end() && core::raw(it->series) == core::raw(series);
       ++it) {
    if (it->min_time < range.end && range.begin <= it->max_time) {
      out.push_back(&*it);
    }
  }
  return out;
}

Result<Chunk> TierFile::load_chunk(const TierEntry& e) const {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return Result<Chunk>::error("tier: cannot open " + path_);
  std::vector<std::uint8_t> raw(e.payload_len);
  const bool ok =
      std::fseek(f, static_cast<long>(e.offset), SEEK_SET) == 0 &&
      std::fread(raw.data(), 1, raw.size(), f) == raw.size();
  std::fclose(f);
  if (!ok) return Result<Chunk>::error("tier: cannot read entry in " + path_);
  if (core::crc32(raw.data(), raw.size()) != e.payload_crc) {
    return Result<Chunk>(
        Status::corruption("tier: payload CRC mismatch in " + path_));
  }
  Chunk c = Chunk::deserialize(raw);
  if (c.empty()) {
    return Result<Chunk>(
        Status::corruption("tier: payload failed decode validation in " +
                           path_));
  }
  return Result<Chunk>(std::move(c));
}

// --------------------------------------------------------------- TierStore

TierStore::TierStore(Options opts)
    : opts_(std::move(opts)), watermark_(INT64_MIN) {
  files_.resize(opts_.policy.tiers.size());
}

TierStore::~TierStore() {
  std::scoped_lock lock(mu_);
  if (journal_ != nullptr) std::fclose(journal_);
}

std::string TierStore::journal_path() const {
  return opts_.dir + "/compact.journal";
}

std::string TierStore::tier_dir(std::uint32_t tier) const {
  return opts_.dir + "/t" + std::to_string(tier);
}

std::string TierStore::file_path(std::uint32_t tier, std::uint32_t cls,
                                 std::uint64_t seq) const {
  char name[64];
  std::snprintf(name, sizeof(name), "tier-%08" PRIu64 "-c%u.tf", seq, cls);
  return tier_dir(tier) + "/" + name;
}

bool TierStore::crashed() const {
  std::scoped_lock lock(mu_);
  return crashed_;
}

core::TimePoint TierStore::watermark() const {
  std::scoped_lock lock(mu_);
  return watermark_;
}

core::FsFault TierStore::consult_locked(FsOp op) {
  if (opts_.faults == nullptr || !opened_) return FsFault::kNone;
  const auto f = opts_.faults->fs_fault(op);
  if (f == FsFault::kCrash) crashed_ = true;
  return f;
}

Status TierStore::write_file_locked(const std::string& path,
                                    const std::vector<std::uint8_t>& bytes) {
  switch (consult_locked(FsOp::kOpen)) {
    case FsFault::kNone: break;
    case FsFault::kCrash: return Status::error("tier: crashed at open");
    case FsFault::kEnospc: return Status::error("tier: injected ENOSPC (open)");
    default: return Status::error("tier: injected open error");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::error("tier: cannot open " + path);
  switch (consult_locked(FsOp::kWrite)) {
    case FsFault::kNone: break;
    case FsFault::kCrash:
      // Die mid-write: half the bytes reach disk, nothing is cleaned up.
      std::fwrite(bytes.data(), 1, bytes.size() / 2, f);
      std::fclose(f);
      return Status::error("tier: crashed at write");
    case FsFault::kShortWrite:
      std::fwrite(bytes.data(), 1, bytes.size() / 2, f);
      std::fclose(f);
      std::remove(path.c_str());  // still alive: abort cleans its torn temp
      return Status::error("tier: injected short write");
    case FsFault::kEnospc:
      std::fclose(f);
      std::remove(path.c_str());
      return Status::error("tier: injected ENOSPC (write)");
    default:
      std::fclose(f);
      std::remove(path.c_str());
      return Status::error("tier: injected write error");
  }
  if (std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    std::fclose(f);
    std::remove(path.c_str());
    return Status::error("tier: short write to " + path);
  }
  switch (consult_locked(FsOp::kFsync)) {
    case FsFault::kNone: break;
    case FsFault::kCrash:
      std::fclose(f);
      return Status::error("tier: crashed at fsync");
    case FsFault::kEnospc:
      std::fclose(f);
      std::remove(path.c_str());
      return Status::error("tier: injected ENOSPC (fsync)");
    default:
      std::fclose(f);
      std::remove(path.c_str());
      return Status::error("tier: injected fsync error");
  }
  const bool ok = std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(path.c_str());
    return Status::error("tier: fsync failed for " + path);
  }
  return Status::ok();
}

Status TierStore::rename_locked(const std::string& from,
                                const std::string& to) {
  // An injected kCrash here models crash-BEFORE-rename (the rename never
  // happens). Crash-AFTER-rename is exactly a kCrash at the next fs op, so
  // the crash matrix covers both sides by sweeping the op index.
  switch (consult_locked(FsOp::kRename)) {
    case FsFault::kNone: break;
    case FsFault::kCrash: return Status::error("tier: crashed at rename");
    default: return Status::error("tier: injected rename error");
  }
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::error("tier: cannot rename " + from + " over " + to);
  }
  return Status::ok();
}

Status TierStore::unlink_locked(const std::string& path) {
  switch (consult_locked(FsOp::kUnlink)) {
    case FsFault::kNone: break;
    case FsFault::kCrash: return Status::error("tier: crashed at unlink");
    default: return Status::error("tier: injected unlink error");
  }
  if (std::remove(path.c_str()) != 0 && errno != ENOENT) {
    return Status::error("tier: cannot unlink " + path);
  }
  return Status::ok();
}

Status TierStore::journal_append_locked(
    const std::vector<std::uint8_t>& payload) {
  if (journal_ == nullptr) return Status::error("tier: journal not open");
  if (journal_poisoned_) return Status::error("tier: journal poisoned");
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = core::crc32(payload.data(), payload.size());
  switch (consult_locked(FsOp::kWrite)) {
    case FsFault::kNone: break;
    case FsFault::kCrash:
      // Torn journal record on disk; replay treats it as absent.
      std::fwrite(&len, 4, 1, journal_);
      std::fwrite(&crc, 4, 1, journal_);
      std::fwrite(payload.data(), 1, payload.size() / 2, journal_);
      std::fflush(journal_);
      return Status::error("tier: crashed at journal write");
    case FsFault::kShortWrite:
      std::fwrite(&len, 4, 1, journal_);
      std::fwrite(&crc, 4, 1, journal_);
      std::fwrite(payload.data(), 1, payload.size() / 2, journal_);
      std::fflush(journal_);
      journal_poisoned_ = true;  // tail is torn; heal by atomic rewrite
      return Status::error("tier: injected short journal write");
    case FsFault::kEnospc:
      return Status::error("tier: injected ENOSPC (journal)");
    default:
      return Status::error("tier: injected journal write error");
  }
  const bool wrote = std::fwrite(&len, 4, 1, journal_) == 1 &&
                     std::fwrite(&crc, 4, 1, journal_) == 1 &&
                     std::fwrite(payload.data(), 1, payload.size(),
                                 journal_) == payload.size() &&
                     std::fflush(journal_) == 0;
  if (!wrote) {
    journal_poisoned_ = true;
    return Status::error("tier: journal write failed");
  }
  switch (consult_locked(FsOp::kFsync)) {
    case FsFault::kNone: break;
    case FsFault::kCrash:
      // The record reached the file before the "crash": the durable state
      // is crash-after-append, which recovery must (and does) handle.
      return Status::error("tier: crashed at journal fsync");
    default:
      // Unknown durability — poison so the next pass rewrites atomically.
      journal_poisoned_ = true;
      return Status::error("tier: injected journal fsync error");
  }
  if (::fsync(fileno(journal_)) != 0) {
    journal_poisoned_ = true;
    return Status::error("tier: journal fsync failed");
  }
  journal_records_.add();
  return Status::ok();
}

namespace {

Buf encode_intent(std::uint64_t op, const FileId& dest,
                  const std::vector<FileId>& srcs) {
  Buf b;
  b.u8(kIntent);
  b.u64(op);
  b.u32(dest.tier);
  b.u32(dest.cls);
  b.u64(dest.seq);
  b.u32(static_cast<std::uint32_t>(srcs.size()));
  for (const auto& s : srcs) {
    b.u32(s.tier);
    b.u32(s.cls);
    b.u64(s.seq);
  }
  return b;
}

Buf encode_commit(core::TimePoint watermark,
                  const std::vector<std::uint64_t>& ops) {
  Buf b;
  b.u8(kCommit);
  b.i64(watermark);
  b.u32(static_cast<std::uint32_t>(ops.size()));
  for (const auto op : ops) b.u64(op);
  return b;
}

Buf encode_cleaned(std::uint64_t op) {
  Buf b;
  b.u8(kCleaned);
  b.u64(op);
  return b;
}

Buf encode_delete(std::uint64_t op, const std::vector<FileId>& srcs) {
  Buf b;
  b.u8(kDelete);
  b.u64(op);
  b.u32(static_cast<std::uint32_t>(srcs.size()));
  for (const auto& s : srcs) {
    b.u32(s.tier);
    b.u32(s.cls);
    b.u64(s.seq);
  }
  return b;
}

struct JournalState {
  struct Intent {
    FileId dest;
    std::vector<FileId> srcs;
  };
  std::map<std::uint64_t, Intent> intents;
  std::map<std::uint64_t, std::vector<FileId>> deletes;
  std::vector<std::uint64_t> committed;  // in commit order
  std::vector<std::uint64_t> cleaned;
  core::TimePoint watermark = INT64_MIN;
  std::uint64_t max_op = 0;
  std::uint64_t max_seq = 0;

  bool is_committed(std::uint64_t op) const {
    return std::find(committed.begin(), committed.end(), op) !=
           committed.end();
  }
  bool is_cleaned(std::uint64_t op) const {
    return std::find(cleaned.begin(), cleaned.end(), op) != cleaned.end();
  }
};

/// Parse the journal, tolerating a torn/corrupt tail (everything after the
/// first bad record is ignored — exactly the WAL replay posture).
JournalState parse_journal(const std::string& path) {
  JournalState js;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return js;
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (std::fread(&magic, 4, 1, f) != 1 || magic != kJournalMagic ||
      std::fread(&version, 4, 1, f) != 1 || version != kJournalVersion) {
    std::fclose(f);
    return js;
  }
  std::vector<std::uint8_t> payload;
  for (;;) {
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    if (std::fread(&len, 4, 1, f) != 1 || std::fread(&crc, 4, 1, f) != 1) {
      break;
    }
    if (len == 0 || len > (1u << 20)) break;  // implausible: torn tail
    payload.resize(len);
    if (std::fread(payload.data(), 1, len, f) != len) break;
    if (core::crc32(payload.data(), len) != crc) break;
    Reader r{payload.data(), payload.size()};
    const auto type = r.u8();
    switch (type) {
      case kIntent: {
        const auto op = r.u64();
        JournalState::Intent in;
        in.dest.tier = r.u32();
        in.dest.cls = r.u32();
        in.dest.seq = r.u64();
        const auto n = r.u32();
        for (std::uint32_t i = 0; i < n && !r.fail; ++i) {
          FileId s;
          s.tier = r.u32();
          s.cls = r.u32();
          s.seq = r.u64();
          in.srcs.push_back(s);
        }
        if (r.fail) break;
        js.max_op = std::max(js.max_op, op);
        js.max_seq = std::max(js.max_seq, in.dest.seq);
        js.intents[op] = std::move(in);
        break;
      }
      case kCommit: {
        const auto wm = r.i64();
        const auto n = r.u32();
        std::vector<std::uint64_t> ops;
        for (std::uint32_t i = 0; i < n && !r.fail; ++i) {
          ops.push_back(r.u64());
        }
        if (r.fail) break;
        js.watermark = std::max(js.watermark, wm);
        for (const auto op : ops) js.committed.push_back(op);
        break;
      }
      case kCleaned: {
        const auto op = r.u64();
        if (r.fail) break;
        js.cleaned.push_back(op);
        break;
      }
      case kDelete: {
        const auto op = r.u64();
        const auto n = r.u32();
        std::vector<FileId> srcs;
        for (std::uint32_t i = 0; i < n && !r.fail; ++i) {
          FileId s;
          s.tier = r.u32();
          s.cls = r.u32();
          s.seq = r.u64();
          srcs.push_back(s);
        }
        if (r.fail) break;
        js.max_op = std::max(js.max_op, op);
        js.deletes[op] = std::move(srcs);
        break;
      }
      default:
        break;  // unknown type: skip (forward compatibility)
    }
  }
  std::fclose(f);
  return js;
}

}  // namespace

Status TierStore::open() {
  std::scoped_lock lock(mu_);
  if (opened_) return Status::error("tier: already open");
  std::error_code ec;
  fs::create_directories(opts_.dir, ec);
  for (std::uint32_t k = 0; k < files_.size(); ++k) {
    fs::create_directories(tier_dir(k), ec);
  }
  if (ec) return Status::error("tier: cannot create " + opts_.dir);

  // 1. Replay the journal (recovery is NOT fault-injected: it is idempotent
  // and a crash during it is just another recovery on the next open()).
  const auto js = parse_journal(journal_path());
  watermark_ = js.watermark;
  next_op_ = js.max_op + 1;
  next_seq_ = js.max_seq + 1;
  const auto real_unlink = [](const std::string& p) { std::remove(p.c_str()); };
  for (const auto& [op, intent] : js.intents) {
    if (!js.is_committed(op)) {
      // Uncommitted intent: roll back — the destination (temp or renamed)
      // is deleted, the sources were never touched.
      const auto dest =
          file_path(intent.dest.tier, intent.dest.cls, intent.dest.seq);
      real_unlink(dest + ".tmp");
      real_unlink(dest);
    } else if (!js.is_cleaned(op)) {
      // Committed but not cleaned: re-run the source unlinks (idempotent).
      for (const auto& s : intent.srcs) {
        real_unlink(file_path(s.tier, s.cls, s.seq));
      }
    }
  }
  for (const auto& [op, srcs] : js.deletes) {
    if (!js.is_cleaned(op)) {
      for (const auto& s : srcs) real_unlink(file_path(s.tier, s.cls, s.seq));
    }
  }

  // 2. Scan the tier directories: drop stray temps, verify and publish
  // every tier file, quarantine files that fail their integrity checks.
  for (std::uint32_t k = 0; k < files_.size(); ++k) {
    std::vector<std::string> paths;
    for (const auto& de : fs::directory_iterator(tier_dir(k), ec)) {
      paths.push_back(de.path().string());
    }
    std::sort(paths.begin(), paths.end());  // deterministic publish order
    for (const auto& p : paths) {
      if (p.size() > 4 && p.substr(p.size() - 4) == ".tmp") {
        real_unlink(p);
        continue;
      }
      if (p.size() < 3 || p.substr(p.size() - 3) != ".tf") continue;
      auto loaded = TierFile::load(p);
      if (loaded.is_ok() && loaded.value()->meta().tier == k) {
        next_seq_ = std::max(next_seq_, loaded.value()->meta().seq + 1);
        files_[k].push_back(std::move(loaded).take());
      } else {
        std::rename(p.c_str(), (p + ".corrupt").c_str());
        ++quarantined_;
        quarantined_files_.add();
      }
    }
  }

  // 3. Rewrite a compact journal: just the watermark carrier (every pending
  // cleanup was re-run above), fsynced and atomically renamed into place.
  // Fault injection gates on opened_, so recovery I/O is never injected.
  const auto st = rewrite_journal_locked();
  if (!st.is_ok()) return st;
  opened_ = true;
  refresh_gauges_locked();
  return Status::ok();
}

Status TierStore::rewrite_journal_locked() {
  // Build the compacted journal: header + watermark carrier + a kDelete per
  // pending cleanup (so a crash cannot orphan a committed source file).
  Buf content;
  content.u32(kJournalMagic);
  content.u32(kJournalVersion);
  const auto add_record = [&content](const Buf& rec) {
    content.u32(static_cast<std::uint32_t>(rec.b.size()));
    content.u32(core::crc32(rec.b.data(), rec.b.size()));
    content.put(rec.b.data(), rec.b.size());
  };
  add_record(encode_commit(watermark_, {}));
  for (const auto& pc : pending_) {
    std::vector<FileId> ids;
    for (const auto& s : pc.srcs) ids.push_back({s.tier, s.cls, s.seq});
    add_record(encode_delete(pc.op, ids));
  }

  if (journal_ != nullptr) {
    std::fclose(journal_);
    journal_ = nullptr;
  }
  const auto path = journal_path();
  const auto tmp = path + ".tmp";
  auto st = write_file_locked(tmp, content.b);
  if (!st.is_ok()) return st;
  st = rename_locked(tmp, path);
  if (!st.is_ok()) {
    if (!crashed_) std::remove(tmp.c_str());
    return st;
  }
  journal_ = std::fopen(path.c_str(), "ab");
  if (journal_ == nullptr) {
    return Status::error("tier: cannot reopen journal");
  }
  journal_poisoned_ = false;
  return Status::ok();
}

Status TierStore::write_tier_file_locked(const TierWriteSpec& spec,
                                         std::uint64_t seq,
                                         std::uint64_t /*op_id*/,
                                         std::shared_ptr<const TierFile>* out) {
  if (spec.chunks.empty()) return Status::error("tier: empty write spec");
  if (spec.tier >= files_.size()) return Status::error("tier: bad tier");
  const std::size_t n = spec.chunks.size();
  const std::size_t index_end = kHeaderBytes + n * kEntryBytes;

  auto file = std::shared_ptr<TierFile>(new TierFile());
  file->meta_.tier = spec.tier;
  file->meta_.cls = spec.cls;
  file->meta_.seq = seq;
  file->meta_.resolution = opts_.policy.tiers[spec.tier].resolution;
  file->meta_.min_time = spec.chunks.front().min_time;
  file->meta_.max_time = spec.chunks.front().max_time;

  Buf body;  // payload region
  file->entries_.reserve(n);
  for (const auto& sc : spec.chunks) {
    TierEntry e;
    e.series = sc.series;
    e.min_time = sc.min_time;
    e.max_time = sc.max_time;
    e.summary = sc.summary;
    e.offset = index_end + body.b.size();
    e.payload_len = static_cast<std::uint32_t>(sc.payload.size());
    e.payload_crc = core::crc32(sc.payload.data(), sc.payload.size());
    body.put(sc.payload.data(), sc.payload.size());
    file->entries_.push_back(e);
    file->meta_.min_time = std::min(file->meta_.min_time, sc.min_time);
    file->meta_.max_time = std::max(file->meta_.max_time, sc.max_time);
  }

  Buf all;
  all.u32(kTierMagic);
  all.u32(kTierVersion);
  all.u32(file->meta_.tier);
  all.u32(file->meta_.cls);
  all.u64(file->meta_.seq);
  all.i64(file->meta_.resolution);
  all.i64(file->meta_.min_time);
  all.i64(file->meta_.max_time);
  all.u32(static_cast<std::uint32_t>(n));
  all.u32(0);  // index_crc patched below
  for (const auto& e : file->entries_) {
    all.u32(core::raw(e.series));
    all.u64(e.summary.count);
    all.i64(e.min_time);
    all.i64(e.max_time);
    all.f64(e.summary.sum);
    all.f64(e.summary.min);
    all.f64(e.summary.max);
    all.f64(e.summary.first);
    all.f64(e.summary.last);
    all.u64(e.offset);
    all.u32(e.payload_len);
    all.u32(e.payload_crc);
  }
  std::uint32_t crc = core::crc32(all.b.data(), kIndexCrcOffset);
  crc = core::crc32(all.b.data() + kHeaderBytes, index_end - kHeaderBytes,
                    crc);
  std::memcpy(all.b.data() + kIndexCrcOffset, &crc, 4);
  all.put(body.b.data(), body.b.size());

  const auto path = file_path(spec.tier, spec.cls, seq);
  const auto tmp = path + ".tmp";
  auto st = write_file_locked(tmp, all.b);
  if (!st.is_ok()) return st;
  st = rename_locked(tmp, path);
  if (!st.is_ok()) {
    if (!crashed_) std::remove(tmp.c_str());
    return st;
  }
  file->path_ = path;
  file->bytes_ = all.b.size();
  *out = std::move(file);
  return Status::ok();
}

void TierStore::publish_locked(std::shared_ptr<const TierFile> f) {
  files_[f->meta().tier].push_back(std::move(f));
}

void TierStore::unpublish_locked(const TierFile& f) {
  auto& vec = files_[f.meta().tier];
  for (auto it = vec.begin(); it != vec.end(); ++it) {
    if ((*it)->meta().seq == f.meta().seq &&
        (*it)->meta().cls == f.meta().cls) {
      vec.erase(it);
      return;
    }
  }
}

Status TierStore::cleanup_srcs_locked(std::uint64_t op_id,
                                      std::vector<SrcId> srcs) {
  std::vector<SrcId> remaining;
  for (const auto& s : srcs) {
    const auto st = unlink_locked(file_path(s.tier, s.cls, s.seq));
    if (!st.is_ok()) {
      if (crashed_) return st;
      remaining.push_back(s);
    }
  }
  if (!remaining.empty()) {
    // The transaction itself succeeded; the leftover unlinks are retried by
    // maintain() and re-run by recovery (the op has no kCleaned record).
    pending_.push_back({op_id, std::move(remaining)});
    return Status::ok();
  }
  // Best-effort: a failed kCleaned append only costs an idempotent re-unlink
  // at the next recovery.
  (void)journal_append_locked(encode_cleaned(op_id).b);
  return Status::ok();
}

Status TierStore::ingest_hot(const std::vector<TierWriteSpec>& specs,
                             core::TimePoint new_watermark) {
  std::scoped_lock lock(mu_);
  if (!opened_) return Status::error("tier: not open");
  if (crashed_) return Status::error("tier: crashed");
  if (journal_poisoned_) return Status::error("tier: journal poisoned");

  std::vector<std::uint64_t> ops;
  std::vector<std::shared_ptr<const TierFile>> written;
  const auto abort = [&](Status st) {
    if (!crashed_) {
      for (const auto& f : written) std::remove(f->path().c_str());
    }
    return st;
  };
  for (const auto& spec : specs) {
    if (spec.tier != 0) return abort(Status::error("tier: ingest targets t0"));
    const auto seq = next_seq_++;
    const auto op = next_op_++;
    auto st = journal_append_locked(
        encode_intent(op, {spec.tier, spec.cls, seq}, {}).b);
    if (!st.is_ok()) return abort(st);
    std::shared_ptr<const TierFile> f;
    st = write_tier_file_locked(spec, seq, op, &f);
    if (!st.is_ok()) return abort(st);
    written.push_back(std::move(f));
    ops.push_back(op);
  }
  // ONE commit covers every file of the pass plus the watermark: a crash
  // anywhere earlier rolls the whole pass back, so the hot store is never
  // evicted against a half-acknowledged compaction.
  const auto st = journal_append_locked(
      encode_commit(new_watermark, ops).b);
  if (!st.is_ok()) return abort(st);
  watermark_ = std::max(watermark_, new_watermark);
  for (auto& f : written) publish_locked(std::move(f));
  refresh_gauges_locked();
  return Status::ok();
}

Status TierStore::age(const std::vector<std::shared_ptr<const TierFile>>& srcs,
                      const TierWriteSpec& dest) {
  std::scoped_lock lock(mu_);
  if (!opened_) return Status::error("tier: not open");
  if (crashed_) return Status::error("tier: crashed");
  if (journal_poisoned_) return Status::error("tier: journal poisoned");
  if (srcs.empty()) return Status::error("tier: age without sources");

  const auto seq = next_seq_++;
  const auto op = next_op_++;
  std::vector<FileId> src_ids;
  std::vector<SrcId> src_refs;
  for (const auto& s : srcs) {
    src_ids.push_back({s->meta().tier, s->meta().cls, s->meta().seq});
    src_refs.push_back({s->meta().tier, s->meta().cls, s->meta().seq});
  }
  auto st = journal_append_locked(
      encode_intent(op, {dest.tier, dest.cls, seq}, src_ids).b);
  if (!st.is_ok()) return st;
  std::shared_ptr<const TierFile> f;
  st = write_tier_file_locked(dest, seq, op, &f);
  if (!st.is_ok()) return st;
  st = journal_append_locked(encode_commit(INT64_MIN, {op}).b);
  if (!st.is_ok()) {
    if (!crashed_) std::remove(f->path().c_str());
    return st;
  }
  // Atomic visibility swap: readers either see the sources or the
  // destination, never both and never neither.
  for (const auto& s : srcs) unpublish_locked(*s);
  publish_locked(std::move(f));
  refresh_gauges_locked();
  return cleanup_srcs_locked(op, std::move(src_refs));
}

Status TierStore::expire(
    const std::vector<std::shared_ptr<const TierFile>>& srcs) {
  std::scoped_lock lock(mu_);
  if (!opened_) return Status::error("tier: not open");
  if (crashed_) return Status::error("tier: crashed");
  if (journal_poisoned_) return Status::error("tier: journal poisoned");
  if (srcs.empty()) return Status::ok();

  const auto op = next_op_++;
  std::vector<FileId> src_ids;
  std::vector<SrcId> src_refs;
  for (const auto& s : srcs) {
    src_ids.push_back({s->meta().tier, s->meta().cls, s->meta().seq});
    src_refs.push_back({s->meta().tier, s->meta().cls, s->meta().seq});
  }
  const auto st = journal_append_locked(encode_delete(op, src_ids).b);
  if (!st.is_ok()) return st;
  for (const auto& s : srcs) unpublish_locked(*s);
  refresh_gauges_locked();
  return cleanup_srcs_locked(op, std::move(src_refs));
}

Status TierStore::maintain() {
  std::scoped_lock lock(mu_);
  if (!opened_) return Status::error("tier: not open");
  if (crashed_) return Status::error("tier: crashed");
  if (journal_poisoned_) {
    const auto st = rewrite_journal_locked();
    if (!st.is_ok()) return st;
  }
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& pc : pending) {
    const auto st = cleanup_srcs_locked(pc.op, std::move(pc.srcs));
    if (!st.is_ok()) return st;
  }
  return Status::ok();
}

// ------------------------------------------------------------- read path

std::vector<std::pair<std::shared_ptr<const TierFile>, const TierEntry*>>
TierStore::entries_for(core::SeriesId series,
                       const core::TimeRange& range) const {
  std::vector<std::pair<std::shared_ptr<const TierFile>, const TierEntry*>>
      out;
  {
    std::scoped_lock lock(mu_);
    for (const auto& tier : files_) {
      for (const auto& f : tier) {
        for (const auto* e : f->find(series, range)) {
          out.emplace_back(f, e);
        }
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second->min_time != b.second->min_time) {
      return a.second->min_time < b.second->min_time;
    }
    return a.second->payload_crc < b.second->payload_crc;
  });
  // A crash between a commit and the hot-store eviction legitimately tiers
  // the same chunk twice (WAL replay re-feeds it, a later pass re-tiers it
  // into a second file). Identical entries — same span, same count, same
  // payload bytes — are collapsed here so every read path (query,
  // aggregate, downsample, scan) sees each sample's custody exactly once.
  out.erase(std::unique(out.begin(), out.end(),
                        [](const auto& a, const auto& b) {
                          return a.second->min_time == b.second->min_time &&
                                 a.second->max_time == b.second->max_time &&
                                 a.second->summary.count ==
                                     b.second->summary.count &&
                                 a.second->payload_crc == b.second->payload_crc;
                        }),
            out.end());
  return out;
}

std::vector<core::TimedValue> TierStore::query_range(
    core::SeriesId series, const core::TimeRange& range) const {
  std::vector<core::TimedValue> out;
  std::vector<core::TimedValue> scratch;  // reused batch-decode buffer
  for (const auto& [file, e] : entries_for(series, range)) {
    entry_loads_.add();
    auto chunk = file->load_chunk(*e);
    if (!chunk.is_ok()) {
      load_failures_.add();
      continue;
    }
    scratch.clear();
    decode_all(chunk.value(), scratch);
    for (const auto& p : scratch) {
      if (p.time >= range.begin && p.time < range.end) out.push_back(p);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.time < b.time; });
  // A crash between a commit and the hot-store eviction legitimately tiers
  // the same chunk twice (WAL replay re-feeds it and a later pass re-tiers
  // it). Exact-timestamp duplicates are therefore collapsed on read.
  out.erase(std::unique(out.begin(), out.end(),
                        [](const auto& a, const auto& b) {
                          return a.time == b.time;
                        }),
            out.end());
  return out;
}

std::optional<core::TimedValue> TierStore::latest(
    core::SeriesId series) const {
  const core::TimeRange all{INT64_MIN + 1, INT64_MAX};
  const TierEntry* best = nullptr;
  std::shared_ptr<const TierFile> keep;
  for (const auto& [file, e] : entries_for(series, all)) {
    if (best == nullptr || e->max_time > best->max_time) {
      best = e;
      keep = file;
    }
  }
  if (best == nullptr) return std::nullopt;
  // The index summary tracks the temporally last raw value — no decode.
  return core::TimedValue{best->max_time, best->summary.last};
}

std::optional<double> TierStore::aggregate(core::SeriesId series,
                                           const core::TimeRange& range,
                                           Agg agg) const {
  ChunkSummary acc;
  std::vector<core::TimedValue> scratch;  // reused batch-decode buffer
  for (const auto& [file, e] : entries_for(series, range)) {
    if (range.begin <= e->min_time && e->max_time < range.end) {
      // Fully covered: the raw-sample summary is EXACT regardless of tier.
      acc.merge(e->summary);
      continue;
    }
    entry_loads_.add();
    auto chunk = file->load_chunk(*e);
    if (!chunk.is_ok()) {
      load_failures_.add();
      continue;
    }
    ChunkSummary part;
    scratch.clear();
    decode_all(chunk.value(), scratch);
    for (const auto& p : scratch) {
      if (p.time >= range.begin && p.time < range.end) part.add(p);
    }
    acc.merge(part);
  }
  return summary_aggregate(acc, agg);
}

std::vector<core::TimedValue> TierStore::downsample(
    core::SeriesId series, const core::TimeRange& range, core::Duration bucket,
    Agg agg) const {
  std::vector<core::TimedValue> out;
  if (bucket <= 0) return out;
  std::map<core::TimePoint, ChunkSummary> buckets;
  std::vector<core::TimedValue> scratch;  // reused batch-decode buffer
  for (const auto& [file, e] : entries_for(series, range)) {
    const auto b0 = bucket_start(e->min_time, bucket);
    if (range.begin <= e->min_time && e->max_time < range.end &&
        e->max_time < b0 + bucket) {
      // Whole entry inside one bucket: its raw summary is the exact
      // contribution — the "coarsest tier that satisfies the resolution"
      // answer, no decode.
      buckets[b0].merge(e->summary);
      continue;
    }
    entry_loads_.add();
    auto chunk = file->load_chunk(*e);
    if (!chunk.is_ok()) {
      load_failures_.add();
      continue;
    }
    scratch.clear();
    decode_all(chunk.value(), scratch);
    for (const auto& p : scratch) {
      if (p.time >= range.begin && p.time < range.end) {
        buckets[bucket_start(p.time, bucket)].add(p);
      }
    }
  }
  out.reserve(buckets.size());
  for (const auto& [t, s] : buckets) {
    if (const auto v = summary_aggregate(s, agg)) out.push_back({t, *v});
  }
  return out;
}

std::size_t TierStore::scan(
    core::SeriesId series, const core::TimeRange& range,
    const std::function<bool(const core::TimedValue&)>& visit) const {
  const auto pts = query_range(series, range);
  std::size_t n = 0;
  for (const auto& p : pts) {
    ++n;
    if (!visit(p)) break;
  }
  return n;
}

// ---------------------------------------------------------- introspection

std::vector<std::shared_ptr<const TierFile>> TierStore::files(
    std::uint32_t tier) const {
  std::scoped_lock lock(mu_);
  if (tier >= files_.size()) return {};
  return files_[tier];
}

std::vector<std::shared_ptr<const TierFile>> TierStore::files(
    std::uint32_t tier, std::uint32_t cls) const {
  std::scoped_lock lock(mu_);
  std::vector<std::shared_ptr<const TierFile>> out;
  if (tier >= files_.size()) return out;
  for (const auto& f : files_[tier]) {
    if (f->meta().cls == cls) out.push_back(f);
  }
  return out;
}

std::uint64_t TierStore::disk_bytes() const {
  std::scoped_lock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& tier : files_) {
    for (const auto& f : tier) total += f->bytes();
  }
  return total;
}

std::size_t TierStore::file_count() const {
  std::scoped_lock lock(mu_);
  std::size_t n = 0;
  for (const auto& tier : files_) n += tier.size();
  return n;
}

std::size_t TierStore::quarantined_count() const {
  std::scoped_lock lock(mu_);
  return quarantined_;
}

void TierStore::refresh_gauges_locked() {
  std::size_t n = 0;
  std::uint64_t bytes = 0;
  for (const auto& tier : files_) {
    for (const auto& f : tier) {
      ++n;
      bytes += f->bytes();
    }
  }
  files_gauge_.set(static_cast<double>(n));
  bytes_gauge_.set(static_cast<double>(bytes));
}

void TierStore::attach_to(obs::ObsRegistry& registry) const {
  registry.attach({"tier.entry_loads", "chunks",
                   "tier-file chunk payloads read (and CRC-checked)"},
                  &entry_loads_);
  registry.attach({"tier.load_failures", "chunks",
                   "tier-file chunk reads that failed integrity checks"},
                  &load_failures_);
  registry.attach({"tier.journal_records", "records",
                   "compaction journal records durably appended"},
                  &journal_records_);
  registry.attach({"tier.quarantined_files", "files",
                   "tier files quarantined (*.corrupt) at recovery"},
                  &quarantined_files_);
  registry.attach({"tier.files", "files", "published tier files",
                   core::Priority::kCritical, obs::GaugeAgg::kSum},
                  &files_gauge_);
  registry.attach({"tier.disk_bytes", "bytes",
                   "bytes held across every retention tier",
                   core::Priority::kCritical, obs::GaugeAgg::kSum},
                  &bytes_gauge_);
}

// -------------------------------------------------------------- TierPolicy

TierPolicy TierPolicy::standard() {
  using core::kDay;
  using core::kHour;
  using core::kMinute;
  using core::kSecond;
  TierPolicy p;
  TierSpec raw;
  raw.resolution = 0;
  raw.agg = Agg::kLast;
  raw.keep = {2 * kDay, 1 * kDay, 6 * kHour};
  TierSpec t10s;
  t10s.resolution = 10 * kSecond;
  t10s.agg = Agg::kMean;
  t10s.keep = {7 * kDay, 3 * kDay, 1 * kDay};
  TierSpec t5m;
  t5m.resolution = 5 * kMinute;
  t5m.agg = Agg::kMean;
  t5m.keep = {90 * kDay, 30 * kDay, 7 * kDay};
  TierSpec t1h;
  t1h.resolution = kHour;
  t1h.agg = Agg::kMean;
  t1h.keep = {400 * kDay, 365 * kDay, 90 * kDay};
  p.tiers = {raw, t10s, t5m, t1h};
  return p;
}

}  // namespace hpcmon::store
