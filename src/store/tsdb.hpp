// TimeSeriesStore: the "hot" in-memory store for numeric telemetry.
//
// Per-series layout: an uncompressed append head plus sealed compressed
// chunks (chunk.hpp). Queries merge sealed and head data. Thread-safe:
// collectors append from transport threads while dashboards query
// (Table I: "multiple consumers ... at variety of locations").
//
// Query engine (see DESIGN.md "Query engine"):
//   * aggregate()/downsample() answer chunks fully covered by the range from
//     seal-time summaries (summary.hpp) and only stream-decode boundary
//     chunks (cursor.hpp) — stepped aggregation.
//   * query_range() decodes through a bounded LRU of decoded chunks
//     (chunk_cache.hpp) keyed by chunk generation, so dashboard refreshes
//     stop paying decode cost; scan() streams without materializing.
//   * Locking is a reader-writer map lock plus striped per-series mutexes:
//     readers snapshot chunk refs under the stripe and decode OUTSIDE any
//     lock, so queries neither block collector appends to other series nor
//     each other.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/sample.hpp"
#include "core/series_buffer.hpp"
#include "core/time.hpp"
#include "obs/registry.hpp"
#include "obs/stage.hpp"
#include "store/chunk.hpp"
#include "store/chunk_cache.hpp"

namespace hpcmon::store {

struct StoreStats {
  std::size_t series = 0;
  std::size_t points = 0;
  std::size_t sealed_chunks = 0;
  std::size_t compressed_bytes = 0;  // sealed payloads
  std::size_t head_points = 0;       // not yet sealed
};

/// Typed view over the read-path obs instruments (cumulative). The
/// instruments are the source of truth; this struct exists for tests and
/// benches that want field access instead of name lookups. Rendering goes
/// through obs::ObsExporter, not a bespoke to_string.
struct QueryStats {
  std::uint64_t queries = 0;         // query_range+aggregate+downsample+scan
  std::uint64_t summary_chunks = 0;  // chunks answered from summaries alone
  std::uint64_t cursor_chunks = 0;   // boundary chunks streamed point-by-point
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;      // decode cache capacity evictions
  std::uint64_t cache_invalidations = 0;  // dropped by evict_before
  std::size_t cache_entries = 0;

  QueryStats& operator+=(const QueryStats& o);
};

class TimeSeriesStore {
 public:
  /// `chunk_points`: head size at which a chunk is sealed and compressed.
  /// `cache_chunks`: decode-cache capacity in chunks (0 disables caching).
  explicit TimeSeriesStore(std::size_t chunk_points = 512,
                           std::size_t cache_chunks = 64)
      : chunk_points_(chunk_points), cache_(cache_chunks) {}

  /// Append one point. Out-of-order AND duplicate-timestamp points
  /// (time <= last time of the series) are rejected (returns false) —
  /// per-series timestamps are strictly increasing, so query_range can never
  /// return duplicate points. Matching TSDB ingest semantics.
  bool append(core::SeriesId series, core::TimePoint t, double value);
  void append(const core::Sample& s) { append(s.series, s.time, s.value); }
  /// Append a whole batch; returns the number accepted. Samples are grouped
  /// by lock stripe (stable, so per-series arrival order — and therefore
  /// every accept/reject/seal decision and sealed-chunk byte — is identical
  /// to appending them one by one), then each stripe mutex is taken once per
  /// batch instead of once per sample. Supersedes the old
  /// `const std::vector<Sample>&` overload: vectors convert implicitly.
  std::size_t append_batch(std::span<const core::Sample> samples);
  /// Append a time-ordered run of samples for ONE series under a single
  /// stripe-lock acquisition (the samples' own `series` fields are ignored).
  /// Returns the number accepted; out-of-order points are skipped with the
  /// same strict-ordering rule as append(), so the resulting head/sealed
  /// state is byte-identical to N individual append() calls.
  std::size_t append_run(core::SeriesId series,
                         std::span<const core::Sample> run);

  /// All points of a series within [range.begin, range.end), time-ordered.
  /// The output is pre-reserved from chunk counts + head size.
  std::vector<core::TimedValue> query_range(core::SeriesId series,
                                            const core::TimeRange& range) const;

  std::optional<core::TimedValue> latest(core::SeriesId series) const;

  /// Scalar aggregate over a time range; nullopt when no points in range.
  /// Chunks fully covered by the range are answered from their seal-time
  /// summaries; only boundary chunks are decoded (and those are streamed
  /// with early exit, never materialized).
  std::optional<double> aggregate(core::SeriesId series,
                                  const core::TimeRange& range, Agg agg) const;

  /// Fixed-interval downsampling: one aggregated point per bucket (bucket
  /// timestamp = bucket start). Buckets without data are omitted. A chunk
  /// falling entirely inside one bucket contributes its summary unscanned.
  std::vector<core::TimedValue> downsample(core::SeriesId series,
                                           const core::TimeRange& range,
                                           core::Duration bucket,
                                           Agg agg) const;

  /// Stream every point of `series` in `range` through `visit`, oldest
  /// first, without materializing a vector; `visit` returns false to stop.
  /// Returns the number of points visited. Sealed chunks are decoded
  /// point-by-point with early exit past range.end.
  std::size_t scan(core::SeriesId series, const core::TimeRange& range,
                   const std::function<bool(const core::TimedValue&)>& visit)
      const;

  /// Remove sealed chunks entirely older than `cutoff`, handing each to
  /// `sink` (archive hook) before deletion. Head data is never evicted.
  /// Evicted chunks are also dropped from the decode cache.
  std::size_t evict_before(core::TimePoint cutoff,
                           const std::function<void(core::SeriesId,
                                                    Chunk&&)>& sink);

  /// Snapshot of the sealed chunks entirely older than `cutoff`, taken for
  /// the tiered-retention compactor. `chunks` are shared refs (immutable;
  /// safe to read outside any store lock). `safe_watermark` is the highest
  /// time T such that EVERY point with time < T is inside the returned
  /// chunks: min(cutoff, oldest time still remaining in any series after
  /// those chunks are gone — a straddling chunk or head tail lowers it).
  /// Once the returned chunks are durable elsewhere, dropping replayed
  /// samples older than safe_watermark loses nothing.
  struct SealedChunkSet {
    std::vector<std::pair<core::SeriesId, std::shared_ptr<const Chunk>>>
        chunks;
    core::TimePoint safe_watermark = 0;
  };
  SealedChunkSet sealed_chunks_before(core::TimePoint cutoff) const;

  /// Remove exactly the sealed chunks named by (series, chunk generation
  /// id), dropping them from the decode cache. The compactor evicts the
  /// snapshot it durably tiered — never "everything older than X", which
  /// could swallow a chunk sealed after the snapshot. Returns the number
  /// removed (already-gone ids are ignored).
  std::size_t evict_chunks(
      const std::vector<std::pair<core::SeriesId, std::uint64_t>>& ids);

  bool has_series(core::SeriesId series) const;
  StoreStats stats() const;
  QueryStats query_stats() const;

  /// Catalog the read-path instruments (store.* counters, cache gauges) in
  /// `registry`. Attaching several stores (shards) under the same names
  /// merges them at snapshot time.
  void attach_to(obs::ObsRegistry& registry) const;

  /// Route query-path spans (query_summary/query_cursor/query_cache) into
  /// `timer`; nullptr (the default) disables span recording.
  void set_stage_timer(obs::StageTimer* timer) { stages_ = timer; }

  /// Called (outside all store locks) for every series whose LAST data just
  /// left the store — evict_before / evict_chunks removed its final sealed
  /// chunk while the head was empty. Downstream membership (the rollup tree)
  /// keys off this so retention and node churn retract stale aggregates.
  /// Not synchronized with eviction callers: set before concurrent use.
  void set_series_gone_listener(std::function<void(core::SeriesId)> fn) {
    gone_ = std::move(fn);
  }

 private:
  struct Series {
    std::vector<std::shared_ptr<const Chunk>> sealed;
    std::vector<core::TimedValue> head;
    core::TimePoint last_time = INT64_MIN;
  };
  /// What a query needs from a series, snapshotted under the stripe lock:
  /// refs to the overlapping immutable chunks plus a copy of the in-range
  /// head tail. All decoding happens after the locks are released.
  struct ReadView {
    std::vector<std::shared_ptr<const Chunk>> chunks;
    std::vector<core::TimedValue> head;
    std::size_t chunk_points = 0;  // sum of chunk counts (for reserve)
  };

  static constexpr std::size_t kLockStripes = 16;

  std::mutex& stripe(std::size_t series_index) const {
    return stripe_mu_[series_index % kLockStripes];
  }
  bool append_at(std::size_t index, core::TimePoint t, double value);
  bool append_locked(Series& s, core::TimePoint t, double value);
  void seal_locked(Series& s);
  /// Snapshot the chunks/head of `series` overlapping `range` (shared map
  /// lock + stripe lock, both released on return).
  ReadView read_view(core::SeriesId series, const core::TimeRange& range) const;
  /// Decode a sealed chunk through the LRU cache; `hit` reports whether the
  /// cache served it (feeds the query_cache stage classification).
  DecodedChunk decoded(const Chunk& chunk, bool& hit) const;

  // Lock order: map_mu_ before stripe; never take a stripe while holding
  // another stripe or the cache mutex.
  mutable std::shared_mutex map_mu_;  // guards series_ growth
  mutable std::array<std::mutex, kLockStripes> stripe_mu_;  // per-series state
  std::size_t chunk_points_;
  std::vector<Series> series_;  // indexed by raw(SeriesId)
  mutable ChunkCache cache_;
  mutable obs::Counter queries_;
  mutable obs::Counter summary_chunks_;
  mutable obs::Counter cursor_chunks_;
  obs::StageTimer* stages_ = nullptr;
  std::function<void(core::SeriesId)> gone_;
};

/// Apply an aggregate to a point vector; nullopt when empty.
std::optional<double> aggregate_points(const std::vector<core::TimedValue>& pts,
                                       Agg agg);

}  // namespace hpcmon::store
