// TimeSeriesStore: the "hot" in-memory store for numeric telemetry.
//
// Per-series layout: an uncompressed append head plus sealed compressed
// chunks (chunk.hpp). Queries merge sealed and head data. Thread-safe:
// collectors append from transport threads while dashboards query
// (Table I: "multiple consumers ... at variety of locations").
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/sample.hpp"
#include "core/series_buffer.hpp"
#include "core/time.hpp"
#include "store/chunk.hpp"

namespace hpcmon::store {

enum class Agg : std::uint8_t { kSum, kMean, kMin, kMax, kCount, kLast };

struct StoreStats {
  std::size_t series = 0;
  std::size_t points = 0;
  std::size_t sealed_chunks = 0;
  std::size_t compressed_bytes = 0;  // sealed payloads
  std::size_t head_points = 0;       // not yet sealed
};

class TimeSeriesStore {
 public:
  /// `chunk_points`: head size at which a chunk is sealed and compressed.
  explicit TimeSeriesStore(std::size_t chunk_points = 512)
      : chunk_points_(chunk_points) {}

  /// Append one point. Out-of-order AND duplicate-timestamp points
  /// (time <= last time of the series) are rejected (returns false) —
  /// per-series timestamps are strictly increasing, so query_range can never
  /// return duplicate points. Matching TSDB ingest semantics.
  bool append(core::SeriesId series, core::TimePoint t, double value);
  void append(const core::Sample& s) { append(s.series, s.time, s.value); }
  /// Append a whole batch; returns the number accepted.
  std::size_t append_batch(const std::vector<core::Sample>& samples);

  /// All points of a series within [range.begin, range.end), time-ordered.
  std::vector<core::TimedValue> query_range(core::SeriesId series,
                                            const core::TimeRange& range) const;

  std::optional<core::TimedValue> latest(core::SeriesId series) const;

  /// Scalar aggregate over a time range; nullopt when no points in range.
  std::optional<double> aggregate(core::SeriesId series,
                                  const core::TimeRange& range, Agg agg) const;

  /// Fixed-interval downsampling: one aggregated point per bucket (bucket
  /// timestamp = bucket start). Buckets without data are omitted.
  std::vector<core::TimedValue> downsample(core::SeriesId series,
                                           const core::TimeRange& range,
                                           core::Duration bucket,
                                           Agg agg) const;

  /// Remove sealed chunks entirely older than `cutoff`, handing each to
  /// `sink` (archive hook) before deletion. Head data is never evicted.
  std::size_t evict_before(core::TimePoint cutoff,
                           const std::function<void(core::SeriesId,
                                                    Chunk&&)>& sink);

  bool has_series(core::SeriesId series) const;
  StoreStats stats() const;

 private:
  struct Series {
    std::vector<Chunk> sealed;
    std::vector<core::TimedValue> head;
    core::TimePoint last_time = INT64_MIN;
  };
  Series* find(core::SeriesId id);
  const Series* find(core::SeriesId id) const;
  void seal_locked(Series& s);
  static void aggregate_into(const std::vector<core::TimedValue>& pts,
                             Agg agg, double& acc, std::size_t& n);

  mutable std::mutex mu_;
  std::size_t chunk_points_;
  std::vector<Series> series_;  // indexed by raw(SeriesId)
};

/// Apply an aggregate to a point vector; nullopt when empty.
std::optional<double> aggregate_points(const std::vector<core::TimedValue>& pts,
                                       Agg agg);

std::string_view to_string(Agg agg);

}  // namespace hpcmon::store
