// Compressed timeseries chunk: Gorilla-style encoding.
//
// The paper (Sec. IV-C) reports sites abandoning row-oriented SQL stores for
// time-series engines ("InfluxDB was chosen for its superior data compression
// and query performance for high-volume time series data"). This codec is
// the standard technique behind those engines (Facebook Gorilla, VLDB'15):
// delta-of-delta timestamps with prefix codes, XOR float values with
// leading/trailing-zero windows. bench/ablation_storage quantifies the win
// over a naive row store; bench/ablation_query_engine quantifies the query
// side (summary.hpp, cursor.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "core/series_buffer.hpp"  // TimedValue
#include "core/time.hpp"
#include "store/summary.hpp"

namespace hpcmon::store {

/// Immutable compressed block of (time, value) points for one series.
class Chunk {
 public:
  /// Compress `points` (must be non-empty and time-ordered). Also computes
  /// the chunk's value summary and assigns a process-unique generation id.
  static Chunk compress(const std::vector<core::TimedValue>& points);

  std::vector<core::TimedValue> decompress() const;

  core::TimePoint min_time() const { return min_time_; }
  core::TimePoint max_time() const { return max_time_; }
  std::uint32_t count() const { return count_; }
  std::size_t byte_size() const { return bytes_.size(); }

  /// Value statistics computed at seal time; aggregate queries over ranges
  /// that fully cover this chunk are answered from here without decoding.
  const ChunkSummary& summary() const { return summary_; }

  /// Process-unique generation id (0 for the empty chunk). Decode caches key
  /// on this, so a chunk evicted and replaced can never alias a cache entry.
  std::uint64_t id() const { return id_; }

  /// Raw compressed payload (for ChunkCursor's in-place streaming decode).
  const std::vector<std::uint8_t>& payload() const { return bytes_; }

  /// Serialize to a flat byte buffer (header + payload) for archiving.
  std::vector<std::uint8_t> serialize() const;
  /// Rebuild from serialize() output; returns empty chunk on malformed input
  /// (truncated header, count/payload mismatch, garbage bitstream — the
  /// payload is decode-validated against count/min/max before acceptance).
  static Chunk deserialize(const std::vector<std::uint8_t>& raw);

  bool empty() const { return count_ == 0; }
  /// True when the chunk's time span intersects [range.begin, range.end).
  /// An empty range (begin >= end) intersects nothing.
  bool overlaps(const core::TimeRange& range) const {
    return !range.empty() && min_time_ < range.end && range.begin <= max_time_;
  }
  /// True when every point of this chunk lies inside [range.begin, range.end)
  /// — the summary alone can then answer aggregates over it.
  bool covered_by(const core::TimeRange& range) const {
    return count_ > 0 && range.begin <= min_time_ && max_time_ < range.end;
  }

 private:
  std::vector<std::uint8_t> bytes_;
  core::TimePoint min_time_ = 0;
  core::TimePoint max_time_ = 0;
  std::uint32_t count_ = 0;
  std::uint64_t id_ = 0;
  ChunkSummary summary_;
};

}  // namespace hpcmon::store
