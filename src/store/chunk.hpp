// Compressed timeseries chunk: Gorilla-style encoding.
//
// The paper (Sec. IV-C) reports sites abandoning row-oriented SQL stores for
// time-series engines ("InfluxDB was chosen for its superior data compression
// and query performance for high-volume time series data"). This codec is
// the standard technique behind those engines (Facebook Gorilla, VLDB'15):
// delta-of-delta timestamps with prefix codes, XOR float values with
// leading/trailing-zero windows. bench/ablation_storage quantifies the win
// over a naive row store.
#pragma once

#include <cstdint>
#include <vector>

#include "core/series_buffer.hpp"  // TimedValue
#include "core/time.hpp"

namespace hpcmon::store {

/// Immutable compressed block of (time, value) points for one series.
class Chunk {
 public:
  /// Compress `points` (must be non-empty and time-ordered).
  static Chunk compress(const std::vector<core::TimedValue>& points);

  std::vector<core::TimedValue> decompress() const;

  core::TimePoint min_time() const { return min_time_; }
  core::TimePoint max_time() const { return max_time_; }
  std::uint32_t count() const { return count_; }
  std::size_t byte_size() const { return bytes_.size(); }

  /// Serialize to a flat byte buffer (header + payload) for archiving.
  std::vector<std::uint8_t> serialize() const;
  /// Rebuild from serialize() output; returns empty chunk on malformed input.
  static Chunk deserialize(const std::vector<std::uint8_t>& raw);

  bool empty() const { return count_ == 0; }
  /// True when the chunk's time span intersects [range.begin, range.end).
  bool overlaps(const core::TimeRange& range) const {
    return min_time_ < range.end && range.begin <= max_time_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
  core::TimePoint min_time_ = 0;
  core::TimePoint max_time_ = 0;
  std::uint32_t count_ = 0;
};

}  // namespace hpcmon::store
