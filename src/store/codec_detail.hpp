// Internal Gorilla codec primitives shared by chunk.cpp (encoder) and
// cursor.cpp (streaming decoder). Not part of the public store API.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

#include "store/bitstream.hpp"

namespace hpcmon::store::detail {

inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

// Delta-of-delta prefix classes (Gorilla Table): value ranges are chosen for
// microsecond timestamps sampled at second-to-minute cadence. Prefix and
// payload are fused into one accumulator write per class so the common cases
// cost a single shift/or instead of two bit-loop passes; the emitted bit
// sequence is identical to the original prefix-then-payload encoding.
inline void write_dod(BitWriter& w, std::int64_t dod) {
  const std::uint64_t z = zigzag(dod);
  if (dod == 0) {
    w.write(0, 1);  // '0'
  } else if (z < (1u << 14)) {
    w.write((std::uint64_t{0b10} << 14) | z, 2 + 14);
  } else if (z < (1u << 24)) {
    w.write((std::uint64_t{0b110} << 24) | z, 3 + 24);
  } else if (z < (1ull << 36)) {
    w.write((std::uint64_t{0b1110} << 36) | z, 4 + 36);
  } else {
    w.write(0b1111, 4);
    w.write(z, 64);
  }
}

/// Payload width per prefix class (index = number of leading '1' bits).
inline constexpr int kDodPayloadBits[5] = {0, 14, 24, 36, 64};

// Branch-reduced class dispatch: peek the 4 possible prefix bits at once and
// count leading ones instead of testing them one read_bit at a time. peek()
// zero-pads past end-of-stream, so a truncated prefix degrades to a smaller
// class and the following skip/read trips the reader's eof — the same
// observable outcome as the sequential-read version.
inline std::int64_t read_dod(BitReader& r) {
  const auto prefix =
      static_cast<std::uint8_t>(static_cast<unsigned>(r.peek(4)) << 4);
  const int klass = std::countl_one(prefix);  // 0..4: low nibble is zero
  r.skip(klass < 4 ? klass + 1 : 4);
  if (klass == 0) return 0;
  return unzigzag(r.read(kDodPayloadBits[klass]));
}

inline std::uint64_t double_bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

inline double bits_double(std::uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

}  // namespace hpcmon::store::detail
