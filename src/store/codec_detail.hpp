// Internal Gorilla codec primitives shared by chunk.cpp (encoder) and
// cursor.cpp (streaming decoder). Not part of the public store API.
#pragma once

#include <cstdint>
#include <cstring>

#include "store/bitstream.hpp"

namespace hpcmon::store::detail {

inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

// Delta-of-delta prefix classes (Gorilla Table): value ranges are chosen for
// microsecond timestamps sampled at second-to-minute cadence.
inline void write_dod(BitWriter& w, std::int64_t dod) {
  const std::uint64_t z = zigzag(dod);
  if (dod == 0) {
    w.write_bit(false);                    // '0'
  } else if (z < (1u << 14)) {
    w.write(0b10, 2);
    w.write(z, 14);
  } else if (z < (1u << 24)) {
    w.write(0b110, 3);
    w.write(z, 24);
  } else if (z < (1ull << 36)) {
    w.write(0b1110, 4);
    w.write(z, 36);
  } else {
    w.write(0b1111, 4);
    w.write(z, 64);
  }
}

inline std::int64_t read_dod(BitReader& r) {
  if (!r.read_bit()) return 0;
  if (!r.read_bit()) return unzigzag(r.read(14));
  if (!r.read_bit()) return unzigzag(r.read(24));
  if (!r.read_bit()) return unzigzag(r.read(36));
  return unzigzag(r.read(64));
}

inline std::uint64_t double_bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

inline double bits_double(std::uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

}  // namespace hpcmon::store::detail
