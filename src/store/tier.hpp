// TierStore: crash-safe downsampled retention tiers behind the hot store.
//
// The paper's Table I asks for hierarchical retention — raw telemetry kept
// briefly, coarser resolutions kept for months — and Sec. IV-C's year-scale
// dashboards need those coarse tiers to stay queryable. A TierStore holds a
// ladder of resolution tiers (raw → 10s → 5min → 1h by default); each tier
// is a directory of immutable columnar files whose index is the existing
// ChunkSummary, and retention within a tier is per core::Priority class
// (critical raw outlives bulk raw). The Compactor (compactor.hpp) moves
// data down the ladder; this class owns the durable state machine.
//
// Durability protocol (DESIGN.md "Tiered retention"): every transition is
// journaled with the WAL idiom — a write-ahead intent record names the
// destination and sources, the destination is built as <path>.tmp, fsynced,
// and atomically renamed, a commit record makes the transition real (one
// commit covers ALL files of a hot-ingest pass plus the eviction watermark,
// so a crash can never acknowledge half a pass), and source deletion is
// recorded before the unlinks with a cleaned marker after. open() replays
// the journal: uncommitted intents roll back (dest unlinked, sources kept),
// committed-but-uncleaned deletions re-run (idempotent), stray .tmp files
// are removed, and every surviving tier file's index is CRC-verified —
// files that fail are quarantined (renamed *.corrupt), never served.
//
// Tier file format ('HPTF', host-endian, version 1):
//   header:  u32 magic | u32 version | u32 tier | u32 cls | u64 seq |
//            i64 resolution_us | i64 min_time | i64 max_time |
//            u32 entry_count | u32 index_crc
//   index:   entry_count records, sorted by (series, min_time):
//            u32 series | u64 count | i64 min_time | i64 max_time |
//            f64 sum | f64 min | f64 max | f64 first | f64 last |
//            u64 offset | u32 payload_len | u32 payload_crc
//   data:    Chunk::serialize() payloads at the recorded offsets
// index_crc covers header (with the crc field zeroed) + index, so any
// single-byte flip in either is detected at load; payload_crc guards each
// chunk and is checked on every entry read (typed kCorruption on mismatch).
//
// Dual-summary semantics — the honest part: an entry's index summary always
// describes the ORIGINAL raw samples the entry derives from (count/sum/min/
// max/first/last compose exactly through compactions via time-ordered
// ChunkSummary::merge), while the entry's chunk payload stores the
// downsampled bucket values. Aggregates over windows that fully cover an
// entry are therefore EXACT against raw history no matter how coarse the
// tier; only window-boundary entries fall back to the stored bucket points
// (approximate within downsample semantics, e.g. mean-of-means).
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/fsfault.hpp"
#include "core/ids.hpp"
#include "core/priority.hpp"
#include "core/result.hpp"
#include "core/series_buffer.hpp"
#include "core/time.hpp"
#include "obs/registry.hpp"
#include "store/chunk.hpp"
#include "store/summary.hpp"

namespace hpcmon::store {

/// One rung of the retention ladder.
struct TierSpec {
  core::Duration resolution = 0;  // bucket width; 0 = raw (tier 0 only)
  Agg agg = Agg::kMean;           // bucket reduction applied when aging IN
  /// Retention per priority class, indexed by core::Priority: data older
  /// than keep[cls] ages into the next tier (or expires from the last).
  std::array<core::Duration, core::kPriorityClasses> keep{};
};

struct TierPolicy {
  std::vector<TierSpec> tiers;  // tier 0 (raw) first; coarser downward

  /// raw 2d/1d/6h → 10s 7d/3d/1d → 5min 90d/30d/7d → 1h 400d/365d/90d
  /// (critical / standard / bulk) — the paper's "year of telemetry".
  static TierPolicy standard();
};

/// One series' chunk inside a tier file. `summary` and the time bounds
/// describe the ORIGINAL raw samples (see header comment).
struct TierEntry {
  core::SeriesId series{0};
  core::TimePoint min_time = 0;
  core::TimePoint max_time = 0;
  ChunkSummary summary;
  std::uint64_t offset = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t payload_crc = 0;
};

/// An immutable, index-verified tier file. Entry payloads are read (and
/// CRC-checked) on demand; the index lives in memory.
class TierFile {
 public:
  struct Meta {
    std::uint32_t tier = 0;
    std::uint32_t cls = 0;  // core::Priority of every series in the file
    std::uint64_t seq = 0;
    core::Duration resolution = 0;
    core::TimePoint min_time = 0;
    core::TimePoint max_time = 0;
  };

  /// Open `path`, verify magic/version/index CRC, load the index. Returns
  /// kCorruption for any integrity failure (never a partially-loaded file).
  static core::Result<std::shared_ptr<const TierFile>> load(std::string path);

  const Meta& meta() const { return meta_; }
  const std::vector<TierEntry>& entries() const { return entries_; }
  const std::string& path() const { return path_; }
  std::uint64_t bytes() const { return bytes_; }

  /// Entries of `series` overlapping [range.begin, range.end), in time
  /// order (the index is sorted by (series, min_time)).
  std::vector<const TierEntry*> find(core::SeriesId series,
                                     const core::TimeRange& range) const;

  /// Read + CRC-verify + decode-validate one entry's chunk. kCorruption on
  /// any mismatch; a bit flip anywhere in the payload is detected here.
  core::Result<Chunk> load_chunk(const TierEntry& e) const;

 private:
  friend class TierStore;
  TierFile() = default;

  std::string path_;
  Meta meta_;
  std::vector<TierEntry> entries_;
  std::uint64_t bytes_ = 0;
};

/// A destination tier file to be written in one durable transaction.
struct TierWriteSpec {
  std::uint32_t tier = 0;
  std::uint32_t cls = 0;
  struct SeriesChunk {
    core::SeriesId series{0};
    core::TimePoint min_time = 0;  // raw-sample bounds
    core::TimePoint max_time = 0;
    ChunkSummary summary;                  // raw-sample stats
    std::vector<std::uint8_t> payload;     // Chunk::serialize() output
  };
  std::vector<SeriesChunk> chunks;  // sorted by (series, min_time)
};

class TierStore {
 public:
  struct Options {
    std::string dir;  // tier files live in <dir>/t<k>/, journal in <dir>/
    TierPolicy policy = TierPolicy::standard();
    /// Consulted before every physical fs op (tests wire a FaultPlan).
    core::FsFaultInjector* faults = nullptr;
  };

  explicit TierStore(Options opts);

  /// Recover durable state: replay the journal, roll back / re-run as
  /// described above, verify + publish every tier file, rewrite a compact
  /// journal. NOT fault-injected (it is idempotent: a crash during open()
  /// is recovered by the next open()). Must be called before anything else.
  core::Status open();

  /// True once an injected kCrash killed this instance: durable state is
  /// whatever reached disk, every further mutation refuses, and tests
  /// construct a fresh TierStore on the same dir to model the restart.
  bool crashed() const;

  /// Eviction watermark: every sample with time < watermark() is durable in
  /// some tier. The stack drops WAL-replayed samples below it, and the hot
  /// store is only evicted behind it. INT64_MIN until the first commit.
  core::TimePoint watermark() const;

  // ---- durable transactions (driven by the Compactor) ----

  /// Hot ingest: write one tier-0 file per WriteSpec, then ONE commit
  /// record covering all of them + the new watermark. On any failure the
  /// transaction aborts with sources (the hot store) untouched. `specs` may
  /// be empty to advance the watermark alone.
  core::Status ingest_hot(const std::vector<TierWriteSpec>& specs,
                          core::TimePoint new_watermark);

  /// Aging: replace `srcs` (all one tier+class) with `dest` one tier down
  /// the ladder. Publish is atomic; sources are unlinked only after commit
  /// (a failed unlink is retried, never blocks the transaction).
  core::Status age(const std::vector<std::shared_ptr<const TierFile>>& srcs,
                   const TierWriteSpec& dest);

  /// Expiry from the last tier: durably record the deletion, unpublish,
  /// unlink.
  core::Status expire(
      const std::vector<std::shared_ptr<const TierFile>>& srcs);

  /// Retry pending source unlinks and heal a poisoned journal (atomic
  /// rewrite). Called at the top of every compactor pass; fault-injected.
  core::Status maintain();

  // ---- read path (mirrors TimeSeriesStore; see header for semantics) ----

  std::vector<core::TimedValue> query_range(core::SeriesId series,
                                            const core::TimeRange& range) const;
  std::optional<core::TimedValue> latest(core::SeriesId series) const;
  std::optional<double> aggregate(core::SeriesId series,
                                  const core::TimeRange& range, Agg agg) const;
  std::vector<core::TimedValue> downsample(core::SeriesId series,
                                           const core::TimeRange& range,
                                           core::Duration bucket,
                                           Agg agg) const;
  std::size_t scan(core::SeriesId series, const core::TimeRange& range,
                   const std::function<bool(const core::TimedValue&)>& visit)
      const;

  // ---- introspection ----

  const TierPolicy& policy() const { return opts_.policy; }
  /// Snapshot of the published files of one tier (optionally one class).
  std::vector<std::shared_ptr<const TierFile>> files(std::uint32_t tier) const;
  std::vector<std::shared_ptr<const TierFile>> files(std::uint32_t tier,
                                                     std::uint32_t cls) const;
  std::uint64_t disk_bytes() const;
  std::size_t file_count() const;
  std::size_t quarantined_count() const;

  /// Catalog tier.* instruments (files/bytes gauges, load + quarantine +
  /// journal counters).
  void attach_to(obs::ObsRegistry& registry) const;

  ~TierStore();
  TierStore(const TierStore&) = delete;
  TierStore& operator=(const TierStore&) = delete;

 private:
  struct SrcId {
    std::uint32_t tier = 0;
    std::uint32_t cls = 0;
    std::uint64_t seq = 0;
  };
  struct PendingCleanup {
    std::uint64_t op = 0;
    std::vector<SrcId> srcs;
  };

  // Journal plumbing (tier.cpp).
  core::Status journal_append_locked(const std::vector<std::uint8_t>& payload);
  core::Status rewrite_journal_locked();
  std::string journal_path() const;
  std::string tier_dir(std::uint32_t tier) const;
  std::string file_path(std::uint32_t tier, std::uint32_t cls,
                        std::uint64_t seq) const;

  // Fault-aware physical ops; each returns the injected (or real) outcome
  // and flips crashed_ on kCrash.
  core::Status write_file_locked(const std::string& path,
                                 const std::vector<std::uint8_t>& bytes);
  core::Status rename_locked(const std::string& from, const std::string& to);
  core::Status unlink_locked(const std::string& path);
  core::FsFault consult_locked(core::FsOp op);

  core::Status write_tier_file_locked(const TierWriteSpec& spec,
                                      std::uint64_t seq, std::uint64_t op_id,
                                      std::shared_ptr<const TierFile>* out);
  void publish_locked(std::shared_ptr<const TierFile> f);
  void unpublish_locked(const TierFile& f);
  core::Status cleanup_srcs_locked(std::uint64_t op_id,
                                   std::vector<SrcId> srcs);

  /// All published files overlapping `series`'s entries, every tier, sorted
  /// per-series by entry min_time. Snapshot under mu_, decode outside.
  std::vector<std::pair<std::shared_ptr<const TierFile>, const TierEntry*>>
  entries_for(core::SeriesId series, const core::TimeRange& range) const;

  void refresh_gauges_locked();

  Options opts_;
  mutable std::mutex mu_;
  bool opened_ = false;
  bool crashed_ = false;
  bool journal_poisoned_ = false;
  std::FILE* journal_ = nullptr;
  core::TimePoint watermark_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_op_ = 1;
  std::vector<std::vector<std::shared_ptr<const TierFile>>> files_;  // [tier]
  std::vector<PendingCleanup> pending_;
  std::size_t quarantined_ = 0;

  mutable obs::Counter entry_loads_;
  mutable obs::Counter load_failures_;
  mutable obs::Counter journal_records_;
  mutable obs::Counter quarantined_files_;
  mutable obs::Gauge files_gauge_;
  mutable obs::Gauge bytes_gauge_;
};

/// Merged read view over the tier ladder plus a hot store (TimeSeriesStore
/// or ingest::ShardedTimeSeriesStore — anything with the store query
/// surface). Satisfies the same surface itself, so serve's
/// bind_query_hooks() binds it directly and dashboards span "now" back
/// through every tier without knowing tiers exist. Tier data is strictly
/// older than the hot store (eviction happens behind the durable watermark)
/// except for a transient window right after a commit, where a point can
/// briefly exist on both sides: exact-timestamp duplicates resolve in favor
/// of the hot store.
template <typename Hot>
class TierSpanView {
 public:
  TierSpanView(const TierStore* tiers, const Hot* hot)
      : tiers_(tiers), hot_(hot) {}

  std::vector<core::TimedValue> query_range(core::SeriesId series,
                                            const core::TimeRange& range) const {
    auto cold = tiers_->query_range(series, range);
    auto hot = hot_->query_range(series, range);
    if (cold.empty()) return hot;
    std::vector<core::TimedValue> out;
    out.reserve(cold.size() + hot.size());
    std::size_t i = 0, j = 0;
    while (i < cold.size() && j < hot.size()) {
      if (cold[i].time < hot[j].time) {
        out.push_back(cold[i++]);
      } else if (hot[j].time < cold[i].time) {
        out.push_back(hot[j++]);
      } else {
        out.push_back(hot[j++]);  // hot wins the duplicate
        ++i;
      }
    }
    for (; i < cold.size(); ++i) out.push_back(cold[i]);
    for (; j < hot.size(); ++j) out.push_back(hot[j]);
    return out;
  }

  std::optional<core::TimedValue> latest(core::SeriesId series) const {
    if (auto h = hot_->latest(series)) return h;
    return tiers_->latest(series);
  }

  std::optional<double> aggregate(core::SeriesId series,
                                  const core::TimeRange& range,
                                  Agg agg) const {
    if (agg == Agg::kMean) {
      const auto sum = aggregate(series, range, Agg::kSum);
      const auto cnt = aggregate(series, range, Agg::kCount);
      if (!sum || !cnt || *cnt == 0.0) return std::nullopt;
      return *sum / *cnt;
    }
    const auto cold = tiers_->aggregate(series, range, agg);
    const auto hot = hot_->aggregate(series, range, agg);
    if (!cold) return hot;
    if (!hot) return cold;
    switch (agg) {
      case Agg::kSum:
      case Agg::kCount: return *cold + *hot;
      case Agg::kMin: return std::min(*cold, *hot);
      case Agg::kMax: return std::max(*cold, *hot);
      case Agg::kLast: return *hot;  // hot data is newer
      case Agg::kMean: break;        // handled above
    }
    return std::nullopt;
  }

  std::vector<core::TimedValue> downsample(core::SeriesId series,
                                           const core::TimeRange& range,
                                           core::Duration bucket,
                                           Agg agg) const {
    auto cold = tiers_->downsample(series, range, bucket, agg);
    auto hot = hot_->downsample(series, range, bucket, agg);
    if (cold.empty()) return hot;
    if (hot.empty()) return cold;
    // Tier data precedes hot data; at most the boundary bucket collides.
    std::vector<core::TimedValue> out;
    out.reserve(cold.size() + hot.size());
    std::size_t i = 0, j = 0;
    while (i < cold.size() && j < hot.size()) {
      if (cold[i].time < hot[j].time) {
        out.push_back(cold[i++]);
      } else if (hot[j].time < cold[i].time) {
        out.push_back(hot[j++]);
      } else {
        out.push_back(merge_bucket(series, cold[i], hot[j], bucket, agg));
        ++i;
        ++j;
      }
    }
    for (; i < cold.size(); ++i) out.push_back(cold[i]);
    for (; j < hot.size(); ++j) out.push_back(hot[j]);
    return out;
  }

  std::size_t scan(core::SeriesId series, const core::TimeRange& range,
                   const std::function<bool(const core::TimedValue&)>& visit)
      const {
    // Tiers first (older), then hot; duplicates at the seam are suppressed
    // the same way query_range resolves them.
    const auto pts = query_range(series, range);
    std::size_t n = 0;
    for (const auto& p : pts) {
      ++n;
      if (!visit(p)) break;
    }
    return n;
  }

 private:
  core::TimedValue merge_bucket(core::SeriesId series,
                                const core::TimedValue& cold,
                                const core::TimedValue& hot,
                                core::Duration bucket, Agg agg) const {
    switch (agg) {
      case Agg::kSum:
      case Agg::kCount: return {cold.time, cold.value + hot.value};
      case Agg::kMin: return {cold.time, std::min(cold.value, hot.value)};
      case Agg::kMax: return {cold.time, std::max(cold.value, hot.value)};
      case Agg::kLast: return hot;
      case Agg::kMean: {
        // Recompute the one collided bucket from both sides' sums/counts.
        const core::TimeRange r{cold.time, cold.time + bucket};
        const auto sum = aggregate(series, r, Agg::kSum);
        const auto cnt = aggregate(series, r, Agg::kCount);
        if (sum && cnt && *cnt > 0.0) return {cold.time, *sum / *cnt};
        return hot;
      }
    }
    return hot;
  }

  const TierStore* tiers_;
  const Hot* hot_;
};

}  // namespace hpcmon::store
