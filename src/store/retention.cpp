#include "store/retention.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "core/crc32.hpp"

namespace hpcmon::store {

using core::Result;
using core::SeriesId;
using core::Status;
using core::TimedValue;
using core::TimePoint;
using core::TimeRange;

void Archive::store(SeriesId series, Chunk&& chunk) {
  Blob b;
  b.min_time = chunk.min_time();
  b.max_time = chunk.max_time();
  b.raw = chunk.serialize();
  blobs_[core::raw(series)].push_back(std::move(b));
}

std::vector<TimedValue> Archive::fetch(SeriesId series,
                                       const TimeRange& range) const {
  std::vector<TimedValue> out;
  auto it = blobs_.find(core::raw(series));
  if (it == blobs_.end()) return out;
  for (const auto& b : it->second) {
    if (b.min_time >= range.end || b.max_time < range.begin) continue;
    reloads_.fetch_add(1, std::memory_order_relaxed);
    for (const auto& p : Chunk::deserialize(b.raw).decompress()) {
      if (range.contains(p.time)) out.push_back(p);
    }
  }
  return out;
}

std::size_t Archive::blob_count() const {
  std::size_t n = 0;
  for (const auto& [id, blobs] : blobs_) n += blobs.size();
  return n;
}

std::size_t Archive::byte_size() const {
  std::size_t n = 0;
  for (const auto& [id, blobs] : blobs_) {
    for (const auto& b : blobs) n += b.raw.size();
  }
  return n;
}

namespace {
// V1 ("HPMA") carried no checksums; V2 ("HPMB") appends a CRC-32 of each
// blob's raw bytes after its length field, so a cold-tier file that rotted
// on slow media (bit flip, torn copy) is detected at reload instead of
// silently feeding garbage into queries. Loads accept both; saves write V2.
constexpr std::uint32_t kArchiveMagic = 0x48504D41;    // "HPMA"
constexpr std::uint32_t kArchiveMagicV2 = 0x48504D42;  // "HPMB"

bool write_u32(std::FILE* f, std::uint32_t v) {
  return std::fwrite(&v, 4, 1, f) == 1;
}
bool write_u64(std::FILE* f, std::uint64_t v) {
  return std::fwrite(&v, 8, 1, f) == 1;
}
bool read_u32(std::FILE* f, std::uint32_t& v) {
  return std::fread(&v, 4, 1, f) == 1;
}
bool read_u64(std::FILE* f, std::uint64_t& v) {
  return std::fread(&v, 8, 1, f) == 1;
}
}  // namespace

Status Archive::save_to_file(const std::string& path) const {
  // Crash-safe spill: write a sibling temp file and atomically rename it
  // over the destination, so a crash mid-save can never leave a truncated
  // archive where a good one used to be (the cold tier must stay
  // trustworthy across restarts — Table I, Data Storage).
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::error("cannot open " + tmp);
  bool ok = write_u32(f, kArchiveMagicV2) &&
            write_u32(f, static_cast<std::uint32_t>(blobs_.size()));
  for (const auto& [id, blobs] : blobs_) {
    ok = ok && write_u32(f, id) &&
         write_u32(f, static_cast<std::uint32_t>(blobs.size()));
    for (const auto& b : blobs) {
      ok = ok && write_u64(f, static_cast<std::uint64_t>(b.min_time)) &&
           write_u64(f, static_cast<std::uint64_t>(b.max_time)) &&
           write_u32(f, static_cast<std::uint32_t>(b.raw.size())) &&
           write_u32(f, core::crc32(b.raw.data(), b.raw.size()));
      ok = ok && std::fwrite(b.raw.data(), 1, b.raw.size(), f) == b.raw.size();
    }
  }
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::error("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::error("cannot rename " + tmp + " over " + path);
  }
  return Status::ok();
}

Result<Archive> Archive::load_from_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Result<Archive>::error("cannot open " + path);
  Archive a;
  std::uint32_t magic = 0;
  std::uint32_t n_series = 0;
  if (!read_u32(f, magic) ||
      (magic != kArchiveMagic && magic != kArchiveMagicV2) ||
      !read_u32(f, n_series)) {
    std::fclose(f);
    return Result<Archive>::error("bad archive header in " + path);
  }
  const bool has_crc = magic == kArchiveMagicV2;
  for (std::uint32_t s = 0; s < n_series; ++s) {
    std::uint32_t id = 0;
    std::uint32_t n_blobs = 0;
    if (!read_u32(f, id) || !read_u32(f, n_blobs)) {
      std::fclose(f);
      return Result<Archive>::error("truncated archive " + path);
    }
    for (std::uint32_t i = 0; i < n_blobs; ++i) {
      Blob b;
      std::uint64_t t = 0;
      std::uint32_t len = 0;
      std::uint32_t want_crc = 0;
      if (!read_u64(f, t)) break;
      b.min_time = static_cast<TimePoint>(t);
      if (!read_u64(f, t)) break;
      b.max_time = static_cast<TimePoint>(t);
      if (!read_u32(f, len)) break;
      if (has_crc && !read_u32(f, want_crc)) {
        std::fclose(f);
        return Result<Archive>::error("truncated blob header in " + path);
      }
      b.raw.resize(len);
      if (std::fread(b.raw.data(), 1, len, f) != len) {
        std::fclose(f);
        return Result<Archive>::error("truncated blob in " + path);
      }
      if (has_crc) {
        const std::uint32_t got = core::crc32(b.raw.data(), b.raw.size());
        if (got != want_crc) {
          std::fclose(f);
          return Result<Archive>(Status::corruption(
              "archive blob CRC mismatch in " + path + " (series " +
              std::to_string(id) + ", blob " + std::to_string(i) + ")"));
        }
      }
      a.blobs_[id].push_back(std::move(b));
    }
  }
  std::fclose(f);
  return a;
}

TieredStore::TieredStore(const RetentionPolicy& policy,
                         std::size_t chunk_points)
    : policy_(policy), hot_(chunk_points), warm_(chunk_points) {}

std::size_t TieredStore::enforce(TimePoint now) {
  const TimePoint hot_cutoff = now - policy_.hot_window;
  const std::size_t archived = hot_.evict_before(
      hot_cutoff, [this](SeriesId id, Chunk&& chunk) {
        // Downsample into warm before the raw chunk goes cold. A bucket that
        // straddles two chunks keeps its first chunk's aggregate (the
        // second append is rejected by ordering) — bounded, documented bias.
        const auto pts = chunk.decompress();
        std::size_t i = 0;
        while (i < pts.size()) {
          const TimePoint bucket =
              pts[i].time / policy_.warm_bucket * policy_.warm_bucket;
          std::vector<TimedValue> in_bucket;
          while (i < pts.size() &&
                 pts[i].time < bucket + policy_.warm_bucket) {
            in_bucket.push_back(pts[i]);
            ++i;
          }
          if (auto v = aggregate_points(in_bucket, policy_.warm_agg)) {
            warm_.append(id, bucket, *v);
          }
        }
        archive_.store(id, std::move(chunk));
      });
  warm_.evict_before(now - policy_.warm_window, {});
  return archived;
}

namespace {
std::vector<TimedValue> merge_sorted(std::vector<TimedValue> a,
                                     std::vector<TimedValue> b) {
  std::vector<TimedValue> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out),
             [](const TimedValue& x, const TimedValue& y) {
               return x.time < y.time;
             });
  return out;
}
}  // namespace

std::vector<TimedValue> TieredStore::query_range(SeriesId series,
                                                 const TimeRange& range) const {
  return merge_sorted(warm_.query_range(series, range),
                      hot_.query_range(series, range));
}

std::vector<TimedValue> TieredStore::query_full(SeriesId series,
                                                const TimeRange& range) const {
  return merge_sorted(archive_.fetch(series, range),
                      hot_.query_range(series, range));
}

}  // namespace hpcmon::store
