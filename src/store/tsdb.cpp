#include "store/tsdb.hpp"

#include <algorithm>
#include <cmath>

namespace hpcmon::store {

using core::SeriesId;
using core::TimedValue;
using core::TimePoint;
using core::TimeRange;

std::string_view to_string(Agg agg) {
  switch (agg) {
    case Agg::kSum: return "sum";
    case Agg::kMean: return "mean";
    case Agg::kMin: return "min";
    case Agg::kMax: return "max";
    case Agg::kCount: return "count";
    case Agg::kLast: return "last";
  }
  return "?";
}

std::optional<double> aggregate_points(const std::vector<TimedValue>& pts,
                                       Agg agg) {
  if (pts.empty()) return std::nullopt;
  switch (agg) {
    case Agg::kCount:
      return static_cast<double>(pts.size());
    case Agg::kLast:
      return pts.back().value;
    case Agg::kSum:
    case Agg::kMean: {
      double sum = 0.0;
      for (const auto& p : pts) sum += p.value;
      return agg == Agg::kSum ? sum : sum / static_cast<double>(pts.size());
    }
    case Agg::kMin: {
      double m = pts[0].value;
      for (const auto& p : pts) m = std::min(m, p.value);
      return m;
    }
    case Agg::kMax: {
      double m = pts[0].value;
      for (const auto& p : pts) m = std::max(m, p.value);
      return m;
    }
  }
  return std::nullopt;
}

TimeSeriesStore::Series* TimeSeriesStore::find(SeriesId id) {
  const auto i = core::raw(id);
  if (i >= series_.size()) return nullptr;
  return &series_[i];
}

const TimeSeriesStore::Series* TimeSeriesStore::find(SeriesId id) const {
  const auto i = core::raw(id);
  if (i >= series_.size()) return nullptr;
  return &series_[i];
}

bool TimeSeriesStore::append(SeriesId id, TimePoint t, double value) {
  std::scoped_lock lock(mu_);
  const auto i = core::raw(id);
  if (i >= series_.size()) series_.resize(i + 1);
  auto& s = series_[i];
  if (t <= s.last_time) return false;  // strict ordering per series
  s.head.push_back({t, value});
  s.last_time = t;
  if (s.head.size() >= chunk_points_) seal_locked(s);
  return true;
}

std::size_t TimeSeriesStore::append_batch(
    const std::vector<core::Sample>& samples) {
  std::size_t accepted = 0;
  for (const auto& s : samples) {
    if (append(s.series, s.time, s.value)) ++accepted;
  }
  return accepted;
}

void TimeSeriesStore::seal_locked(Series& s) {
  if (s.head.empty()) return;
  s.sealed.push_back(Chunk::compress(s.head));
  s.head.clear();
}

std::vector<TimedValue> TimeSeriesStore::query_range(
    SeriesId id, const TimeRange& range) const {
  std::scoped_lock lock(mu_);
  std::vector<TimedValue> out;
  const auto* s = find(id);
  if (s == nullptr) return out;
  for (const auto& c : s->sealed) {
    if (!c.overlaps(range)) continue;
    for (const auto& p : c.decompress()) {
      if (range.contains(p.time)) out.push_back(p);
    }
  }
  for (const auto& p : s->head) {
    if (range.contains(p.time)) out.push_back(p);
  }
  return out;  // chunks are time-ordered, head follows sealed
}

std::optional<TimedValue> TimeSeriesStore::latest(SeriesId id) const {
  std::scoped_lock lock(mu_);
  const auto* s = find(id);
  if (s == nullptr) return std::nullopt;
  if (!s->head.empty()) return s->head.back();
  if (!s->sealed.empty()) {
    const auto pts = s->sealed.back().decompress();
    if (!pts.empty()) return pts.back();
  }
  return std::nullopt;
}

std::optional<double> TimeSeriesStore::aggregate(SeriesId id,
                                                 const TimeRange& range,
                                                 Agg agg) const {
  return aggregate_points(query_range(id, range), agg);
}

std::vector<TimedValue> TimeSeriesStore::downsample(SeriesId id,
                                                    const TimeRange& range,
                                                    core::Duration bucket,
                                                    Agg agg) const {
  std::vector<TimedValue> out;
  if (bucket <= 0) return out;
  const auto pts = query_range(id, range);
  std::size_t i = 0;
  while (i < pts.size()) {
    const TimePoint bucket_start =
        range.begin + (pts[i].time - range.begin) / bucket * bucket;
    std::vector<TimedValue> in_bucket;
    while (i < pts.size() && pts[i].time < bucket_start + bucket) {
      in_bucket.push_back(pts[i]);
      ++i;
    }
    if (auto v = aggregate_points(in_bucket, agg)) {
      out.push_back({bucket_start, *v});
    }
  }
  return out;
}

std::size_t TimeSeriesStore::evict_before(
    TimePoint cutoff,
    const std::function<void(SeriesId, Chunk&&)>& sink) {
  std::scoped_lock lock(mu_);
  std::size_t evicted = 0;
  for (std::size_t i = 0; i < series_.size(); ++i) {
    auto& s = series_[i];
    auto it = s.sealed.begin();
    while (it != s.sealed.end() && it->max_time() < cutoff) {
      if (sink) sink(SeriesId{static_cast<std::uint32_t>(i)}, std::move(*it));
      it = s.sealed.erase(it);
      ++evicted;
    }
  }
  return evicted;
}

bool TimeSeriesStore::has_series(SeriesId id) const {
  std::scoped_lock lock(mu_);
  const auto* s = find(id);
  return s != nullptr && (!s->head.empty() || !s->sealed.empty());
}

StoreStats TimeSeriesStore::stats() const {
  std::scoped_lock lock(mu_);
  StoreStats st;
  for (const auto& s : series_) {
    if (s.head.empty() && s.sealed.empty()) continue;
    ++st.series;
    st.head_points += s.head.size();
    st.points += s.head.size();
    for (const auto& c : s.sealed) {
      st.points += c.count();
      st.compressed_bytes += c.byte_size();
      ++st.sealed_chunks;
    }
  }
  return st;
}

}  // namespace hpcmon::store
