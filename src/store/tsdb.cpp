#include "store/tsdb.hpp"

#include <algorithm>
#include <cmath>

#include "store/cursor.hpp"

namespace hpcmon::store {

using core::SeriesId;
using core::TimedValue;
using core::TimePoint;
using core::TimeRange;

std::string_view to_string(Agg agg) {
  switch (agg) {
    case Agg::kSum: return "sum";
    case Agg::kMean: return "mean";
    case Agg::kMin: return "min";
    case Agg::kMax: return "max";
    case Agg::kCount: return "count";
    case Agg::kLast: return "last";
  }
  return "?";
}

std::optional<double> aggregate_points(const std::vector<TimedValue>& pts,
                                       Agg agg) {
  if (pts.empty()) return std::nullopt;
  switch (agg) {
    case Agg::kCount:
      return static_cast<double>(pts.size());
    case Agg::kLast:
      return pts.back().value;
    case Agg::kSum:
    case Agg::kMean: {
      double sum = 0.0;
      for (const auto& p : pts) sum += p.value;
      return agg == Agg::kSum ? sum : sum / static_cast<double>(pts.size());
    }
    case Agg::kMin: {
      double m = pts[0].value;
      for (const auto& p : pts) m = std::min(m, p.value);
      return m;
    }
    case Agg::kMax: {
      double m = pts[0].value;
      for (const auto& p : pts) m = std::max(m, p.value);
      return m;
    }
  }
  return std::nullopt;
}

QueryStats& QueryStats::operator+=(const QueryStats& o) {
  queries += o.queries;
  summary_chunks += o.summary_chunks;
  cursor_chunks += o.cursor_chunks;
  cache_hits += o.cache_hits;
  cache_misses += o.cache_misses;
  cache_evictions += o.cache_evictions;
  cache_invalidations += o.cache_invalidations;
  cache_entries += o.cache_entries;
  return *this;
}

bool TimeSeriesStore::append(SeriesId id, TimePoint t, double value) {
  const auto i = core::raw(id);
  {
    std::shared_lock map_lock(map_mu_);
    if (i < series_.size()) return append_at(i, t, value);
  }
  std::unique_lock map_lock(map_mu_);  // slow path: grow the series table
  if (i >= series_.size()) series_.resize(i + 1);
  return append_at(i, t, value);
}

bool TimeSeriesStore::append_at(std::size_t i, TimePoint t, double value) {
  std::scoped_lock lock(stripe(i));
  return append_locked(series_[i], t, value);
}

bool TimeSeriesStore::append_locked(Series& s, TimePoint t, double value) {
  if (t <= s.last_time) return false;  // strict ordering per series
  s.head.push_back({t, value});
  s.last_time = t;
  if (s.head.size() >= chunk_points_) seal_locked(s);
  return true;
}

std::size_t TimeSeriesStore::append_batch(
    std::span<const core::Sample> samples) {
  if (samples.empty()) return 0;
  std::size_t max_index = 0;
  for (const auto& s : samples) {
    max_index =
        std::max(max_index, static_cast<std::size_t>(core::raw(s.series)));
  }
  std::shared_lock map_lock(map_mu_);
  if (max_index >= series_.size()) {
    map_lock.unlock();
    {
      std::unique_lock grow(map_mu_);
      if (max_index >= series_.size()) series_.resize(max_index + 1);
    }
    map_lock.lock();
  }

  // Stable counting sort of sample indices by lock stripe: each stripe mutex
  // is then taken once per batch instead of once per sample. Within a stripe
  // samples keep arrival order, and appends to different series commute, so
  // accept/seal decisions — and sealed chunk bytes — match the per-sample
  // path exactly.
  std::array<std::size_t, kLockStripes + 1> offsets{};
  for (const auto& s : samples) {
    ++offsets[core::raw(s.series) % kLockStripes + 1];
  }
  for (std::size_t k = 1; k <= kLockStripes; ++k) offsets[k] += offsets[k - 1];
  thread_local std::vector<std::uint32_t> order;
  order.resize(samples.size());
  auto fill = offsets;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    order[fill[core::raw(samples[i].series) % kLockStripes]++] =
        static_cast<std::uint32_t>(i);
  }

  std::size_t accepted = 0;
  for (std::size_t k = 0; k < kLockStripes; ++k) {
    if (offsets[k] == offsets[k + 1]) continue;
    std::scoped_lock lock(stripe_mu_[k]);
    for (std::size_t j = offsets[k]; j < offsets[k + 1]; ++j) {
      const auto& s = samples[order[j]];
      if (append_locked(series_[core::raw(s.series)], s.time, s.value)) {
        ++accepted;
      }
    }
  }
  return accepted;
}

std::size_t TimeSeriesStore::append_run(SeriesId id,
                                        std::span<const core::Sample> run) {
  if (run.empty()) return 0;
  const auto i = static_cast<std::size_t>(core::raw(id));
  std::shared_lock map_lock(map_mu_);
  if (i >= series_.size()) {
    map_lock.unlock();
    {
      std::unique_lock grow(map_mu_);
      if (i >= series_.size()) series_.resize(i + 1);
    }
    map_lock.lock();
  }
  std::scoped_lock lock(stripe(i));
  auto& s = series_[i];
  // One head-extend for the whole run (head capacity survives sealing, so
  // steady-state appends never allocate).
  s.head.reserve(std::min(chunk_points_, s.head.size() + run.size()));
  std::size_t accepted = 0;
  for (const auto& smp : run) {
    if (append_locked(s, smp.time, smp.value)) ++accepted;
  }
  return accepted;
}

void TimeSeriesStore::seal_locked(Series& s) {
  if (s.head.empty()) return;
  s.sealed.push_back(std::make_shared<const Chunk>(Chunk::compress(s.head)));
  s.head.clear();
}

TimeSeriesStore::ReadView TimeSeriesStore::read_view(
    SeriesId id, const TimeRange& range) const {
  ReadView view;
  const auto i = core::raw(id);
  std::shared_lock map_lock(map_mu_);
  if (i >= series_.size()) return view;
  std::scoped_lock lock(stripe(i));
  const auto& s = series_[i];
  for (const auto& c : s.sealed) {
    if (!c->overlaps(range)) continue;
    view.chunk_points += c->count();
    view.chunks.push_back(c);
  }
  for (const auto& p : s.head) {
    if (range.contains(p.time)) view.head.push_back(p);
  }
  return view;
}

DecodedChunk TimeSeriesStore::decoded(const Chunk& chunk, bool& hit) const {
  if (auto cached = cache_.get(chunk.id())) {
    hit = true;
    return cached;
  }
  hit = false;
  auto pts =
      std::make_shared<const std::vector<TimedValue>>(chunk.decompress());
  cache_.put(chunk.id(), pts);
  return pts;
}

std::vector<TimedValue> TimeSeriesStore::query_range(
    SeriesId id, const TimeRange& range) const {
  queries_.add();
  obs::StageTimer::Scoped span(stages_, obs::Stage::kQueryCache);
  std::vector<TimedValue> out;
  if (range.empty()) return out;
  const auto view = read_view(id, range);
  out.reserve(view.chunk_points + view.head.size());
  for (const auto& c : view.chunks) {
    // Keep the decoded vector alive for the loop: when the cache is disabled
    // the returned shared_ptr is the only owner.
    bool hit = false;
    const auto pts = decoded(*c, hit);
    // A single decompress reclassifies the whole read: it dominates latency.
    if (!hit) span.set_stage(obs::Stage::kQueryCursor);
    for (const auto& p : *pts) {
      if (range.contains(p.time)) out.push_back(p);
    }
  }
  out.insert(out.end(), view.head.begin(), view.head.end());
  return out;  // chunks are time-ordered, head follows sealed
}

std::optional<TimedValue> TimeSeriesStore::latest(SeriesId id) const {
  const auto i = core::raw(id);
  std::shared_lock map_lock(map_mu_);
  if (i >= series_.size()) return std::nullopt;
  std::scoped_lock lock(stripe(i));
  const auto& s = series_[i];
  if (!s.head.empty()) return s.head.back();
  if (!s.sealed.empty()) {
    // The seal-time summary already knows the newest sealed point: no decode.
    const auto& c = *s.sealed.back();
    if (c.count() > 0) return TimedValue{c.max_time(), c.summary().last};
  }
  return std::nullopt;
}

std::optional<double> TimeSeriesStore::aggregate(SeriesId id,
                                                 const TimeRange& range,
                                                 Agg agg) const {
  queries_.add();
  obs::StageTimer::Scoped span(stages_, obs::Stage::kQuerySummary);
  if (range.empty()) return std::nullopt;
  const auto view = read_view(id, range);
  ChunkSummary acc;
  for (const auto& c : view.chunks) {
    if (c->covered_by(range)) {
      acc.merge(c->summary());
      summary_chunks_.add();
      continue;
    }
    // Boundary chunk: batch-decode through a stack block instead of
    // materializing the chunk; early exit between blocks keeps the old
    // stop-past-range.end behavior at block granularity.
    cursor_chunks_.add();
    span.set_stage(obs::Stage::kQueryCursor);
    ChunkCursor cursor(*c);
    TimedValue block[256];
    bool past_end = false;
    while (!past_end) {
      const std::size_t n = cursor.scan_batch(block);
      if (n == 0) break;
      for (std::size_t k = 0; k < n; ++k) {
        if (block[k].time >= range.end) {
          past_end = true;
          break;
        }
        if (block[k].time >= range.begin) acc.add(block[k]);
      }
    }
  }
  for (const auto& p : view.head) acc.add(p);
  return summary_aggregate(acc, agg);
}

std::vector<TimedValue> TimeSeriesStore::downsample(SeriesId id,
                                                    const TimeRange& range,
                                                    core::Duration bucket,
                                                    Agg agg) const {
  queries_.add();
  obs::StageTimer::Scoped span(stages_, obs::Stage::kQuerySummary);
  std::vector<TimedValue> out;
  if (bucket <= 0 || range.empty()) return out;
  const auto view = read_view(id, range);

  // Data arrives in time order, so bucket starts are non-decreasing and the
  // open bucket is always the back of the list.
  std::vector<std::pair<TimePoint, ChunkSummary>> buckets;
  const auto bucket_start = [&](TimePoint t) {
    return range.begin + (t - range.begin) / bucket * bucket;
  };
  const auto acc_for = [&](TimePoint bs) -> ChunkSummary& {
    if (buckets.empty() || buckets.back().first != bs) {
      buckets.emplace_back(bs, ChunkSummary{});
    }
    return buckets.back().second;
  };

  for (const auto& c : view.chunks) {
    // A chunk entirely inside the range AND inside one bucket contributes
    // its summary without decoding — stepped aggregation per bucket.
    if (c->covered_by(range) &&
        bucket_start(c->min_time()) == bucket_start(c->max_time())) {
      acc_for(bucket_start(c->min_time())).merge(c->summary());
      summary_chunks_.add();
      continue;
    }
    cursor_chunks_.add();
    span.set_stage(obs::Stage::kQueryCursor);
    ChunkCursor cursor(*c);
    TimedValue block[256];
    bool past_end = false;
    while (!past_end) {
      const std::size_t n = cursor.scan_batch(block);
      if (n == 0) break;
      for (std::size_t k = 0; k < n; ++k) {
        if (block[k].time >= range.end) {
          past_end = true;
          break;
        }
        if (block[k].time >= range.begin) {
          acc_for(bucket_start(block[k].time)).add(block[k]);
        }
      }
    }
  }
  for (const auto& p : view.head) acc_for(bucket_start(p.time)).add(p);

  out.reserve(buckets.size());
  for (const auto& [bs, acc] : buckets) {
    if (auto v = summary_aggregate(acc, agg)) out.push_back({bs, *v});
  }
  return out;
}

std::size_t TimeSeriesStore::scan(
    SeriesId id, const TimeRange& range,
    const std::function<bool(const TimedValue&)>& visit) const {
  queries_.add();
  obs::StageTimer::Scoped span(stages_, obs::Stage::kQueryCursor);
  if (range.empty()) return 0;
  const auto view = read_view(id, range);
  std::size_t visited = 0;
  for (const auto& c : view.chunks) {
    cursor_chunks_.add();
    ChunkCursor cursor(*c);
    TimedValue p;
    while (cursor.next(p)) {
      if (p.time >= range.end) return visited;
      if (p.time < range.begin) continue;
      ++visited;
      if (!visit(p)) return visited;
    }
  }
  for (const auto& p : view.head) {
    ++visited;
    if (!visit(p)) return visited;
  }
  return visited;
}

std::size_t TimeSeriesStore::evict_before(
    TimePoint cutoff,
    const std::function<void(SeriesId, Chunk&&)>& sink) {
  std::size_t evicted = 0;
  std::vector<std::uint64_t> dropped;  // cache invalidations, outside stripes
  std::vector<SeriesId> gone;          // series left fully empty
  {
    std::shared_lock map_lock(map_mu_);
    for (std::size_t i = 0; i < series_.size(); ++i) {
      std::scoped_lock lock(stripe(i));
      auto& s = series_[i];
      const bool had_data = !s.sealed.empty() || !s.head.empty();
      auto it = s.sealed.begin();
      while (it != s.sealed.end() && (*it)->max_time() < cutoff) {
        dropped.push_back((*it)->id());
        if (sink) {
          Chunk copy(**it);  // queries may still hold the shared ref
          sink(SeriesId{static_cast<std::uint32_t>(i)}, std::move(copy));
        }
        it = s.sealed.erase(it);
        ++evicted;
      }
      if (had_data && gone_ && s.sealed.empty() && s.head.empty()) {
        gone.push_back(SeriesId{static_cast<std::uint32_t>(i)});
      }
    }
  }
  for (const auto id : dropped) cache_.erase(id);
  for (const auto id : gone) gone_(id);
  return evicted;
}

TimeSeriesStore::SealedChunkSet TimeSeriesStore::sealed_chunks_before(
    TimePoint cutoff) const {
  std::shared_lock map_lock(map_mu_);
  SealedChunkSet out;
  out.safe_watermark = cutoff;
  for (std::size_t i = 0; i < series_.size(); ++i) {
    std::scoped_lock lock(stripe(i));
    const auto& s = series_[i];
    TimePoint oldest_remaining = INT64_MAX;
    for (const auto& c : s.sealed) {
      if (c->max_time() < cutoff) {
        out.chunks.emplace_back(SeriesId{static_cast<std::uint32_t>(i)}, c);
      } else {
        oldest_remaining = std::min(oldest_remaining, c->min_time());
      }
    }
    if (!s.head.empty()) {
      oldest_remaining = std::min(oldest_remaining, s.head.front().time);
    }
    out.safe_watermark = std::min(out.safe_watermark, oldest_remaining);
  }
  return out;
}

std::size_t TimeSeriesStore::evict_chunks(
    const std::vector<std::pair<core::SeriesId, std::uint64_t>>& ids) {
  std::size_t evicted = 0;
  std::vector<std::uint64_t> dropped;
  std::vector<SeriesId> gone;
  {
    std::shared_lock map_lock(map_mu_);
    for (const auto& [sid, chunk_id] : ids) {
      const auto i = core::raw(sid);
      if (i >= series_.size()) continue;
      std::scoped_lock lock(stripe(i));
      auto& s = series_[i];
      for (auto it = s.sealed.begin(); it != s.sealed.end(); ++it) {
        if ((*it)->id() == chunk_id) {
          dropped.push_back(chunk_id);
          s.sealed.erase(it);
          ++evicted;
          if (gone_ && s.sealed.empty() && s.head.empty()) {
            gone.push_back(sid);
          }
          break;
        }
      }
    }
  }
  for (const auto id : dropped) cache_.erase(id);
  for (const auto id : gone) gone_(id);
  return evicted;
}

bool TimeSeriesStore::has_series(SeriesId id) const {
  const auto i = core::raw(id);
  std::shared_lock map_lock(map_mu_);
  if (i >= series_.size()) return false;
  std::scoped_lock lock(stripe(i));
  const auto& s = series_[i];
  return !s.head.empty() || !s.sealed.empty();
}

StoreStats TimeSeriesStore::stats() const {
  std::shared_lock map_lock(map_mu_);
  StoreStats st;
  for (std::size_t i = 0; i < series_.size(); ++i) {
    std::scoped_lock lock(stripe(i));
    const auto& s = series_[i];
    if (s.head.empty() && s.sealed.empty()) continue;
    ++st.series;
    st.head_points += s.head.size();
    st.points += s.head.size();
    for (const auto& c : s.sealed) {
      st.points += c->count();
      st.compressed_bytes += c->byte_size();
      ++st.sealed_chunks;
    }
  }
  return st;
}

QueryStats TimeSeriesStore::query_stats() const {
  QueryStats qs;
  qs.queries = queries_.value();
  qs.summary_chunks = summary_chunks_.value();
  qs.cursor_chunks = cursor_chunks_.value();
  const auto cs = cache_.stats();
  qs.cache_hits = cs.hits;
  qs.cache_misses = cs.misses;
  qs.cache_evictions = cs.evictions;
  qs.cache_invalidations = cs.invalidations;
  qs.cache_entries = cs.entries;
  return qs;
}

void TimeSeriesStore::attach_to(obs::ObsRegistry& registry) const {
  registry.attach({"store.queries", "queries",
                   "read-path calls (range+aggregate+downsample+scan)"},
                  &queries_);
  registry.attach(
      {"store.summary_chunks", "chunks",
       "chunks answered from seal-time summaries without decoding"},
      &summary_chunks_);
  registry.attach({"store.cursor_chunks", "chunks",
                   "boundary chunks streamed point-by-point"},
                  &cursor_chunks_);
  cache_.attach_to(registry);
}

}  // namespace hpcmon::store
