#include "store/jobstore.hpp"

#include <algorithm>

namespace hpcmon::store {

void JobStore::record_start(const JobMeta& meta) {
  std::scoped_lock lock(mu_);
  jobs_[meta.id] = meta;
}

void JobStore::record_end(const JobMeta& meta) {
  std::scoped_lock lock(mu_);
  jobs_[meta.id] = meta;
}

std::optional<JobMeta> JobStore::get(core::JobId id) const {
  std::scoped_lock lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second;
}

std::vector<JobMeta> JobStore::jobs_overlapping(
    const core::TimeRange& range) const {
  std::scoped_lock lock(mu_);
  std::vector<JobMeta> out;
  for (const auto& [id, j] : jobs_) {
    if (j.start_time < 0) continue;
    const core::TimePoint end = j.end_time < 0 ? INT64_MAX : j.end_time;
    if (j.start_time < range.end && range.begin < end) out.push_back(j);
  }
  std::sort(out.begin(), out.end(), [](const JobMeta& a, const JobMeta& b) {
    return a.start_time < b.start_time;
  });
  return out;
}

std::optional<JobMeta> JobStore::job_on_node_at(int node,
                                                core::TimePoint t) const {
  std::scoped_lock lock(mu_);
  for (const auto& [id, j] : jobs_) {
    if (!j.running_at(t)) continue;
    if (std::find(j.nodes.begin(), j.nodes.end(), node) != j.nodes.end()) {
      return j;
    }
  }
  return std::nullopt;
}

std::vector<JobMeta> JobStore::running_at(core::TimePoint t) const {
  std::scoped_lock lock(mu_);
  std::vector<JobMeta> out;
  for (const auto& [id, j] : jobs_) {
    if (j.running_at(t)) out.push_back(j);
  }
  std::sort(out.begin(), out.end(), [](const JobMeta& a, const JobMeta& b) {
    return core::raw(a.id) < core::raw(b.id);
  });
  return out;
}

std::size_t JobStore::size() const {
  std::scoped_lock lock(mu_);
  return jobs_.size();
}

std::vector<JobMeta> JobStore::completed_runs_of(
    const std::string& app_name) const {
  std::scoped_lock lock(mu_);
  std::vector<JobMeta> out;
  for (const auto& [id, j] : jobs_) {
    if (j.app_name == app_name && j.end_time >= 0 && !j.failed) {
      out.push_back(j);
    }
  }
  std::sort(out.begin(), out.end(), [](const JobMeta& a, const JobMeta& b) {
    return a.start_time < b.start_time;
  });
  return out;
}

}  // namespace hpcmon::store
