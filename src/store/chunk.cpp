#include "store/chunk.hpp"

#include <atomic>
#include <bit>
#include <cstring>

#include "store/codec_detail.hpp"
#include "store/cursor.hpp"

namespace hpcmon::store {

using core::TimedValue;
using core::TimePoint;

namespace {

// Generation ids for decode-cache keying; 0 is reserved for the empty chunk.
std::uint64_t next_chunk_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Chunk Chunk::compress(const std::vector<TimedValue>& points) {
  Chunk c;
  if (points.empty()) return c;
  c.count_ = static_cast<std::uint32_t>(points.size());
  c.min_time_ = points.front().time;
  c.max_time_ = points.back().time;
  c.id_ = next_chunk_id();

  BitWriter w;
  // Worst case per point: 68-bit delta-of-delta + 77-bit value = 19 bytes;
  // header point is 16. Reserving up front (plus word-granular spill slack)
  // means the encode loop never reallocates — one growth-free allocation,
  // then one right-sizing copy at take().
  w.reserve(24 + 19 * points.size());
  // Header point: full timestamp + full value bits.
  w.write(detail::zigzag(points[0].time), 64);
  w.write(detail::double_bits(points[0].value), 64);
  c.summary_.add(points[0].value);

  std::int64_t prev_time = points[0].time;
  std::int64_t prev_delta = 0;
  std::uint64_t prev_value = detail::double_bits(points[0].value);
  int prev_leading = -1;  // -1 = no reusable window yet
  int prev_trailing = 0;

  for (std::size_t i = 1; i < points.size(); ++i) {
    const std::int64_t delta = points[i].time - prev_time;
    detail::write_dod(w, delta - prev_delta);
    prev_delta = delta;
    prev_time = points[i].time;
    c.summary_.add(points[i].value);

    const std::uint64_t bits = detail::double_bits(points[i].value);
    const std::uint64_t x = bits ^ prev_value;
    prev_value = bits;
    if (x == 0) {
      w.write(0, 1);  // '0': same value
      continue;
    }
    int leading = std::countl_zero(x);
    int trailing = std::countr_zero(x);
    if (leading > 31) leading = 31;  // 5-bit leading field
    if (prev_leading >= 0 && leading >= prev_leading &&
        trailing >= prev_trailing) {
      // '10': reuse previous window.
      w.write(0b10, 2);
      const int meaningful = 64 - prev_leading - prev_trailing;
      w.write(x >> prev_trailing, meaningful);
    } else {
      // '11': new window — control, 5-bit leading, and 6-bit meaningful-1
      // fused into one 13-bit write (bit-identical to the separate writes).
      const int meaningful = 64 - leading - trailing;
      w.write((std::uint64_t{0b11} << 11) |
                  (static_cast<std::uint64_t>(leading) << 6) |
                  static_cast<std::uint64_t>(meaningful - 1),
              13);
      w.write(x >> trailing, meaningful);
      prev_leading = leading;
      prev_trailing = trailing;
    }
  }
  c.bytes_ = std::move(w).take();
  c.bytes_.shrink_to_fit();  // drop the worst-case reserve slack at seal
  return c;
}

std::vector<TimedValue> Chunk::decompress() const {
  std::vector<TimedValue> out;
  decode_all(*this, out);
  return out;
}

namespace {
// Serialized layout: count(u32) min(u64) max(u64) payload_len(u32) payload.
constexpr std::size_t kHeaderBytes = 24;
}  // namespace

std::vector<std::uint8_t> Chunk::serialize() const {
  std::vector<std::uint8_t> out(kHeaderBytes + bytes_.size());
  auto put32 = [&](std::size_t off, std::uint32_t v) {
    std::memcpy(out.data() + off, &v, 4);
  };
  auto put64 = [&](std::size_t off, std::uint64_t v) {
    std::memcpy(out.data() + off, &v, 8);
  };
  put32(0, count_);
  put64(4, static_cast<std::uint64_t>(min_time_));
  put64(12, static_cast<std::uint64_t>(max_time_));
  put32(20, static_cast<std::uint32_t>(bytes_.size()));
  std::memcpy(out.data() + kHeaderBytes, bytes_.data(), bytes_.size());
  return out;
}

Chunk Chunk::deserialize(const std::vector<std::uint8_t>& raw) {
  if (raw.size() < kHeaderBytes) return {};  // truncated header
  std::uint32_t count = 0;
  std::uint32_t payload_len = 0;
  std::uint64_t t = 0;
  std::memcpy(&count, raw.data(), 4);
  std::memcpy(&payload_len, raw.data() + 20, 4);
  if (payload_len != raw.size() - kHeaderBytes) return {};  // framing mismatch
  if (count == 0) return {};  // an empty chunk round-trips to the empty chunk
  if (payload_len < 16) return {};  // header point alone needs 16 bytes

  Chunk c;
  c.count_ = count;
  std::memcpy(&t, raw.data() + 4, 8);
  c.min_time_ = static_cast<TimePoint>(t);
  std::memcpy(&t, raw.data() + 12, 8);
  c.max_time_ = static_cast<TimePoint>(t);
  if (c.min_time_ > c.max_time_) return {};
  c.bytes_.assign(raw.begin() + kHeaderBytes, raw.end());

  // Decode-validate the bitstream against the header before trusting it:
  // exactly `count` points, strictly increasing times, endpoints matching
  // min/max. Recomputes the summary on the way (it is not serialized).
  // Batch-decode through a fixed stack block rather than decode_all: `count`
  // is attacker-controlled here, and sizing a buffer from it before the
  // stream proves itself would let a 24-byte frame demand a gigabyte.
  ChunkCursor cursor(c);
  TimedValue block[512];
  TimePoint prev = INT64_MIN;
  std::uint32_t decoded = 0;
  for (;;) {
    const std::size_t n = cursor.scan_batch(block);
    if (n == 0) break;
    for (std::size_t i = 0; i < n; ++i) {
      if (block[i].time <= prev) return {};
      prev = block[i].time;
      if (decoded == 0 && block[i].time != c.min_time_) return {};
      c.summary_.add(block[i].value);
      ++decoded;
    }
  }
  if (decoded != count || prev != c.max_time_) return {};
  c.id_ = next_chunk_id();
  return c;
}

}  // namespace hpcmon::store
