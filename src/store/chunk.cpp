#include "store/chunk.hpp"

#include <bit>
#include <cassert>
#include <cstring>

#include "store/bitstream.hpp"

namespace hpcmon::store {

using core::TimedValue;
using core::TimePoint;

namespace {

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

// Delta-of-delta prefix classes (Gorilla Table): value ranges are chosen for
// microsecond timestamps sampled at second-to-minute cadence.
void write_dod(BitWriter& w, std::int64_t dod) {
  const std::uint64_t z = zigzag(dod);
  if (dod == 0) {
    w.write_bit(false);                    // '0'
  } else if (z < (1u << 14)) {
    w.write(0b10, 2);
    w.write(z, 14);
  } else if (z < (1u << 24)) {
    w.write(0b110, 3);
    w.write(z, 24);
  } else if (z < (1ull << 36)) {
    w.write(0b1110, 4);
    w.write(z, 36);
  } else {
    w.write(0b1111, 4);
    w.write(z, 64);
  }
}

std::int64_t read_dod(BitReader& r) {
  if (!r.read_bit()) return 0;
  if (!r.read_bit()) return unzigzag(r.read(14));
  if (!r.read_bit()) return unzigzag(r.read(24));
  if (!r.read_bit()) return unzigzag(r.read(36));
  return unzigzag(r.read(64));
}

std::uint64_t double_bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

double bits_double(std::uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

}  // namespace

Chunk Chunk::compress(const std::vector<TimedValue>& points) {
  Chunk c;
  if (points.empty()) return c;
  c.count_ = static_cast<std::uint32_t>(points.size());
  c.min_time_ = points.front().time;
  c.max_time_ = points.back().time;

  BitWriter w;
  // Header point: full timestamp + full value bits.
  w.write(zigzag(points[0].time), 64);
  w.write(double_bits(points[0].value), 64);

  std::int64_t prev_time = points[0].time;
  std::int64_t prev_delta = 0;
  std::uint64_t prev_value = double_bits(points[0].value);
  int prev_leading = -1;  // -1 = no reusable window yet
  int prev_trailing = 0;

  for (std::size_t i = 1; i < points.size(); ++i) {
    const std::int64_t delta = points[i].time - prev_time;
    write_dod(w, delta - prev_delta);
    prev_delta = delta;
    prev_time = points[i].time;

    const std::uint64_t bits = double_bits(points[i].value);
    const std::uint64_t x = bits ^ prev_value;
    prev_value = bits;
    if (x == 0) {
      w.write_bit(false);
      continue;
    }
    w.write_bit(true);
    int leading = std::countl_zero(x);
    int trailing = std::countr_zero(x);
    if (leading > 31) leading = 31;  // 5-bit leading field
    if (prev_leading >= 0 && leading >= prev_leading &&
        trailing >= prev_trailing) {
      // Reuse previous window.
      w.write_bit(false);
      const int meaningful = 64 - prev_leading - prev_trailing;
      w.write(x >> prev_trailing, meaningful);
    } else {
      w.write_bit(true);
      const int meaningful = 64 - leading - trailing;
      w.write(static_cast<std::uint64_t>(leading), 5);
      w.write(static_cast<std::uint64_t>(meaningful - 1), 6);  // 1..64
      w.write(x >> trailing, meaningful);
      prev_leading = leading;
      prev_trailing = trailing;
    }
  }
  c.bytes_ = std::move(w).take();
  return c;
}

std::vector<TimedValue> Chunk::decompress() const {
  std::vector<TimedValue> out;
  if (count_ == 0) return out;
  out.reserve(count_);
  BitReader r(bytes_);

  std::int64_t time = unzigzag(r.read(64));
  std::uint64_t value = r.read(64);
  out.push_back({time, bits_double(value)});

  std::int64_t prev_delta = 0;
  int prev_leading = 0;
  int prev_trailing = 0;
  for (std::uint32_t i = 1; i < count_; ++i) {
    prev_delta += read_dod(r);
    time += prev_delta;
    if (r.read_bit()) {
      std::uint64_t x;
      if (r.read_bit()) {
        prev_leading = static_cast<int>(r.read(5));
        const int meaningful = static_cast<int>(r.read(6)) + 1;
        prev_trailing = 64 - prev_leading - meaningful;
        x = r.read(meaningful) << prev_trailing;
      } else {
        const int meaningful = 64 - prev_leading - prev_trailing;
        x = r.read(meaningful) << prev_trailing;
      }
      value ^= x;
    }
    if (r.eof()) break;  // malformed input: return what we decoded
    out.push_back({time, bits_double(value)});
  }
  return out;
}

std::vector<std::uint8_t> Chunk::serialize() const {
  // Layout: count(u32) min(u64) max(u64) payload_size(u32) payload.
  std::vector<std::uint8_t> out(20 + bytes_.size());
  auto put32 = [&](std::size_t off, std::uint32_t v) {
    std::memcpy(out.data() + off, &v, 4);
  };
  auto put64 = [&](std::size_t off, std::uint64_t v) {
    std::memcpy(out.data() + off, &v, 8);
  };
  put32(0, count_);
  put64(4, static_cast<std::uint64_t>(min_time_));
  put64(12, static_cast<std::uint64_t>(max_time_));
  // payload size implied by container; store anyway for stream framing:
  std::memcpy(out.data() + 20, bytes_.data(), bytes_.size());
  return out;
}

Chunk Chunk::deserialize(const std::vector<std::uint8_t>& raw) {
  Chunk c;
  if (raw.size() < 20) return c;
  std::memcpy(&c.count_, raw.data(), 4);
  std::uint64_t t;
  std::memcpy(&t, raw.data() + 4, 8);
  c.min_time_ = static_cast<TimePoint>(t);
  std::memcpy(&t, raw.data() + 12, 8);
  c.max_time_ = static_cast<TimePoint>(t);
  c.bytes_.assign(raw.begin() + 20, raw.end());
  return c;
}

}  // namespace hpcmon::store
