#include "viz/query.hpp"

#include <algorithm>
#include <map>

namespace hpcmon::viz {

using core::TimedValue;

namespace {
/// Collect per-timestamp values of metric@component for all components.
std::map<core::TimePoint, std::vector<double>> collect_by_time(
    const store::TimeSeriesStore& store, core::MetricRegistry& registry,
    std::string_view metric_name,
    const std::vector<core::ComponentId>& components,
    const core::TimeRange& range) {
  std::map<core::TimePoint, std::vector<double>> by_time;
  for (const auto c : components) {
    const auto sid = registry.series(metric_name, c);
    for (const auto& p : store.query_range(sid, range)) {
      by_time[p.time].push_back(p.value);
    }
  }
  return by_time;
}
}  // namespace

std::vector<TimedValue> aggregate_across(
    const store::TimeSeriesStore& store, core::MetricRegistry& registry,
    std::string_view metric_name,
    const std::vector<core::ComponentId>& components,
    const core::TimeRange& range, store::Agg agg) {
  std::vector<TimedValue> out;
  for (const auto& [t, values] : collect_by_time(store, registry, metric_name,
                                                 components, range)) {
    std::vector<TimedValue> pts;
    pts.reserve(values.size());
    for (const double v : values) pts.push_back({t, v});
    if (auto a = store::aggregate_points(pts, agg)) out.push_back({t, *a});
  }
  return out;
}

std::vector<TimedValue> fraction_in_state(
    const store::TimeSeriesStore& store, core::MetricRegistry& registry,
    std::string_view metric_name,
    const std::vector<core::ComponentId>& components,
    const core::TimeRange& range,
    const std::function<bool(double)>& predicate) {
  std::vector<TimedValue> out;
  for (const auto& [t, values] : collect_by_time(store, registry, metric_name,
                                                 components, range)) {
    std::size_t hits = 0;
    for (const double v : values) {
      if (predicate(v)) ++hits;
    }
    out.push_back({t, values.empty()
                          ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(values.size())});
  }
  return out;
}

std::vector<ComponentValue> breakdown_at(
    const store::TimeSeriesStore& store, core::MetricRegistry& registry,
    std::string_view metric_name,
    const std::vector<core::ComponentId>& components, core::TimePoint at,
    core::Duration lookback) {
  std::vector<ComponentValue> out;
  for (const auto c : components) {
    const auto sid = registry.series(metric_name, c);
    const auto pts = store.query_range(sid, {at - lookback, at + 1});
    if (pts.empty()) continue;
    out.push_back({c, registry.component(c).name, pts.back().value,
                   pts.back().time});
  }
  std::sort(out.begin(), out.end(),
            [](const ComponentValue& a, const ComponentValue& b) {
              return a.value > b.value;
            });
  return out;
}

}  // namespace hpcmon::viz
