// Aggregation queries for dashboards.
//
// Sec. III-B: "individual component graphs may decrease in value and
// performance as the number of components plotted increases. ... Reduced
// dimensionality through higher-level aggregations (e.g., percentage of
// components in a state, regardless of location) coupled with drill-down
// capabilities can enable better at-a-glance understanding." These helpers
// compute exactly those reductions over synchronized sample sweeps.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/series_buffer.hpp"
#include "store/tsdb.hpp"

namespace hpcmon::viz {

/// One component's value at a given instant (drill-down row).
struct ComponentValue {
  core::ComponentId component = core::kNoComponent;
  std::string name;
  double value = 0.0;
  core::TimePoint time = 0;  // actual sample time used
};

/// Cross-component aggregate at each synchronized timestamp: for every sweep
/// time in `range`, aggregate metric@component over `components`.
/// Returns a single series (Fig 4 top panel, Fig 1's mean utilization).
std::vector<core::TimedValue> aggregate_across(
    const store::TimeSeriesStore& store, core::MetricRegistry& registry,
    std::string_view metric_name,
    const std::vector<core::ComponentId>& components,
    const core::TimeRange& range, store::Agg agg);

/// Fraction of components whose value satisfies `predicate`, per timestamp
/// ("percentage of components in a state").
std::vector<core::TimedValue> fraction_in_state(
    const store::TimeSeriesStore& store, core::MetricRegistry& registry,
    std::string_view metric_name,
    const std::vector<core::ComponentId>& components,
    const core::TimeRange& range,
    const std::function<bool(double)>& predicate);

/// Per-component values at (or at the latest sample not after) time `at`,
/// sorted descending — the drill-down table under an aggregate spike.
std::vector<ComponentValue> breakdown_at(
    const store::TimeSeriesStore& store, core::MetricRegistry& registry,
    std::string_view metric_name,
    const std::vector<core::ComponentId>& components, core::TimePoint at,
    core::Duration lookback);

}  // namespace hpcmon::viz
