// Data export: aligned multi-series CSV (Fig 5's "download ... the raw data
// for further investigation").
#pragma once

#include <string>
#include <vector>

#include "viz/chart.hpp"

namespace hpcmon::viz {

/// Render series as CSV with a shared time column. Rows are the union of all
/// timestamps; a series without a sample at a timestamp gets an empty field.
/// Header: time_s,<label1>,<label2>,...
std::string export_csv(const std::vector<ChartSeries>& series);

}  // namespace hpcmon::viz
