#include "viz/fleet.hpp"

#include "core/strings.hpp"
#include "core/topo_path.hpp"

namespace hpcmon::viz {

namespace {
std::string stat_row(std::string_view label, const rollup::RollupStat* s) {
  if (s == nullptr || s->empty()) {
    return core::strformat("  %-10.*s (no data)\n",
                           static_cast<int>(label.size()), label.data());
  }
  const double mean = s->sum / static_cast<double>(s->count);
  return core::strformat(
      "  %-10.*s n=%-6llu mean=%-10.4g min=%-10.4g max=%-10.4g last=%.4g\n",
      static_cast<int>(label.size()), label.data(),
      static_cast<unsigned long long>(s->count), mean, s->min, s->max,
      s->last);
}
}  // namespace

std::string fleet_glance(const sim::Topology& topo,
                         const rollup::RollupSnapshot& snap,
                         const std::vector<std::string_view>& metrics,
                         const FleetGlanceOptions& options) {
  std::string out;
  if (!options.title.empty()) {
    out += core::strformat("%s (rollup v%llu)\n", options.title.c_str(),
                           static_cast<unsigned long long>(snap.version()));
  }
  for (const auto metric : metrics) {
    out += core::strformat("metric %.*s\n", static_cast<int>(metric.size()),
                           metric.data());
    out += stat_row("system", snap.find(topo.system(), metric));
    if (!options.per_cabinet) continue;
    for (int cab = 0; cab < topo.num_cabinets(); ++cab) {
      core::TopoPath path;
      path.cabinet = cab;
      out += stat_row(path.format(), snap.find(topo.cabinet(cab), metric));
    }
  }
  return out;
}

}  // namespace hpcmon::viz
