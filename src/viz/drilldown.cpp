#include "viz/drilldown.hpp"

#include <algorithm>

namespace hpcmon::viz {

DrillDownResult DrillDown::investigate(
    std::string_view metric_name,
    const std::vector<core::ComponentId>& components, core::TimePoint at,
    core::Duration lookback,
    const std::function<int(core::ComponentId)>& component_to_node) const {
  DrillDownResult result;
  result.at = at;
  result.breakdown =
      breakdown_at(store_, registry_, metric_name, components, at, lookback);
  for (const auto& cv : result.breakdown) result.aggregate_value += cv.value;
  if (result.breakdown.empty()) return result;

  // Attribute the top contributor to a job.
  for (const auto& cv : result.breakdown) {
    const int node = component_to_node(cv.component);
    if (node < 0) continue;
    if (auto job = jobs_.job_on_node_at(node, at)) {
      result.responsible_job = job;
      // Sum the share contributed by all of this job's components.
      double share = 0.0;
      for (const auto& other : result.breakdown) {
        const int n2 = component_to_node(other.component);
        if (n2 >= 0 && std::find(job->nodes.begin(), job->nodes.end(), n2) !=
                           job->nodes.end()) {
          share += other.value;
        }
      }
      result.job_share = result.aggregate_value > 0
                             ? share / result.aggregate_value
                             : 0.0;
      break;
    }
  }
  return result;
}

}  // namespace hpcmon::viz
