// Chart rendering: ASCII (terminal dashboards, bench output) and SVG
// (downloadable plot images, Fig 5's "ability to download the image").
#pragma once

#include <string>
#include <vector>

#include "core/series_buffer.hpp"

namespace hpcmon::viz {

struct ChartSeries {
  std::string label;
  std::vector<core::TimedValue> points;
};

struct ChartOptions {
  int width = 72;    // plot columns (ASCII) / 10px units (SVG)
  int height = 16;   // plot rows
  std::string title;
  std::string y_label;
  bool y_from_zero = true;
};

/// Render series as an ASCII line chart; multiple series use distinct glyphs
/// ('*', '+', 'o', 'x'). Includes y-axis labels and a time footer.
std::string render_ascii(const std::vector<ChartSeries>& series,
                         const ChartOptions& options);

/// Render series as a standalone SVG document (polylines + axes).
std::string render_svg(const std::vector<ChartSeries>& series,
                       const ChartOptions& options);

}  // namespace hpcmon::viz
