// Dashboard model: named panels bound to data queries, rendered on demand.
//
// "Dashboards for visualization of status are a common practice across
// sites. Grafana is currently a popular first order solution, due to its
// ease of configuration, ability to graph live data, and ability to copy and
// share dashboard configurations." (Sec. III-B). Dashboard is the
// library-level equivalent: panels are closures over live stores, render()
// re-evaluates them, and describe() serializes the configuration so it can
// be copied between deployments.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "viz/chart.hpp"
#include "viz/export.hpp"

namespace hpcmon::viz {

class Dashboard {
 public:
  using PanelQuery = std::function<std::vector<ChartSeries>()>;

  explicit Dashboard(std::string title) : title_(std::move(title)) {}

  /// Add a panel; the query is re-run on every render (live data).
  void add_panel(std::string name, PanelQuery query, ChartOptions options = {});

  std::size_t panel_count() const { return panels_.size(); }
  const std::string& title() const { return title_; }

  /// Render all panels as ASCII.
  std::string render() const;
  /// Render one panel as SVG.
  std::string render_panel_svg(std::size_t index) const;
  /// Raw data of one panel as CSV (the Fig 5 download path).
  std::string panel_csv(std::size_t index) const;
  /// Serializable configuration: panel names and options (shareable config).
  std::string describe() const;

 private:
  struct Panel {
    std::string name;
    PanelQuery query;
    ChartOptions options;
  };
  std::string title_;
  std::vector<Panel> panels_;
};

}  // namespace hpcmon::viz
