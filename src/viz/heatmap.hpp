// Architecture-context heatmaps.
//
// Sec. III-B: "Representations in the context of the architecture, such as
// network-topology representations, are being developed by sites and others
// ... however visualization of complex connectivities is a challenge."
// Two renderers:
//  * machine_heatmap: the physical layout view — one cell per node, arranged
//    cabinet/chassis/slot the way the machine stands on the floor, intensity
//    from a per-node value (DragonView-style at-a-glance state).
//  * router_grid_heatmap: the torus (x, y, z) router grid with a per-router
//    value (e.g. max outgoing link stall) — the congestion-region view.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "rollup/tree.hpp"
#include "sim/topology.hpp"

namespace hpcmon::viz {

struct HeatmapOptions {
  std::string title;
  /// Value mapped to the lowest intensity glyph; values at or above
  /// `scale_max` use the highest. When scale_max <= scale_min the scale is
  /// derived from the data.
  double scale_min = 0.0;
  double scale_max = 0.0;
};

/// Per-node value -> physical layout heatmap. `value(node_index)` is called
/// once per node; NaN renders as '?' (no data).
std::string machine_heatmap(const sim::Topology& topo,
                            const std::function<double(int)>& value,
                            const HeatmapOptions& options);

/// Same layout, fed from a rollup snapshot instead of store queries: each
/// node cell renders the node level's `last` for `metric` (O(1) lookups on
/// an immutable snapshot — zero store scatter-gather). Absent/retracted
/// nodes render as '?'.
std::string machine_heatmap(const sim::Topology& topo,
                            const rollup::RollupSnapshot& snap,
                            std::string_view metric,
                            const HeatmapOptions& options);

/// Per-router value -> torus x/y grid per z-plane (dragonfly machines render
/// as group rows). `value(router)` called once per router.
std::string router_grid_heatmap(const sim::Topology& topo,
                                const std::function<double(int)>& value,
                                const HeatmapOptions& options);

}  // namespace hpcmon::viz
