// "The fleet at a glance": the paper's Fig 1/Fig 3 products (system-wide
// utilization, per-cabinet power) as one text report, answered entirely from
// a RollupSnapshot — O(cabinets) lookups on an immutable snapshot, zero
// store queries. The old path fanned a 20k-series scatter-gather across the
// store for every dashboard refresh; the rollup tree maintained these very
// reductions at ingest, so the report is just a read-out.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "rollup/tree.hpp"
#include "sim/topology.hpp"

namespace hpcmon::viz {

struct FleetGlanceOptions {
  std::string title = "fleet at a glance";
  /// Also print one row per cabinet under each metric's system row.
  bool per_cabinet = true;
};

/// One section per metric: the system-level stat row, then (optionally) a
/// row per cabinet. Metrics absent from the snapshot render an "(no data)"
/// row so a misspelled metric is visible instead of silently blank.
std::string fleet_glance(const sim::Topology& topo,
                         const rollup::RollupSnapshot& snap,
                         const std::vector<std::string_view>& metrics,
                         const FleetGlanceOptions& options = {});

}  // namespace hpcmon::viz
