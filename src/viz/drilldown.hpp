// Drill-down: aggregate anomaly -> per-component breakdown -> owning job.
//
// Fig 4 (NCSA): "high values of system aggregate I/O metrics (top) drives
// further investigation into the nodes, and hence, the job responsible for
// the I/O." DrillDown packages that three-step investigation as one query.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "store/jobstore.hpp"
#include "viz/query.hpp"

namespace hpcmon::viz {

struct DrillDownResult {
  core::TimePoint at = 0;
  double aggregate_value = 0.0;
  /// Per-component values, descending (the middle panel).
  std::vector<ComponentValue> breakdown;
  /// Job owning the top contributor at that instant, when resolvable.
  std::optional<store::JobMeta> responsible_job;
  /// Fraction of the aggregate contributed by that job's components.
  double job_share = 0.0;
};

class DrillDown {
 public:
  DrillDown(const store::TimeSeriesStore& store, core::MetricRegistry& registry,
            const store::JobStore& jobs)
      : store_(store), registry_(registry), jobs_(jobs) {}

  /// Investigate `metric_name` summed over `components` at time `at`.
  /// `component_to_node` maps a component to its node index for job lookup
  /// (return -1 when the component is not node-attributable).
  DrillDownResult investigate(
      std::string_view metric_name,
      const std::vector<core::ComponentId>& components, core::TimePoint at,
      core::Duration lookback,
      const std::function<int(core::ComponentId)>& component_to_node) const;

 private:
  const store::TimeSeriesStore& store_;
  core::MetricRegistry& registry_;
  const store::JobStore& jobs_;
};

}  // namespace hpcmon::viz
