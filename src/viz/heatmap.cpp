#include "viz/heatmap.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/strings.hpp"
#include "core/topo_path.hpp"

namespace hpcmon::viz {

namespace {
// 10-step intensity ramp, low to high.
constexpr char kRamp[] = " .:-=+*%#@";

char glyph(double v, double lo, double hi) {
  if (std::isnan(v)) return '?';
  if (hi <= lo) return kRamp[0];
  const double t = std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
  const int idx = std::min(9, static_cast<int>(t * 10.0));
  return kRamp[idx];
}

// Derive the scale from data when the caller didn't fix one.
void derive_scale(const std::vector<double>& values, HeatmapOptions& opt) {
  if (opt.scale_max > opt.scale_min) return;
  bool any = false;
  double lo = 0.0;
  double hi = 1.0;
  for (const double v : values) {
    if (std::isnan(v)) continue;
    if (!any) {
      lo = hi = v;
      any = true;
    } else {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  opt.scale_min = lo;
  opt.scale_max = hi > lo ? hi : lo + 1.0;
}

std::string legend(const HeatmapOptions& opt) {
  return core::strformat("scale: '%c'=%.3g .. '%c'=%.3g\n", kRamp[0],
                         opt.scale_min, kRamp[9], opt.scale_max);
}
}  // namespace

std::string machine_heatmap(const sim::Topology& topo,
                            const std::function<double(int)>& value,
                            const HeatmapOptions& options) {
  HeatmapOptions opt = options;
  std::vector<double> values(topo.num_nodes());
  for (int i = 0; i < topo.num_nodes(); ++i) values[i] = value(i);
  derive_scale(values, opt);

  std::string out;
  if (!opt.title.empty()) out += opt.title + "\n";
  const auto& shape = topo.shape();
  const core::TopoPath::Dims dims{shape.chassis_per_cabinet,
                                  shape.blades_per_chassis,
                                  shape.nodes_per_blade};
  // One row per (cabinet, chassis); columns are slot-major with the blade's
  // nodes side by side, cabinets separated by a blank column.
  for (int ch = shape.chassis_per_cabinet - 1; ch >= 0; --ch) {
    out += core::strformat("c%-2d |", ch);
    for (int cab = 0; cab < shape.cabinets; ++cab) {
      for (int s = 0; s < shape.blades_per_chassis; ++s) {
        for (int n = 0; n < shape.nodes_per_blade; ++n) {
          core::TopoPath cell;
          cell.cabinet = cab;
          cell.chassis = ch;
          cell.slot = s;
          cell.node = n;
          out += glyph(values[cell.node_index(dims)], opt.scale_min,
                       opt.scale_max);
        }
      }
      out += '|';
    }
    out += '\n';
  }
  out += "     ";
  for (int cab = 0; cab < shape.cabinets; ++cab) {
    const int width = shape.blades_per_chassis * shape.nodes_per_blade;
    core::TopoPath cpath;
    cpath.cabinet = cab;
    auto label = cpath.format();
    label.resize(static_cast<std::size_t>(width), ' ');
    out += ' ' + label;
  }
  out += '\n' + legend(opt);
  return out;
}

std::string machine_heatmap(const sim::Topology& topo,
                            const rollup::RollupSnapshot& snap,
                            std::string_view metric,
                            const HeatmapOptions& options) {
  return machine_heatmap(
      topo,
      [&](int node) {
        const auto* s = snap.find(topo.node(node), metric);
        if (s == nullptr || s->empty()) {
          return std::numeric_limits<double>::quiet_NaN();
        }
        return s->last;
      },
      options);
}

std::string router_grid_heatmap(const sim::Topology& topo,
                                const std::function<double(int)>& value,
                                const HeatmapOptions& options) {
  HeatmapOptions opt = options;
  std::vector<double> values(topo.num_routers());
  for (int r = 0; r < topo.num_routers(); ++r) values[r] = value(r);
  derive_scale(values, opt);

  std::string out;
  if (!opt.title.empty()) out += opt.title + "\n";
  if (topo.fabric_kind() == sim::FabricKind::kTorus3D) {
    const int x_dim = topo.shape().blades_per_chassis;
    const int y_dim = topo.shape().chassis_per_cabinet;
    const int z_dim = topo.shape().cabinets;
    for (int z = 0; z < z_dim; ++z) {
      out += core::strformat("z=%d (cabinet c%d-0)\n", z, z);
      for (int y = y_dim - 1; y >= 0; --y) {
        out += core::strformat("  y%-2d ", y);
        for (int x = 0; x < x_dim; ++x) {
          const int r = x + x_dim * (y + y_dim * z);
          out += glyph(values[r], opt.scale_min, opt.scale_max);
        }
        out += '\n';
      }
    }
  } else {
    // Dragonfly: one row per group.
    const int per_group =
        topo.shape().chassis_per_cabinet * topo.shape().blades_per_chassis;
    for (int g = 0; g < topo.shape().cabinets; ++g) {
      out += core::strformat("group %d ", g);
      for (int i = 0; i < per_group; ++i) {
        out += glyph(values[g * per_group + i], opt.scale_min, opt.scale_max);
      }
      out += '\n';
    }
  }
  out += legend(opt);
  return out;
}

}  // namespace hpcmon::viz
