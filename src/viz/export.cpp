#include "viz/export.hpp"

#include <map>

#include "core/csv.hpp"
#include "core/time.hpp"

namespace hpcmon::viz {

std::string export_csv(const std::vector<ChartSeries>& series) {
  // Union of timestamps -> per-series value.
  std::map<core::TimePoint, std::vector<std::pair<bool, double>>> rows;
  for (std::size_t si = 0; si < series.size(); ++si) {
    for (const auto& p : series[si].points) {
      auto& row = rows[p.time];
      if (row.size() < series.size()) row.resize(series.size(), {false, 0.0});
      row[si] = {true, p.value};
    }
  }
  core::CsvWriter csv;
  csv.field("time_s");
  for (const auto& s : series) csv.field(s.label);
  csv.end_row();
  for (const auto& [t, row] : rows) {
    csv.number(core::to_seconds(t));
    for (std::size_t si = 0; si < series.size(); ++si) {
      if (si < row.size() && row[si].first) {
        csv.number(row[si].second);
      } else {
        csv.field("");
      }
    }
    csv.end_row();
  }
  return csv.str();
}

}  // namespace hpcmon::viz
