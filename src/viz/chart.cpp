#include "viz/chart.hpp"

#include <algorithm>
#include <cmath>

#include "core/strings.hpp"
#include "core/time.hpp"

namespace hpcmon::viz {

namespace {

struct Extent {
  core::TimePoint t_min = 0, t_max = 0;
  double v_min = 0.0, v_max = 1.0;
  bool valid = false;
};

Extent compute_extent(const std::vector<ChartSeries>& series,
                      bool y_from_zero) {
  Extent e;
  for (const auto& s : series) {
    for (const auto& p : s.points) {
      if (!e.valid) {
        e.t_min = e.t_max = p.time;
        e.v_min = e.v_max = p.value;
        e.valid = true;
      } else {
        e.t_min = std::min(e.t_min, p.time);
        e.t_max = std::max(e.t_max, p.time);
        e.v_min = std::min(e.v_min, p.value);
        e.v_max = std::max(e.v_max, p.value);
      }
    }
  }
  if (y_from_zero && e.v_min > 0.0) e.v_min = 0.0;
  if (e.v_max == e.v_min) e.v_max = e.v_min + 1.0;
  if (e.t_max == e.t_min) e.t_max = e.t_min + 1;
  return e;
}

constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@'};

}  // namespace

std::string render_ascii(const std::vector<ChartSeries>& series,
                         const ChartOptions& options) {
  const Extent e = compute_extent(series, options.y_from_zero);
  std::string out;
  if (!options.title.empty()) out += options.title + "\n";
  if (!e.valid) return out + "(no data)\n";

  const int w = std::max(8, options.width);
  const int h = std::max(4, options.height);
  std::vector<std::string> grid(h, std::string(w, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    for (const auto& p : series[si].points) {
      const int col = static_cast<int>(
          static_cast<double>(p.time - e.t_min) /
          static_cast<double>(e.t_max - e.t_min) * (w - 1));
      const int row = static_cast<int>(
          (p.value - e.v_min) / (e.v_max - e.v_min) * (h - 1));
      grid[h - 1 - std::clamp(row, 0, h - 1)][std::clamp(col, 0, w - 1)] =
          glyph;
    }
  }
  for (int r = 0; r < h; ++r) {
    const double v = e.v_max - (e.v_max - e.v_min) * r / (h - 1);
    out += core::strformat("%10.3g |", v);
    out += grid[r];
    out += '\n';
  }
  out += std::string(11, ' ') + '+' + std::string(w, '-') + '\n';
  out += core::strformat("%12s%s ... %s", "",
                         core::format_time(e.t_min).c_str(),
                         core::format_time(e.t_max).c_str());
  out += '\n';
  for (std::size_t si = 0; si < series.size(); ++si) {
    out += core::strformat("  %c %s", kGlyphs[si % sizeof(kGlyphs)],
                           series[si].label.c_str());
    out += '\n';
  }
  return out;
}

std::string render_svg(const std::vector<ChartSeries>& series,
                       const ChartOptions& options) {
  const Extent e = compute_extent(series, options.y_from_zero);
  const int w = options.width * 10;
  const int h = options.height * 10;
  const int margin = 40;
  std::string out = core::strformat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\">\n",
      w + 2 * margin, h + 2 * margin);
  out += core::strformat(
      "<text x=\"%d\" y=\"16\" font-size=\"13\">%s</text>\n", margin,
      options.title.c_str());
  out += core::strformat(
      "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"none\" "
      "stroke=\"black\"/>\n",
      margin, margin, w, h);
  static const char* kColors[] = {"#1f77b4", "#d62728", "#2ca02c",
                                  "#ff7f0e", "#9467bd", "#8c564b"};
  for (std::size_t si = 0; si < series.size() && e.valid; ++si) {
    std::string pts;
    for (const auto& p : series[si].points) {
      const double x = margin + static_cast<double>(p.time - e.t_min) /
                                    static_cast<double>(e.t_max - e.t_min) * w;
      const double y =
          margin + h - (p.value - e.v_min) / (e.v_max - e.v_min) * h;
      pts += core::strformat("%.1f,%.1f ", x, y);
    }
    out += core::strformat(
        "<polyline fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\" "
        "points=\"%s\"/>\n",
        kColors[si % 6], pts.c_str());
    out += core::strformat(
        "<text x=\"%d\" y=\"%zu\" font-size=\"11\" fill=\"%s\">%s</text>\n",
        margin + w + 4, margin + 14 * (si + 1), kColors[si % 6],
        series[si].label.c_str());
  }
  out += core::strformat(
      "<text x=\"%d\" y=\"%d\" font-size=\"11\">%s</text>\n", 4,
      margin + h / 2, options.y_label.c_str());
  out += "</svg>\n";
  return out;
}

}  // namespace hpcmon::viz
