#include "viz/dashboard.hpp"

#include "core/strings.hpp"

namespace hpcmon::viz {

void Dashboard::add_panel(std::string name, PanelQuery query,
                          ChartOptions options) {
  if (options.title.empty()) options.title = name;
  panels_.push_back({std::move(name), std::move(query), std::move(options)});
}

std::string Dashboard::render() const {
  std::string out = "==== " + title_ + " ====\n";
  for (const auto& p : panels_) {
    out += render_ascii(p.query(), p.options);
    out += '\n';
  }
  return out;
}

std::string Dashboard::render_panel_svg(std::size_t index) const {
  const auto& p = panels_.at(index);
  return render_svg(p.query(), p.options);
}

std::string Dashboard::panel_csv(std::size_t index) const {
  const auto& p = panels_.at(index);
  return export_csv(p.query());
}

std::string Dashboard::describe() const {
  std::string out = core::strformat("dashboard \"%s\" (%zu panels)\n",
                                    title_.c_str(), panels_.size());
  for (const auto& p : panels_) {
    out += core::strformat("  panel \"%s\" %dx%d y_label=%s\n", p.name.c_str(),
                           p.options.width, p.options.height,
                           p.options.y_label.c_str());
  }
  return out;
}

}  // namespace hpcmon::viz
