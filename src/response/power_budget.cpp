#include "response/power_budget.hpp"

#include <algorithm>

#include "core/strings.hpp"

namespace hpcmon::response {

PowerRecommendation PowerBudgetWatcher::update(core::TimePoint t,
                                               double system_power_w) {
  PowerRecommendation rec;
  rec.time = t;
  rec.draw_w = system_power_w;
  const double headroom = params_.budget_w - system_power_w;
  rec.exportable_w =
      std::max(0.0, headroom * params_.headroom_export_fraction);

  if (system_power_w > params_.budget_w) {
    ++over_;
    alerts_.raise({t, AlertSeverity::kCritical, "power.over_budget",
                   core::kNoComponent,
                   core::strformat("draw %.0f W exceeds budget %.0f W",
                                   system_power_w, params_.budget_w)});
  } else if (system_power_w > params_.budget_w * params_.warn_fraction) {
    alerts_.raise({t, AlertSeverity::kWarning, "power.near_budget",
                   core::kNoComponent,
                   core::strformat("draw %.0f W is %.0f%% of budget",
                                   system_power_w,
                                   100.0 * system_power_w / params_.budget_w)});
  }
  return rec;
}

}  // namespace hpcmon::response
