#include "response/gate.hpp"

namespace hpcmon::response {

void HealthGate::attach(bool pre, bool post) {
  if (pre) {
    cluster_.scheduler().set_pre_job_check([this](int node) {
      ++stats_.pre_checks;
      const bool ok = cluster_.gpus().run_diagnostic(node);
      if (!ok) {
        ++stats_.pre_failures;
        quarantine_and_repair(node);
      }
      return ok;
    });
  }
  if (post) {
    cluster_.scheduler().set_post_job_check([this](int node) {
      ++stats_.post_checks;
      const bool ok = cluster_.gpus().run_diagnostic(node);
      if (!ok) {
        ++stats_.post_failures;
        quarantine_and_repair(node);
      }
      return ok;
    });
  }
}

void HealthGate::quarantine_and_repair(int node) {
  // The scheduler already marks the node unavailable when a gate fails;
  // schedule the repair that brings it back.
  cluster_.events().schedule_at(
      cluster_.now() + repair_time_, [this, node](core::TimePoint) {
        cluster_.gpus().repair(node);
        cluster_.scheduler().set_node_available(node, true);
        ++stats_.repairs;
      });
}

}  // namespace hpcmon::response
