// Alerting: dedup, escalation, routing.
//
// Sec. III-C: "Responses are typically simple - such as issuing an alert or
// marking a node as down" and Table I (Response): "reporting and alerting
// capabilities should be easily configurable ... triggered based on
// arbitrary locations in the data and analysis pathways." AlertManager is
// the single funnel: anything (rule engine, detectors, probes, gates) raises
// an Alert; dedup keeps storms quiet; repeated raises escalate severity;
// sinks fan alerts out to consumers.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/time.hpp"

namespace hpcmon::response {

enum class AlertSeverity : std::uint8_t { kInfo, kWarning, kCritical, kPage };

std::string_view to_string(AlertSeverity severity);

struct Alert {
  core::TimePoint time = 0;
  AlertSeverity severity = AlertSeverity::kWarning;
  /// Dedup key: identical keys within the dedup window are merged.
  std::string key;
  core::ComponentId component = core::kNoComponent;
  std::string message;
  std::uint32_t occurrences = 1;  // merged raise count
};

struct AlertPolicy {
  /// Re-raises of the same key within this window merge into one alert.
  core::Duration dedup_window = 5 * core::kMinute;
  /// Escalate one severity level after this many merged occurrences.
  std::uint32_t escalate_after = 5;
};

class AlertManager {
 public:
  explicit AlertManager(const AlertPolicy& policy = {}) : policy_(policy) {}

  using Sink = std::function<void(const Alert&)>;
  /// Sinks receive every *delivered* (non-deduplicated) alert.
  void add_sink(Sink sink) { sinks_.push_back(std::move(sink)); }

  /// Raise an alert; returns true when it was delivered (not deduplicated).
  bool raise(Alert alert);

  /// Mark a key resolved: clears dedup state and the active list.
  void resolve(const std::string& key, core::TimePoint now);

  /// Alerts raised and not yet resolved, most severe first.
  std::vector<Alert> active() const;
  std::uint64_t raised_total() const { return raised_; }
  std::uint64_t delivered_total() const { return delivered_; }
  std::uint64_t suppressed_total() const { return raised_ - delivered_; }

 private:
  AlertPolicy policy_;
  std::vector<Sink> sinks_;
  std::map<std::string, Alert> active_;  // by key
  std::uint64_t raised_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace hpcmon::response
