#include "response/alerts.hpp"

#include <algorithm>

namespace hpcmon::response {

std::string_view to_string(AlertSeverity severity) {
  switch (severity) {
    case AlertSeverity::kInfo: return "info";
    case AlertSeverity::kWarning: return "warning";
    case AlertSeverity::kCritical: return "critical";
    case AlertSeverity::kPage: return "page";
  }
  return "?";
}

bool AlertManager::raise(Alert alert) {
  ++raised_;
  auto it = active_.find(alert.key);
  if (it != active_.end() &&
      alert.time - it->second.time < policy_.dedup_window) {
    // Merge into the active alert; maybe escalate.
    auto& existing = it->second;
    existing.occurrences += 1;
    if (existing.occurrences >= policy_.escalate_after &&
        existing.severity < AlertSeverity::kPage) {
      existing.severity =
          static_cast<AlertSeverity>(static_cast<int>(existing.severity) + 1);
      existing.occurrences = 1;  // escalation resets the counter
      existing.time = alert.time;
      ++delivered_;
      for (const auto& sink : sinks_) sink(existing);
      return true;
    }
    return false;
  }
  active_[alert.key] = alert;
  ++delivered_;
  for (const auto& sink : sinks_) sink(alert);
  return true;
}

void AlertManager::resolve(const std::string& key, core::TimePoint) {
  active_.erase(key);
}

std::vector<Alert> AlertManager::active() const {
  std::vector<Alert> out;
  out.reserve(active_.size());
  for (const auto& [key, a] : active_) out.push_back(a);
  std::sort(out.begin(), out.end(), [](const Alert& a, const Alert& b) {
    return a.severity > b.severity;
  });
  return out;
}

}  // namespace hpcmon::response
