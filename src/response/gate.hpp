// HealthGate: the CSCS pre/post-job gating policy as a deployable unit.
//
// "No job should start on a node with a problem, and a problem should only
// be encountered by at most one batch job - the job that was running when
// the problem first occurred. ... the test suite is run before and after
// each job. If the pre-job health assessment fails another node is chosen
// and the problem node taken out of service for further testing and possible
// repair." (Sec. II.5). attach() installs the gates on the scheduler and a
// repair loop that returns quarantined nodes to service after repair_time.
#pragma once

#include <cstdint>

#include "sim/cluster.hpp"

namespace hpcmon::response {

struct GateStats {
  std::uint64_t pre_checks = 0;
  std::uint64_t pre_failures = 0;   // nodes quarantined before a job started
  std::uint64_t post_checks = 0;
  std::uint64_t post_failures = 0;  // nodes quarantined after a job ended
  std::uint64_t repairs = 0;
};

class HealthGate {
 public:
  HealthGate(sim::Cluster& cluster, core::Duration repair_time)
      : cluster_(cluster), repair_time_(repair_time) {}

  /// Install pre- and/or post-job GPU diagnostics on the scheduler.
  void attach(bool pre, bool post);

  const GateStats& stats() const { return stats_; }

 private:
  void quarantine_and_repair(int node);

  sim::Cluster& cluster_;
  core::Duration repair_time_;
  GateStats stats_;
};

}  // namespace hpcmon::response
