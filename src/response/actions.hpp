// Automated response actions bound to alert keys.
//
// Sec. III-C: detection typically triggers "issuing an alert or marking a
// node as down"; Table I (Response): "data and analysis results should be
// able to be exposed to applications and system software". ActionDispatcher
// binds alert-key globs to actions (quarantine node, schedule repair,
// notify) and records everything it does — response must be auditable.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "response/alerts.hpp"
#include "sim/cluster.hpp"

namespace hpcmon::response {

struct ActionRecord {
  core::TimePoint time = 0;
  std::string action;
  std::string alert_key;
  core::ComponentId component = core::kNoComponent;
};

class ActionDispatcher {
 public:
  using Action = std::function<void(const Alert&)>;

  /// Bind an action to alerts whose key matches `key_glob` and whose
  /// severity is at least `min_severity`.
  void bind(std::string key_glob, AlertSeverity min_severity,
            std::string action_name, Action action);

  /// Feed a delivered alert (wire this as an AlertManager sink).
  void dispatch(const Alert& alert);

  const std::vector<ActionRecord>& log() const { return log_; }

 private:
  struct Binding {
    std::string key_glob;
    AlertSeverity min_severity;
    std::string name;
    Action action;
  };
  std::vector<Binding> bindings_;
  std::vector<ActionRecord> log_;
};

/// Canonical action: quarantine the alert's node (take it out of scheduling)
/// and schedule its return to service after `repair_time`.
ActionDispatcher::Action make_quarantine_action(sim::Cluster& cluster,
                                                core::Duration repair_time);

/// Canonical action: drain the alert's node — kill the job holding it
/// (requeueing a fresh copy when `requeue`), then quarantine + repair. The
/// response to a wedged node that would otherwise stall its job forever.
ActionDispatcher::Action make_drain_action(sim::Cluster& cluster,
                                           core::Duration repair_time,
                                           bool requeue = true);

}  // namespace hpcmon::response
