#include "response/actions.hpp"

#include "core/strings.hpp"

namespace hpcmon::response {

void ActionDispatcher::bind(std::string key_glob, AlertSeverity min_severity,
                            std::string action_name, Action action) {
  bindings_.push_back({std::move(key_glob), min_severity,
                       std::move(action_name), std::move(action)});
}

void ActionDispatcher::dispatch(const Alert& alert) {
  for (const auto& b : bindings_) {
    if (alert.severity < b.min_severity) continue;
    if (!core::glob_match(b.key_glob, alert.key)) continue;
    b.action(alert);
    log_.push_back({alert.time, b.name, alert.key, alert.component});
  }
}

ActionDispatcher::Action make_quarantine_action(sim::Cluster& cluster,
                                                core::Duration repair_time) {
  return [&cluster, repair_time](const Alert& alert) {
    const int node = cluster.topology().node_index(alert.component);
    if (node < 0) return;
    cluster.scheduler().set_node_available(node, false);
    cluster.events().schedule_at(
        alert.time + repair_time, [&cluster, node](core::TimePoint) {
          cluster.gpus().repair(node);
          cluster.scheduler().set_node_available(node, true);
        });
  };
}

ActionDispatcher::Action make_drain_action(sim::Cluster& cluster,
                                           core::Duration repair_time,
                                           bool requeue) {
  auto quarantine = make_quarantine_action(cluster, repair_time);
  return [&cluster, quarantine, requeue](const Alert& alert) {
    const int node = cluster.topology().node_index(alert.component);
    if (node < 0) return;
    cluster.fail_job_on_node(node, requeue);
    quarantine(alert);
  };
}

}  // namespace hpcmon::response
