// Power-budget watcher (KAUST, Sec. II.7; Sec. III-C's envisioned
// "redirection of power between platforms").
//
// Tracks system draw against a site budget; raises alerts as draw approaches
// or exceeds budget and recommends a per-platform redirection (headroom
// export) the site's facility layer could act on.
#pragma once

#include <optional>
#include <string>

#include "response/alerts.hpp"

namespace hpcmon::response {

struct PowerBudgetParams {
  double budget_w = 0.0;         // site allocation for this platform
  double warn_fraction = 0.90;   // alert at 90% of budget
  double headroom_export_fraction = 0.50;  // export half the unused headroom
};

struct PowerRecommendation {
  core::TimePoint time = 0;
  double draw_w = 0.0;
  /// Watts this platform could lend to other site resources right now.
  double exportable_w = 0.0;
};

class PowerBudgetWatcher {
 public:
  PowerBudgetWatcher(const PowerBudgetParams& params, AlertManager& alerts)
      : params_(params), alerts_(alerts) {}

  /// Feed one system-power sample; returns the current recommendation.
  PowerRecommendation update(core::TimePoint t, double system_power_w);

  std::uint64_t over_budget_samples() const { return over_; }

 private:
  PowerBudgetParams params_;
  AlertManager& alerts_;
  std::uint64_t over_ = 0;
};

}  // namespace hpcmon::response
