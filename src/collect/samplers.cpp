#include "collect/samplers.hpp"

namespace hpcmon::collect {

using core::ComponentId;
using core::MetricInfo;
using core::SampleBatch;
using core::SeriesId;
using core::TimePoint;

namespace {
std::uint32_t metric(core::MetricRegistry& reg, const char* name,
                     const char* units, const char* desc,
                     bool counter = false) {
  return reg.register_metric({name, units, desc, counter});
}
}  // namespace

// -- NodeSampler --------------------------------------------------------------

NodeSampler::NodeSampler(sim::Cluster& cluster, bool stamp_local_clock)
    : cluster_(cluster), stamp_local_(stamp_local_clock) {
  auto& reg = cluster.registry();
  const auto& topo = cluster.topology();
  const auto m_cpu = metric(reg, "node.cpu_util", "fraction",
                            "busy fraction of the node's cores");
  const auto m_mem = metric(reg, "node.mem_free_gb", "GiB",
                            "free memory available to applications");
  const auto m_rd = metric(reg, "node.read_mbps", "MB/s",
                           "filesystem read traffic issued by this node");
  const auto m_wr = metric(reg, "node.write_mbps", "MB/s",
                           "filesystem write traffic issued by this node");
  for (int i = 0; i < topo.num_nodes(); ++i) {
    const auto c = topo.node(i);
    cpu_.push_back(reg.series(m_cpu, c));
    mem_free_.push_back(reg.series(m_mem, c));
    read_.push_back(reg.series(m_rd, c));
    write_.push_back(reg.series(m_wr, c));
  }
}

void NodeSampler::sample(TimePoint sweep_time, SampleBatch& out) {
  const auto& topo = cluster_.topology();
  for (int i = 0; i < topo.num_nodes(); ++i) {
    const TimePoint t =
        stamp_local_ ? cluster_.node_local_time(i) : sweep_time;
    const auto& n = cluster_.node_state(i);
    out.samples.push_back({cpu_[i], t, n.cpu_util});
    out.samples.push_back({mem_free_[i], t, cluster_.node_mem_free_gb(i)});
    out.samples.push_back({read_[i], t, n.read_mbps});
    out.samples.push_back({write_[i], t, n.write_mbps});
  }
}

// -- PowerSampler -------------------------------------------------------------

PowerSampler::PowerSampler(sim::Cluster& cluster) : cluster_(cluster) {
  auto& reg = cluster.registry();
  const auto& topo = cluster.topology();
  const auto m_np = metric(reg, "power.node_w", "W", "instantaneous node draw");
  const auto m_cp =
      metric(reg, "power.cabinet_w", "W", "cabinet draw incl. blowers");
  const auto m_ct =
      metric(reg, "power.cabinet_temp_c", "degC", "cabinet outlet temperature");
  for (int i = 0; i < topo.num_nodes(); ++i) {
    node_power_.push_back(reg.series(m_np, topo.node(i)));
  }
  for (int c = 0; c < topo.num_cabinets(); ++c) {
    cabinet_power_.push_back(reg.series(m_cp, topo.cabinet(c)));
    cabinet_temp_.push_back(reg.series(m_ct, topo.cabinet(c)));
  }
  system_power_ = reg.series(
      metric(reg, "power.system_w", "W", "whole-machine draw"), topo.system());
  energy_ = reg.series(metric(reg, "power.energy_j", "J",
                              "cumulative machine energy", true),
                       topo.system());
}

void PowerSampler::sample(TimePoint t, SampleBatch& out) {
  const auto& topo = cluster_.topology();
  auto& pw = cluster_.power();
  for (int i = 0; i < topo.num_nodes(); ++i) {
    out.samples.push_back({node_power_[i], t, pw.node_power_w(i)});
  }
  for (int c = 0; c < topo.num_cabinets(); ++c) {
    out.samples.push_back({cabinet_power_[c], t, pw.cabinet_power_w(c)});
    out.samples.push_back({cabinet_temp_[c], t, pw.cabinet_temp_c(c)});
  }
  out.samples.push_back({system_power_, t, pw.system_power_w()});
  out.samples.push_back({energy_, t, pw.energy_joules()});
}

// -- HsnSampler ---------------------------------------------------------------

HsnSampler::HsnSampler(sim::Cluster& cluster) : cluster_(cluster) {
  auto& reg = cluster.registry();
  const auto& topo = cluster.topology();
  const auto m_tr = metric(reg, "hsn.link.traffic_bytes", "bytes",
                           "cumulative bytes carried by the link", true);
  const auto m_st = metric(reg, "hsn.link.stalls", "events",
                           "cumulative credit-stall events", true);
  const auto m_be = metric(reg, "hsn.link.bit_errors", "errors",
                           "cumulative corrected bit errors", true);
  for (int l = 0; l < topo.num_links(); ++l) {
    const auto c = topo.link(l).component;
    traffic_.push_back(reg.series(m_tr, c));
    stalls_.push_back(reg.series(m_st, c));
    bit_errors_.push_back(reg.series(m_be, c));
  }
  const auto m_inj = metric(reg, "hsn.node.injection_util", "fraction",
                            "delivered injection bandwidth / NIC capacity");
  for (int i = 0; i < topo.num_nodes(); ++i) {
    injection_util_.push_back(reg.series(m_inj, topo.node(i)));
  }
}

void HsnSampler::sample(TimePoint t, SampleBatch& out) {
  const auto& topo = cluster_.topology();
  auto& fabric = cluster_.fabric();
  for (int l = 0; l < topo.num_links(); ++l) {
    const auto& s = fabric.link_state(l);
    out.samples.push_back({traffic_[l], t, s.traffic_bytes});
    out.samples.push_back({stalls_[l], t, s.stalls});
    out.samples.push_back({bit_errors_[l], t, s.bit_errors});
  }
  for (int i = 0; i < topo.num_nodes(); ++i) {
    out.samples.push_back(
        {injection_util_[i], t, fabric.node_injection_utilization(i)});
  }
}

// -- FsSampler ----------------------------------------------------------------

FsSampler::FsSampler(sim::Cluster& cluster) : cluster_(cluster) {
  auto& reg = cluster.registry();
  const auto& topo = cluster.topology();
  const auto m_rb = metric(reg, "fs.ost.read_bytes", "bytes",
                           "cumulative bytes read from the OST", true);
  const auto m_wb = metric(reg, "fs.ost.write_bytes", "bytes",
                           "cumulative bytes written to the OST", true);
  const auto m_lat =
      metric(reg, "fs.ost.latency_ms", "ms", "current I/O op latency");
  const auto m_util =
      metric(reg, "fs.ost.util", "fraction", "bandwidth demand / capacity");
  const auto m_mlat =
      metric(reg, "fs.mds.latency_ms", "ms", "current metadata op latency");
  const auto m_mops = metric(reg, "fs.mds.ops", "ops",
                             "cumulative metadata operations served", true);
  for (int f = 0; f < topo.num_filesystems(); ++f) {
    ost_read_bytes_.emplace_back();
    ost_write_bytes_.emplace_back();
    ost_latency_.emplace_back();
    ost_util_.emplace_back();
    for (int o = 0; o < topo.osts_per_fs(); ++o) {
      const auto c = topo.ost(f, o);
      ost_read_bytes_[f].push_back(reg.series(m_rb, c));
      ost_write_bytes_[f].push_back(reg.series(m_wb, c));
      ost_latency_[f].push_back(reg.series(m_lat, c));
      ost_util_[f].push_back(reg.series(m_util, c));
    }
    mds_latency_.push_back(reg.series(m_mlat, topo.mds(f)));
    mds_ops_.push_back(reg.series(m_mops, topo.mds(f)));
  }
}

void FsSampler::sample(TimePoint t, SampleBatch& out) {
  const auto& topo = cluster_.topology();
  auto& fs = cluster_.fs();
  for (int f = 0; f < topo.num_filesystems(); ++f) {
    for (int o = 0; o < topo.osts_per_fs(); ++o) {
      const auto& s = fs.ost_state(f, o);
      out.samples.push_back({ost_read_bytes_[f][o], t, s.read_bytes});
      out.samples.push_back({ost_write_bytes_[f][o], t, s.write_bytes});
      out.samples.push_back({ost_latency_[f][o], t, s.latency_ms});
      out.samples.push_back({ost_util_[f][o], t, s.utilization});
    }
    out.samples.push_back({mds_latency_[f], t, fs.mds_state(f).latency_ms});
    out.samples.push_back({mds_ops_[f], t, fs.mds_state(f).ops});
  }
}

// -- GpuSampler ---------------------------------------------------------------

GpuSampler::GpuSampler(sim::Cluster& cluster) : cluster_(cluster) {
  auto& reg = cluster.registry();
  const auto& topo = cluster.topology();
  const auto m_h = metric(reg, "gpu.health", "state",
                          "0=ok 1=degraded 2=failed (nvidia-smi style)");
  const auto m_d = metric(reg, "gpu.double_bit_errors", "errors",
                          "cumulative uncorrectable ECC errors", true);
  nodes_ = cluster.gpus().gpu_nodes();
  for (int n : nodes_) {
    health_.push_back(reg.series(m_h, topo.gpu_of(n)));
    dbe_.push_back(reg.series(m_d, topo.gpu_of(n)));
  }
}

void GpuSampler::sample(TimePoint t, SampleBatch& out) {
  auto& gpus = cluster_.gpus();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    out.samples.push_back(
        {health_[i], t, static_cast<double>(gpus.health(nodes_[i]))});
    out.samples.push_back({dbe_[i], t, gpus.dbe_count(nodes_[i])});
  }
}

// -- QueueSampler -------------------------------------------------------------

QueueSampler::QueueSampler(sim::Cluster& cluster) : cluster_(cluster) {
  auto& reg = cluster.registry();
  depth_ = reg.series(metric(reg, "sched.queue_depth", "jobs",
                             "jobs waiting for allocation"),
                      cluster.topology().system());
  running_ = reg.series(
      metric(reg, "sched.running", "jobs", "jobs currently executing"),
      cluster.topology().system());
}

void QueueSampler::sample(TimePoint t, SampleBatch& out) {
  out.samples.push_back(
      {depth_, t, static_cast<double>(cluster_.scheduler().queue_depth())});
  out.samples.push_back(
      {running_, t, static_cast<double>(cluster_.scheduler().running_count())});
}

// -- FacilitySampler ----------------------------------------------------------

FacilitySampler::FacilitySampler(sim::Cluster& cluster) : cluster_(cluster) {
  auto& reg = cluster.registry();
  const auto fac = cluster.topology().facility_sensor();
  corrosion_ = reg.series(
      metric(reg, "facility.corrosion_ppb", "ppb",
             "reactive (sulfur-bearing) gas concentration, ASHRAE G1 < 10"),
      fac);
  humidity_ = reg.series(
      metric(reg, "facility.humidity_pct", "%", "relative humidity"), fac);
  particulates_ = reg.series(
      metric(reg, "facility.particulates_ugm3", "ug/m3", "airborne particulates"),
      fac);
}

void FacilitySampler::sample(TimePoint t, SampleBatch& out) {
  const auto& env = cluster_.power().facility();
  out.samples.push_back({corrosion_, t, env.corrosion_ppb});
  out.samples.push_back({humidity_, t, env.humidity_pct});
  out.samples.push_back({particulates_, t, env.particulates_ugm3});
}

std::vector<std::unique_ptr<Sampler>> make_all_samplers(sim::Cluster& cluster) {
  std::vector<std::unique_ptr<Sampler>> out;
  out.push_back(std::make_unique<NodeSampler>(cluster));
  out.push_back(std::make_unique<PowerSampler>(cluster));
  out.push_back(std::make_unique<HsnSampler>(cluster));
  out.push_back(std::make_unique<FsSampler>(cluster));
  if (cluster.gpus().num_gpus() > 0) {
    out.push_back(std::make_unique<GpuSampler>(cluster));
  }
  out.push_back(std::make_unique<QueueSampler>(cluster));
  out.push_back(std::make_unique<FacilitySampler>(cluster));
  return out;
}

}  // namespace hpcmon::collect
