#include "collect/derived.hpp"

namespace hpcmon::collect {

void DerivedStage::derive_rate(std::string_view counter_metric) {
  RateRule rule;
  rule.metric = std::string(counter_metric);
  rule.metric_index = registry_.register_metric(
      {rule.metric, "", "(source counter for derived rate)", true});
  const auto& src = registry_.metric(rule.metric_index);
  rule.out_index = registry_.register_metric(
      {rule.metric + ".rate", src.units.empty() ? "/s" : src.units + "/s",
       "per-second rate of " + rule.metric + " (derived in-stream)", false});
  rate_rules_.push_back(std::move(rule));
}

void DerivedStage::derive_aggregate(std::string_view metric, store::Agg agg,
                                    std::string_view out_metric,
                                    core::ComponentId target) {
  AggRule rule;
  rule.metric = std::string(metric);
  rule.metric_index =
      registry_.register_metric({rule.metric, "", "", false});
  rule.agg = agg;
  const auto out_index = registry_.register_metric(
      {std::string(out_metric), "",
       std::string(store::to_string(agg)) + " of " + rule.metric +
           " across reporting components (derived in-stream)",
       false});
  rule.out_series = registry_.series(out_index, target);
  agg_rules_.push_back(std::move(rule));
}

void DerivedStage::process(const core::SampleBatch& batch) {
  core::SampleBatch out;
  out.sweep_time = batch.sweep_time;
  out.origin = batch.origin;

  for (const auto& rule : rate_rules_) {
    for (const auto& s : batch.samples) {
      if (registry_.series_metric(s.series) != rule.metric_index) continue;
      auto& rc = rate_state_[s.series];
      if (const auto rate = rc.update(s.time, s.value)) {
        out.samples.push_back(
            {registry_.series(rule.out_index,
                              registry_.series_component(s.series)),
             s.time, *rate});
      }
    }
  }
  for (const auto& rule : agg_rules_) {
    std::vector<core::TimedValue> members;
    for (const auto& s : batch.samples) {
      if (registry_.series_metric(s.series) == rule.metric_index) {
        members.push_back({s.time, s.value});
      }
    }
    if (const auto v = store::aggregate_points(members, rule.agg)) {
      out.samples.push_back({rule.out_series, batch.sweep_time, *v});
    }
  }
  if (!out.empty()) {
    derived_ += out.size();
    sink_(std::move(out));
  }
}

void DerivedStage::attach(transport::EventRouter& router) {
  router.subscribe(transport::FrameType::kSamples,
                   [this](const transport::Frame& frame) {
                     if (auto batch = transport::decode_samples(frame)) {
                       process(batch.value());
                     }
                   });
}

}  // namespace hpcmon::collect
