// Health-check suite (LANL, Sec. II.1) and job-gating checks (CSCS, II.5).
//
// LANL runs "a suite of custom tests ... system-wide, on 10 minute intervals
// across all relevant components": configuration checks, service/daemon
// liveness, filesystem mounts, free memory. HealthCheckSuite implements that
// battery; results flow both as samples (health.ok per node, for dashboards)
// and as health-facility log events on failure (for the rule engine).
//
// make_gpu_precheck/make_node_precheck build the NodeCheck closures the
// scheduler's pre/post-job gates consume.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "collect/sampler.hpp"
#include "core/registry.hpp"
#include "sim/cluster.hpp"
#include "sim/scheduler.hpp"

namespace hpcmon::collect {

struct HealthConfig {
  double min_free_mem_gb = 8.0;  // LANL: "appropriate amount of free memory"
  bool check_fs_mounts = true;
  bool check_daemons = true;
  bool check_gpu = true;
};

/// Result of checking one node.
struct HealthResult {
  int node = 0;
  bool ok = true;
  std::vector<std::string> failures;  // human-readable reasons
};

class HealthCheckSuite : public Sampler {
 public:
  HealthCheckSuite(sim::Cluster& cluster, const HealthConfig& config);
  std::string name() const override { return "health"; }

  /// Run the battery over all nodes; emits health.ok samples (1/0) and
  /// failure counts, and queues health log events on the cluster.
  void sample(core::TimePoint sweep_time, core::SampleBatch& out) override;

  /// Check one node immediately (used by gates and dashboards).
  HealthResult check_node(int node) const;

  std::size_t checks_run() const { return checks_run_; }

 private:
  sim::Cluster& cluster_;
  HealthConfig config_;
  std::vector<core::SeriesId> ok_;
  core::SeriesId failing_nodes_{0};
  mutable std::size_t checks_run_ = 0;
};

/// Pre/post-job gate: GPU diagnostic (CSCS). Non-GPU nodes always pass.
sim::Scheduler::NodeCheck make_gpu_precheck(sim::Cluster& cluster);

/// Pre/post-job gate: full node battery (memory, mounts, daemons, GPU).
sim::Scheduler::NodeCheck make_node_precheck(const HealthCheckSuite& suite);

}  // namespace hpcmon::collect
