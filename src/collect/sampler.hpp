// Sampler interface and sink plumbing.
//
// A Sampler reads one subsystem's raw data (Cluster accessors are the
// "vendor interface") and emits a SampleBatch per sweep. Sinks decide where
// batches go: straight into a store, or encoded onto a transport. Table I
// (Architecture): "multiple flexible data paths should be anticipated, with
// changes in data direction ... easily configured".
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/log_event.hpp"
#include "core/sample.hpp"

namespace hpcmon::collect {

class Sampler {
 public:
  virtual ~Sampler() = default;
  /// Stable name for configuration and diagnostics ("node", "hsn", ...).
  virtual std::string name() const = 0;
  /// Append this sweep's samples to `out` (out.sweep_time is pre-set).
  virtual void sample(core::TimePoint sweep_time, core::SampleBatch& out) = 0;
};

/// Where sample batches go after collection.
using SampleSink = std::function<void(core::SampleBatch&&)>;
/// Where log-event batches go.
using LogSink = std::function<void(std::vector<core::LogEvent>&&)>;

}  // namespace hpcmon::collect
