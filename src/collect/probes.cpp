#include "collect/probes.hpp"

#include <algorithm>

namespace hpcmon::collect {

using core::SampleBatch;
using core::TimePoint;

ProbeSuite::ProbeSuite(sim::Cluster& cluster, const ProbeConfig& config,
                       core::Rng rng)
    : cluster_(cluster), config_(config), rng_(rng) {
  auto& reg = cluster.registry();
  const auto& topo = cluster.topology();
  const auto m_dg = reg.register_metric(
      {"probe.dgemm_seconds", "s", "matrix-multiply benchmark runtime", false});
  const auto m_st = reg.register_metric(
      {"probe.stream_gbps", "GB/s", "memory bandwidth benchmark", false});
  const auto m_pp = reg.register_metric(
      {"probe.pingpong_usec", "us", "nearest-neighbour MPI latency", false});
  for (const int n : config_.probe_nodes) {
    dgemm_.push_back(reg.series(m_dg, topo.node(n)));
    stream_.push_back(reg.series(m_st, topo.node(n)));
    pingpong_.push_back(reg.series(m_pp, topo.node(n)));
  }
  const auto m_fr = reg.register_metric(
      {"probe.fs_read_ms", "ms", "targeted OST read-probe latency", false});
  const auto m_md = reg.register_metric(
      {"probe.fs_md_ms", "ms", "targeted MDS metadata-probe latency", false});
  for (int f = 0; f < topo.num_filesystems(); ++f) {
    fs_read_.emplace_back();
    for (int o = 0; o < topo.osts_per_fs(); ++o) {
      fs_read_[f].push_back(reg.series(m_fr, topo.ost(f, o)));
    }
    fs_md_.push_back(reg.series(m_md, topo.mds(f)));
  }
}

void ProbeSuite::sample(TimePoint t, SampleBatch& out) {
  const auto& topo = cluster_.topology();
  auto noise = [this] { return 1.0 + rng_.normal(0.0, config_.noise_frac); };

  for (std::size_t i = 0; i < config_.probe_nodes.size(); ++i) {
    const int node = config_.probe_nodes[i];
    const auto& ns = cluster_.node_state(node);
    // Compute probe: runtime grows with whatever is already on the node
    // (probes share the node with production load, as in practice).
    const double dgemm =
        config_.dgemm_seconds * (1.0 + 0.8 * ns.cpu_util) * noise();
    out.samples.push_back({dgemm_[i], t, std::max(0.0, dgemm)});
    // Memory probe: bandwidth shrinks under load.
    const double stream =
        config_.stream_gbps * (1.0 - 0.5 * ns.cpu_util) * noise();
    out.samples.push_back({stream_[i], t, std::max(0.0, stream)});
    // Network probe: ping-pong to the next probe node (or neighbour node).
    const int peer =
        config_.probe_nodes.size() > 1
            ? config_.probe_nodes[(i + 1) % config_.probe_nodes.size()]
            : (node + 1) % topo.num_nodes();
    double worst_stall = 0.0;
    for (const int li : cluster_.fabric().route(node, peer)) {
      worst_stall =
          std::max(worst_stall, cluster_.fabric().link_state(li).stall_rate);
    }
    const double pingpong =
        config_.pingpong_usec * (1.0 + 4.0 * worst_stall) * noise();
    out.samples.push_back({pingpong_[i], t, std::max(0.0, pingpong)});
  }

  // Filesystem probes target every independent component (NCSA).
  for (int f = 0; f < topo.num_filesystems(); ++f) {
    for (int o = 0; o < topo.osts_per_fs(); ++o) {
      const double ms = cluster_.fs().ost_state(f, o).latency_ms * noise();
      out.samples.push_back({fs_read_[f][o], t, std::max(0.0, ms)});
    }
    const double md = cluster_.fs().mds_state(f).latency_ms * noise();
    out.samples.push_back({fs_md_[f], t, std::max(0.0, md)});
  }
}

}  // namespace hpcmon::collect
