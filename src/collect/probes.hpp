// ProbeSuite: active benchmark probes.
//
// Three sites' practice folded into one component:
//  * NERSC (Sec. II.3): "regularly runs a suite of custom benchmarks that
//    exercise compute, network, and I/O functionality, and publishes
//    performance over time" — Fig 2's data.
//  * NCSA (Sec. II.2): filesystem probes that "measure file I/O and metadata
//    action response latencies ... target each independent filesystem
//    component".
//  * LANL (Sec. II.1): probes that run "system-wide, on 10 minute intervals".
//
// Probes measure the *simulator's* current state the way a real benchmark
// would: a compute probe's runtime inflates with node load, a network probe's
// latency inflates with path stalls, an fs probe reports the target's current
// op latency plus noise. Probe results are ordinary samples on probe metrics
// — "test results" as a first-class data source (Table I).
#pragma once

#include <vector>

#include "collect/sampler.hpp"
#include "core/registry.hpp"
#include "core/rng.hpp"
#include "sim/cluster.hpp"

namespace hpcmon::collect {

struct ProbeConfig {
  /// Nodes the probes launch from (representative clients, per NCSA).
  std::vector<int> probe_nodes = {0};
  double noise_frac = 0.02;  // multiplicative measurement noise (stddev)
  // Unloaded baselines.
  double dgemm_seconds = 30.0;
  double stream_gbps = 180.0;
  double pingpong_usec = 1.8;
};

/// Runs the full probe suite every sweep; emits one sample per probe metric
/// per target. Metrics:
///   probe.dgemm_seconds@node      compute probe (higher = worse)
///   probe.stream_gbps@node        memory-bandwidth probe (lower = worse)
///   probe.pingpong_usec@node      network latency probe (higher = worse)
///   probe.fs_read_ms@ost          per-OST read probe
///   probe.fs_md_ms@mds            per-MDS metadata probe
class ProbeSuite : public Sampler {
 public:
  ProbeSuite(sim::Cluster& cluster, const ProbeConfig& config, core::Rng rng);
  std::string name() const override { return "probes"; }
  void sample(core::TimePoint sweep_time, core::SampleBatch& out) override;

  const ProbeConfig& config() const { return config_; }

 private:
  sim::Cluster& cluster_;
  ProbeConfig config_;
  core::Rng rng_;
  std::vector<core::SeriesId> dgemm_, stream_, pingpong_;
  std::vector<std::vector<core::SeriesId>> fs_read_;  // [fs][ost]
  std::vector<core::SeriesId> fs_md_;                 // [fs]
};

}  // namespace hpcmon::collect
