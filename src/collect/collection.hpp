// CollectionService: synchronized periodic sweeps over a set of samplers,
// plus the log collector.
//
// NCSA (Sec. II.2): "collection times are synchronized across the entire
// system" — sweeps are aligned to multiples of the interval on the global
// timeline, so cross-component samples share timestamps and can be
// associated directly (contrast bench/ablation_clockdrift). The paper also
// distinguishes periodic numeric collection from passive log collection of
// "pertinent log messages ... as they asynchronously occur"; LogCollector
// drains the cluster's event stream every tick.
#pragma once

#include <memory>
#include <vector>

#include "collect/sampler.hpp"
#include "obs/stage.hpp"
#include "sim/cluster.hpp"
#include "store/retention.hpp"
#include "store/tsdb.hpp"
#include "transport/event_router.hpp"

namespace hpcmon::collect {

class CollectionService {
 public:
  explicit CollectionService(sim::Cluster& cluster) : cluster_(cluster) {}

  /// The event queue has no cancellation, so sweep closures carry a shared
  /// liveness flag: once the service dies (a chaos-harness stack restart
  /// mid-run), already-scheduled sweeps fire as no-ops instead of touching
  /// a destroyed service.
  ~CollectionService() { *alive_ = false; }

  /// Register a sampler to sweep every `interval`, starting at the first
  /// multiple of `interval` >= the cluster's current time. Ownership moves
  /// to the service.
  void add_sampler(std::unique_ptr<Sampler> sampler, core::Duration interval,
                   SampleSink sink);

  /// Drain the cluster's log stream every `interval` into `sink`.
  void add_log_collector(core::Duration interval, LogSink sink);

  std::size_t sweeps_completed() const { return sweeps_; }
  std::size_t samples_collected() const { return samples_; }

  /// Time every sampler's sweep callback into the sampler_sweep stage
  /// histogram; nullptr disables (the default). Takes effect on the next
  /// sweep, including for samplers already registered.
  void set_stage_timer(obs::StageTimer* timer) { stage_timer_ = timer; }

 private:
  sim::Cluster& cluster_;
  obs::StageTimer* stage_timer_ = nullptr;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  // Samplers are owned via shared_ptr because the event-queue closures that
  // reference them must remain valid for the simulation's lifetime.
  std::vector<std::shared_ptr<Sampler>> samplers_;
  std::size_t sweeps_ = 0;
  std::size_t samples_ = 0;
};

/// Sink adapters.
SampleSink store_sink(store::TimeSeriesStore& store);
SampleSink tiered_sink(store::TieredStore& store);
SampleSink router_sample_sink(transport::EventRouter& router);
LogSink router_log_sink(transport::EventRouter& router);

}  // namespace hpcmon::collect
