// Concrete samplers for every simulated subsystem.
//
// Mirrors the data-source inventory of Sec. II/III-A: node state (/proc-
// style), power and environment (SEDC/PMDB-style), HSN performance counters
// (Aries/Gemini-style), filesystem targets, GPU health, and scheduler/queue
// state. Each sampler registers its metrics with units and descriptions
// (Table I: "the meaning of all raw data should be provided").
#pragma once

#include <memory>
#include <vector>

#include "collect/sampler.hpp"
#include "core/registry.hpp"
#include "sim/cluster.hpp"

namespace hpcmon::collect {

/// Per-node CPU/memory state. When `stamp_local_clock` is set, samples are
/// timestamped with each node's drifting local clock instead of the
/// synchronized sweep time — reproducing the Sec. III-A failure mode for
/// bench/ablation_clockdrift.
class NodeSampler : public Sampler {
 public:
  NodeSampler(sim::Cluster& cluster, bool stamp_local_clock = false);
  std::string name() const override { return "node"; }
  void sample(core::TimePoint sweep_time, core::SampleBatch& out) override;

 private:
  sim::Cluster& cluster_;
  bool stamp_local_;
  std::vector<core::SeriesId> cpu_, mem_free_, read_, write_;
};

/// Node, cabinet, and system power; cabinet temperatures; energy counter.
class PowerSampler : public Sampler {
 public:
  explicit PowerSampler(sim::Cluster& cluster);
  std::string name() const override { return "power"; }
  void sample(core::TimePoint sweep_time, core::SampleBatch& out) override;

 private:
  sim::Cluster& cluster_;
  std::vector<core::SeriesId> node_power_, cabinet_power_, cabinet_temp_;
  core::SeriesId system_power_{0}, energy_{0};
};

/// HSN per-link counters (traffic/stalls/bit errors) and per-node injection
/// bandwidth utilization (Fig 1's metric).
class HsnSampler : public Sampler {
 public:
  explicit HsnSampler(sim::Cluster& cluster);
  std::string name() const override { return "hsn"; }
  void sample(core::TimePoint sweep_time, core::SampleBatch& out) override;

 private:
  sim::Cluster& cluster_;
  std::vector<core::SeriesId> traffic_, stalls_, bit_errors_;
  std::vector<core::SeriesId> injection_util_;
};

/// Filesystem target counters and latencies (OST read/write bytes,
/// utilization, latency; MDS ops and latency) plus per-node I/O attribution.
class FsSampler : public Sampler {
 public:
  explicit FsSampler(sim::Cluster& cluster);
  std::string name() const override { return "fs"; }
  void sample(core::TimePoint sweep_time, core::SampleBatch& out) override;

 private:
  sim::Cluster& cluster_;
  std::vector<std::vector<core::SeriesId>> ost_read_bytes_, ost_write_bytes_,
      ost_latency_, ost_util_;
  std::vector<core::SeriesId> mds_latency_, mds_ops_;
};

/// GPU health states (0=ok 1=degraded 2=failed) and DBE counters.
class GpuSampler : public Sampler {
 public:
  explicit GpuSampler(sim::Cluster& cluster);
  std::string name() const override { return "gpu"; }
  void sample(core::TimePoint sweep_time, core::SampleBatch& out) override;

 private:
  sim::Cluster& cluster_;
  std::vector<int> nodes_;
  std::vector<core::SeriesId> health_, dbe_;
};

/// Scheduler queue depth and running-job count (NERSC/CSC, Sec. II.3/II.4).
class QueueSampler : public Sampler {
 public:
  explicit QueueSampler(sim::Cluster& cluster);
  std::string name() const override { return "queue"; }
  void sample(core::TimePoint sweep_time, core::SampleBatch& out) override;

 private:
  sim::Cluster& cluster_;
  core::SeriesId depth_{0}, running_{0};
};

/// Datacenter environment: corrosive gas, humidity, particulates (ORNL,
/// Sec. II.6).
class FacilitySampler : public Sampler {
 public:
  explicit FacilitySampler(sim::Cluster& cluster);
  std::string name() const override { return "facility"; }
  void sample(core::TimePoint sweep_time, core::SampleBatch& out) override;

 private:
  sim::Cluster& cluster_;
  core::SeriesId corrosion_{0}, humidity_{0}, particulates_{0};
};

/// Convenience: every sampler over a cluster, in a ready-to-attach vector.
std::vector<std::unique_ptr<Sampler>> make_all_samplers(sim::Cluster& cluster);

}  // namespace hpcmon::collect
