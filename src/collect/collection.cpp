#include "collect/collection.hpp"

#include "store/retention.hpp"
#include "transport/codec.hpp"

namespace hpcmon::collect {

using core::Duration;
using core::TimePoint;

namespace {
/// First multiple of `interval` at or after `t` (synchronized sweep grid).
TimePoint align_up(TimePoint t, Duration interval) {
  return (t + interval - 1) / interval * interval;
}
}  // namespace

void CollectionService::add_sampler(std::unique_ptr<Sampler> sampler,
                                    Duration interval, SampleSink sink) {
  std::shared_ptr<Sampler> shared(std::move(sampler));
  samplers_.push_back(shared);
  const TimePoint first = align_up(cluster_.now() + 1, interval);
  cluster_.events().schedule_every(
      first, interval,
      [this, alive = alive_, shared, sink = std::move(sink)](TimePoint now) {
        if (!*alive) return;
        core::SampleBatch batch;
        batch.sweep_time = now;
        {
          obs::StageTimer::Scoped span(stage_timer_,
                                       obs::Stage::kSamplerSweep);
          shared->sample(now, batch);
        }
        ++sweeps_;
        samples_ += batch.size();
        sink(std::move(batch));
      });
}

void CollectionService::add_log_collector(Duration interval, LogSink sink) {
  const TimePoint first = align_up(cluster_.now() + 1, interval);
  cluster_.events().schedule_every(
      first, interval,
      [this, alive = alive_, sink = std::move(sink)](TimePoint) {
        if (!*alive) return;
        auto events = cluster_.drain_logs();
        if (!events.empty()) sink(std::move(events));
      });
}

SampleSink store_sink(store::TimeSeriesStore& store) {
  return [&store](core::SampleBatch&& batch) {
    store.append_batch(batch.samples);
  };
}

SampleSink tiered_sink(store::TieredStore& store) {
  return [&store](core::SampleBatch&& batch) {
    store.append_batch(batch.samples);
  };
}

SampleSink router_sample_sink(transport::EventRouter& router) {
  return [&router](core::SampleBatch&& batch) {
    router.publish(transport::encode_samples(batch));
  };
}

LogSink router_log_sink(transport::EventRouter& router) {
  return [&router](std::vector<core::LogEvent>&& events) {
    router.publish(transport::encode_logs(events));
  };
}

}  // namespace hpcmon::collect
