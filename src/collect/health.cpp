#include "collect/health.hpp"

#include "core/strings.hpp"

namespace hpcmon::collect {

using core::SampleBatch;
using core::TimePoint;

HealthCheckSuite::HealthCheckSuite(sim::Cluster& cluster,
                                   const HealthConfig& config)
    : cluster_(cluster), config_(config) {
  auto& reg = cluster.registry();
  const auto& topo = cluster.topology();
  const auto m_ok = reg.register_metric(
      {"health.ok", "bool", "1 when the node passes the full check battery",
       false});
  for (int i = 0; i < topo.num_nodes(); ++i) {
    ok_.push_back(reg.series(m_ok, topo.node(i)));
  }
  failing_nodes_ = reg.series(
      reg.register_metric({"health.failing_nodes", "nodes",
                           "count of nodes failing any health check", false}),
      topo.system());
}

HealthResult HealthCheckSuite::check_node(int node) const {
  ++checks_run_;
  HealthResult r;
  r.node = node;
  const auto& ns = cluster_.node_state(node);
  const double free_gb =
      const_cast<sim::Cluster&>(cluster_).node_mem_free_gb(node);
  if (free_gb < config_.min_free_mem_gb) {
    r.ok = false;
    r.failures.push_back(
        core::strformat("free memory %.1f GiB below %.1f GiB", free_gb,
                        config_.min_free_mem_gb));
  }
  if (config_.check_fs_mounts && !ns.fs_mounted) {
    r.ok = false;
    r.failures.push_back("shared filesystem not mounted");
  }
  if (config_.check_daemons && !ns.daemons_ok) {
    r.ok = false;
    r.failures.push_back("essential daemon not running");
  }
  if (ns.hung) {
    r.ok = false;
    r.failures.push_back("node unresponsive");
  }
  if (config_.check_gpu &&
      cluster_.topology().node_has_gpu(node) &&
      cluster_.gpus().health(node) == sim::GpuHealth::kFailed) {
    r.ok = false;
    r.failures.push_back("GPU failed");
  }
  return r;
}

void HealthCheckSuite::sample(TimePoint t, SampleBatch& out) {
  const auto& topo = cluster_.topology();
  int failing = 0;
  for (int i = 0; i < topo.num_nodes(); ++i) {
    const auto r = check_node(i);
    out.samples.push_back({ok_[i], t, r.ok ? 1.0 : 0.0});
    if (!r.ok) {
      ++failing;
      for (const auto& reason : r.failures) {
        // Route failures through the cluster's log stream so they are
        // collected, stored, and correlated like any other event.
        cluster_.emit_log({t, t, topo.node(i), core::LogFacility::kHealth,
                           core::Severity::kWarning, core::kNoJob,
                           "health check failed: " + reason});
      }
    }
  }
  out.samples.push_back({failing_nodes_, t, static_cast<double>(failing)});
}

sim::Scheduler::NodeCheck make_gpu_precheck(sim::Cluster& cluster) {
  return [&cluster](int node) { return cluster.gpus().run_diagnostic(node); };
}

sim::Scheduler::NodeCheck make_node_precheck(const HealthCheckSuite& suite) {
  return [&suite](int node) { return suite.check_node(node).ok; };
}

}  // namespace hpcmon::collect
