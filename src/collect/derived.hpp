// DerivedStage: streaming analysis in the transport path.
//
// Table I (Analysis and Visualization): "Analysis capabilities should be
// supported at variety of locations within the monitoring infrastructure
// (e.g., at data sources, as streaming analysis, at the store ...)" and
// "analysis results should be able to be stored with raw data". DerivedStage
// sits on the frame stream between collection and storage: it converts
// monotonic counters into rates and folds per-sweep cross-component
// aggregates, emitting the results as ordinary SampleBatches on derived
// metrics — so they land in the same store, dashboards, and alert paths as
// the raw data, with no post-hoc queries.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/streaming.hpp"
#include "collect/sampler.hpp"
#include "core/registry.hpp"
#include "store/tsdb.hpp"
#include "transport/codec.hpp"
#include "transport/event_router.hpp"

namespace hpcmon::collect {

class DerivedStage {
 public:
  /// Derived batches flow into `sink` (typically a store or a second
  /// router). Subscribe the stage to a router with attach().
  DerivedStage(core::MetricRegistry& registry, SampleSink sink)
      : registry_(registry), sink_(std::move(sink)) {}

  /// Derive `<metric>.rate` (per second) for every series of a counter
  /// metric. Safe to call before the metric exists.
  void derive_rate(std::string_view counter_metric);

  /// Derive a per-sweep aggregate across all components reporting `metric`
  /// in a batch, emitted as `out_metric` on `target` (usually the system
  /// pseudo-component).
  void derive_aggregate(std::string_view metric, store::Agg agg,
                        std::string_view out_metric, core::ComponentId target);

  /// Process one decoded batch (call directly, or via attach()).
  void process(const core::SampleBatch& batch);

  /// Subscribe to a router's sample frames. The router must outlive this.
  void attach(transport::EventRouter& router);

  std::uint64_t derived_samples() const { return derived_; }

 private:
  struct RateRule {
    std::string metric;
    std::uint32_t metric_index;
    std::uint32_t out_index;
  };
  struct AggRule {
    std::string metric;
    std::uint32_t metric_index;
    store::Agg agg;
    core::SeriesId out_series;
  };

  core::MetricRegistry& registry_;
  SampleSink sink_;
  std::vector<RateRule> rate_rules_;
  std::vector<AggRule> agg_rules_;
  // Per-source-series rate state.
  std::unordered_map<core::SeriesId, analysis::RateConverter> rate_state_;
  std::uint64_t derived_ = 0;
};

}  // namespace hpcmon::collect
