#include "serve/egress.hpp"

#include <algorithm>

#include "serve/wire.hpp"
#include "transport/codec.hpp"

namespace hpcmon::serve {

std::vector<std::uint8_t> EgressQueue::frame_delta(
    std::uint32_t sub_id, const core::SampleBatch& batch) {
  // A delta body is verbatim transport codec bytes: the same documented
  // encoding the in-process router moves, now inside a wire frame.
  std::vector<std::uint8_t> bytes;
  append_wire_frame(bytes, MsgType::kDelta, sub_id,
                    transport::encode_samples(batch).payload);
  return bytes;
}

void EgressQueue::push_response(std::vector<std::uint8_t> frame_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  items_.push_back({core::Priority::kCritical, false, std::move(frame_bytes)});
  if (counters_.depth_hwm != nullptr) {
    counters_.depth_hwm->update_max(static_cast<double>(items_.size()));
  }
}

bool EgressQueue::evict_for_locked(core::Priority incoming) {
  // Shed lowest class first, oldest first within the class; only deltas are
  // evictable, and only ones strictly lower-class than the arrival.
  for (auto pri : {core::Priority::kBulk, core::Priority::kStandard}) {
    if (pri <= incoming) continue;  // not strictly lower-class
    for (auto it = items_.begin(); it != items_.end(); ++it) {
      if (it->is_delta && it->priority == pri) {
        items_.erase(it);
        auto* counter = pri == core::Priority::kBulk
                            ? counters_.evicted_bulk
                            : counters_.evicted_standard;
        if (counter != nullptr) counter->add();
        return true;
      }
    }
  }
  return false;
}

bool EgressQueue::push_delta(std::uint32_t sub_id, core::Priority priority,
                             const core::SampleBatch& samples) {
  std::lock_guard<std::mutex> lock(mu_);
  if (items_.size() >= cap_ && !evict_for_locked(priority)) {
    if (priority == core::Priority::kCritical) {
      // The queue is saturated with same-or-higher class frames: fold the
      // samples into the latest-state map instead of dropping them. The
      // client converges to the current value of every critical series as
      // soon as it drains.
      for (const auto& s : samples.samples) {
        coalesced_[{sub_id, s.series}] = {s.time, s.value};
      }
      if (counters_.coalesced_critical != nullptr) {
        counters_.coalesced_critical->add(samples.samples.size());
      }
      return true;
    }
    // The arrival outranks nothing queued: it is itself the shed frame.
    auto* counter = priority == core::Priority::kBulk
                        ? counters_.evicted_bulk
                        : counters_.evicted_standard;
    if (counter != nullptr) counter->add();
    return false;
  }
  items_.push_back({priority, true, frame_delta(sub_id, samples)});
  // Coalesced state is emitted AFTER queued items; a stale entry must not
  // outlive a newer queued value for the same series, or the client would
  // converge to the older reading.
  if (!coalesced_.empty() && priority == core::Priority::kCritical) {
    for (const auto& s : samples.samples) {
      coalesced_.erase({sub_id, s.series});
    }
  }
  if (counters_.deltas_enqueued != nullptr) counters_.deltas_enqueued->add();
  if (counters_.depth_hwm != nullptr) {
    counters_.depth_hwm->update_max(static_cast<double>(items_.size()));
  }
  return true;
}

std::size_t EgressQueue::take_bytes(std::vector<std::uint8_t>& out) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t frames = 0;
  for (auto& item : items_) {
    out.insert(out.end(), item.bytes.begin(), item.bytes.end());
    ++frames;
  }
  items_.clear();
  // Materialize the coalesced critical state now that the pipe has room:
  // one delta frame per subscription, per-series latest values, time-ordered
  // within the frame by construction of the map (insertion keeps latest).
  std::uint32_t current_sub = 0;
  core::SampleBatch batch;
  const auto flush = [&] {
    if (batch.samples.empty()) return;
    std::sort(batch.samples.begin(), batch.samples.end(),
              [](const core::Sample& a, const core::Sample& b) {
                return a.time < b.time;
              });
    batch.sweep_time = batch.samples.back().time;
    const auto bytes = frame_delta(current_sub, batch);
    out.insert(out.end(), bytes.begin(), bytes.end());
    ++frames;
    if (counters_.deltas_enqueued != nullptr) counters_.deltas_enqueued->add();
    batch.samples.clear();
  };
  for (const auto& [key, tv] : coalesced_) {
    if (!batch.samples.empty() && key.first != current_sub) flush();
    current_sub = key.first;
    batch.samples.push_back({key.second, tv.time, tv.value});
  }
  flush();
  coalesced_.clear();
  return frames;
}

std::size_t EgressQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

std::size_t EgressQueue::coalesced_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coalesced_.size();
}

void EgressQueue::forget_subscription(std::uint32_t sub_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = coalesced_.begin(); it != coalesced_.end();) {
    it = it->first.first == sub_id ? coalesced_.erase(it) : std::next(it);
  }
}

}  // namespace hpcmon::serve
