// ServeServer: the network front door — an epoll reactor TCP server.
//
// The paper's central recommendation is that monitoring data be continuously
// available to consumers, not trapped in the collector; until this tier,
// every hpcmon consumer had to live in the collector's process. ServeServer
// exposes the query engine, streaming scans, live subscriptions, and an
// admin surface over the length-framed binary protocol (wire.hpp /
// protocol.hpp) on a loopback-or-LAN TCP socket.
//
// Thread model (ROADMAP's connection-fanout design):
//   * ONE reactor thread owns the epoll set: non-blocking accept, reads,
//     frame reassembly (WireAssembler), and request handling. Requests are
//     store reads — the query engine already decodes outside its locks, so
//     handling inline keeps the design one-lock-free-path simple.
//   * A small WRITER POOL (serve_writer_threads) moves egress bytes to
//     sockets; connection id % pool size picks the writer, so each writer
//     owns a stable group of N connections. Writers handle partial writes
//     and never block the reactor.
//   * Deltas are pushed from INGEST threads via publish_batch(): pattern
//     matching against live subscriptions, then a bounded per-client
//     EgressQueue push (egress.hpp) that applies the storm-mode priority
//     door. The ingest path never blocks on a client, full stop.
//
// Backpressure: a connection whose egress is over cap stops being READ
// (EPOLLIN disarmed) until its writer drains it below half — a client that
// fires requests without consuming responses is throttled by TCP, not by
// server memory.
//
// Self-observability: every instrument is cataloged as serve.* in the
// shared ObsRegistry, so the serving tier is watched by the same plane as
// every other tier (and exported as hpcmon.self.serve.* when wired into a
// MonitoringStack).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/ids.hpp"
#include "core/priority.hpp"
#include "core/registry.hpp"
#include "core/sample.hpp"
#include "core/sockfault.hpp"
#include "core/time.hpp"
#include "obs/registry.hpp"
#include "serve/egress.hpp"
#include "serve/protocol.hpp"
#include "serve/wire.hpp"
#include "store/summary.hpp"

namespace hpcmon::serve {

struct ServeConfig {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (see port()).
  std::uint16_t port = 0;
  /// Writer pool size; one writer drains every (id % writers)-th connection.
  std::size_t writer_threads = 2;
  /// Per-connection egress cap in frames (the priority door's bound).
  std::size_t egress_cap = 256;
  /// Max points returned per scan page regardless of the client's ask.
  std::size_t scan_page_cap = 4096;
  /// Reject wire frames whose declared length exceeds this.
  std::uint32_t max_frame_bytes = kMaxWireFrameBytes;
  /// When > 0, shrink each accepted socket's send buffer (tests use a tiny
  /// buffer to make a stalled reader stall the pipe within a few frames).
  int sndbuf_bytes = 0;
  /// When > 0, close connections with no socket activity (bytes read or
  /// written) for this many wall milliseconds. Off by default: a half-open
  /// peer otherwise holds its EgressQueue and subscriptions forever.
  int idle_timeout_ms = 0;
  /// Relay dedupe bound: appends more than this many seqs beyond a source's
  /// acked watermark are acked-without-apply (the client resends once the
  /// watermark catches up), so per-source dedupe state stays bounded.
  /// Floored at 1 — a zero window would refuse even the next in-order seq.
  std::size_t relay_dedupe_window = 1024;
  /// Fault injection consulted before every recv/send (tests only).
  core::SocketFaultInjector* socket_faults = nullptr;
  /// Shared obs registry for the serve.* instruments; unset => private.
  obs::ObsRegistry* obs = nullptr;
};

/// Everything the server needs from the host process. The five query
/// functions must answer EXACTLY like the in-process store calls (the
/// end-to-end test asserts byte-identical results); admin hooks are
/// optional — absent ones answer kError.
struct ServeHooks {
  std::function<std::vector<core::TimedValue>(core::SeriesId,
                                              const core::TimeRange&)>
      query_range;
  std::function<std::optional<core::TimedValue>(core::SeriesId)> latest;
  std::function<std::optional<double>(core::SeriesId, const core::TimeRange&,
                                      store::Agg)>
      aggregate;
  std::function<std::vector<core::TimedValue>(
      core::SeriesId, const core::TimeRange&, core::Duration, store::Agg)>
      downsample;
  std::function<std::size_t(core::SeriesId, const core::TimeRange&,
                            const std::function<bool(const core::TimedValue&)>&)>
      scan;
  /// Series name/priority resolution for subscriptions (required for
  /// kSubscribe; without it every subscribe answers kError).
  const core::MetricRegistry* registry = nullptr;
  /// Admin surface.
  std::function<std::string()> status;
  /// Degradation override; nullopt releases the override. Returns false
  /// when the host has no degradation machinery.
  std::function<bool(std::optional<core::DegradationMode>)> set_mode;
  std::function<bool()> wal_rotate;
  /// Relay ingest apply (required for kRelayAppend; without it relay
  /// requests answer kError). Called exactly once per novel (source_id,
  /// seq) with the decoded batch and its priority class; must be durable
  /// by the time it returns (the ack promises the client it may forget).
  /// Returns the number of samples applied.
  std::function<std::size_t(const core::SampleBatch&, core::Priority)>
      relay_apply;
  /// Rollup level read by NAME (required for kRollupQuery / kRollupSub;
  /// absent => kError). The host answers from its RollupTree's current
  /// snapshot — O(1) lookups, never a store scatter-gather. nullopt when the
  /// component or metric is unknown or the level is empty.
  std::function<std::optional<rollup::RollupStat>(std::string_view,
                                                  std::string_view)>
      rollup_query;
};

/// Bind the five query hooks to any store exposing the common read API
/// (TimeSeriesStore, ShardedTimeSeriesStore, TieredStore's hot tier...).
template <typename Store>
void bind_query_hooks(ServeHooks& hooks, Store& store) {
  hooks.query_range = [&store](core::SeriesId id, const core::TimeRange& r) {
    return store.query_range(id, r);
  };
  hooks.latest = [&store](core::SeriesId id) { return store.latest(id); };
  hooks.aggregate = [&store](core::SeriesId id, const core::TimeRange& r,
                             store::Agg agg) {
    return store.aggregate(id, r, agg);
  };
  hooks.downsample = [&store](core::SeriesId id, const core::TimeRange& r,
                              core::Duration bucket, store::Agg agg) {
    return store.downsample(id, r, bucket, agg);
  };
  hooks.scan = [&store](core::SeriesId id, const core::TimeRange& r,
                        const std::function<bool(const core::TimedValue&)>& v) {
    return store.scan(id, r, v);
  };
}

/// Typed view over the serve.* instruments (tests/benches want fields, the
/// export path wants the registry — same values).
struct ServeStats {
  std::uint64_t connections_total = 0;
  std::uint64_t requests = 0;
  std::uint64_t request_errors = 0;
  std::uint64_t bad_frames = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t deltas_enqueued = 0;
  std::uint64_t egress_evicted_bulk = 0;
  std::uint64_t egress_evicted_standard = 0;
  std::uint64_t egress_coalesced_critical = 0;
  std::uint64_t reads_paused = 0;
  std::uint64_t idle_closed = 0;
  std::uint64_t relay_applied_batches = 0;
  std::uint64_t relay_applied_samples = 0;
  std::uint64_t relay_duplicates = 0;
  std::uint64_t relay_window_rejects = 0;
  std::uint64_t rollup_queries = 0;
  std::uint64_t rollup_deltas = 0;
  std::size_t connections = 0;
  std::size_t subscriptions = 0;
  std::size_t rollup_subscriptions = 0;
  std::size_t relay_sources = 0;
};

class ServeServer {
 public:
  ServeServer(ServeConfig config, ServeHooks hooks);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Bind 127.0.0.1:port, start the reactor and writer threads. Returns
  /// false (with error() set) when the socket can't be set up.
  bool start();
  void stop();
  bool running() const { return running_; }
  const std::string& error() const { return error_; }

  /// The bound port (resolved after start() when config.port was 0).
  std::uint16_t port() const { return port_; }

  /// Ingest tap: fan `batch` out to every matching live subscription
  /// through the bounded egress queues. Never blocks on any client; safe
  /// from any thread. Returns the number of subscription deltas enqueued
  /// or coalesced.
  std::size_t publish_batch(const core::SampleBatch& batch);

  /// Rollup tap: fan the tick's changed levels out to every kRollupSub
  /// subscriber whose (component, metric) moved. Safe from any thread;
  /// never blocks on a client. Returns kRollupDelta frames enqueued.
  std::size_t publish_rollup(std::span<const RollupDelta> changed);

  /// True when at least one kRollupSub subscription is live — lets the host
  /// skip collecting changed-level lists on ticks nobody is watching.
  bool has_rollup_subs() const;

  ServeStats stats() const;

  /// Catalog the serve.* instruments in `registry` (done automatically for
  /// ServeConfig::obs at construction).
  void attach_to(obs::ObsRegistry& registry) const;

 private:
  struct ScanCursor {
    core::SeriesId series{0};
    core::TimeRange range;
    core::TimePoint next_begin = 0;
    std::uint32_t page_points = 512;
  };

  struct Connection {
    int fd = -1;
    std::uint32_t id = 0;
    WireAssembler assembler;
    EgressQueue egress;
    std::atomic<bool> closed{false};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> tx_bytes{0};
    // Set by the reactor while EPOLLIN is disarmed (egress over cap); read
    // by the writer to nudge the reactor once the queue drains.
    std::atomic<bool> paused{false};
    std::unordered_map<std::uint32_t, ScanCursor> cursors;
    std::uint32_t next_cursor = 1;
    /// Wall clock (steady, ms) of the last byte moved either way; the
    /// reactor's idle sweep reaps connections past idle_timeout_ms.
    std::atomic<std::int64_t> last_activity_ms{0};
    // Writer-thread state: partially-written bytes.
    std::vector<std::uint8_t> wbuf;
    std::size_t woff = 0;

    Connection(int fd_, std::uint32_t id_, std::size_t egress_cap,
               EgressCounters counters)
        : fd(fd_), id(id_), egress(egress_cap, counters) {}
    ~Connection();
  };

  struct Subscription {
    std::uint32_t id = 0;
    std::shared_ptr<Connection> conn;
    std::string pattern;
    /// Memoized match verdict per raw SeriesId (0 unknown, 1 yes, 2 no).
    std::vector<std::uint8_t> match_cache;
  };

  /// One live kRollupSub: exact (component, metric) level.
  struct RollupSub {
    std::uint32_t id = 0;
    std::shared_ptr<Connection> conn;
    std::string component;
    std::string metric;
  };

  void reactor_loop();
  void writer_loop(std::size_t writer_index);
  void accept_ready();
  void read_ready(const std::shared_ptr<Connection>& conn);
  void close_conn(const std::shared_ptr<Connection>& conn);
  void sweep_closed();
  void update_pause_state(const std::shared_ptr<Connection>& conn);
  void notify_writer(std::uint32_t conn_id);
  void wake_reactor();

  void reap_idle();
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    const WireFrame& frame);
  void handle_relay_append(const std::shared_ptr<Connection>& conn,
                           const WireFrame& frame);
  void reply(const std::shared_ptr<Connection>& conn, MsgType type,
             std::uint32_t request_id, const std::vector<std::uint8_t>& body);
  void reply_error(const std::shared_ptr<Connection>& conn,
                   std::uint32_t request_id, const std::string& message);
  void handle_subscribe(const std::shared_ptr<Connection>& conn,
                        const WireFrame& frame);
  bool sub_matches(Subscription& sub, core::SeriesId id);

  ServeConfig config_;
  ServeHooks hooks_;
  std::string error_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: stop + writer->reactor nudges
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread reactor_;

  // Connections: reactor owns the map; writers hold shared_ptr copies while
  // writing, so an fd is closed only after both sides let go.
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;
  std::uint32_t next_conn_id_ = 1;

  struct Writer {
    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::shared_ptr<Connection>> conns;
    bool nudged = false;
  };
  std::vector<std::unique_ptr<Writer>> writers_;

  /// Per-source relay dedupe state: `watermark` is the highest seq S with
  /// every seq <= S applied; `applied_above` holds applied seqs > watermark
  /// (bounded by relay_dedupe_window) awaiting the gap to close.
  struct RelaySource {
    std::uint64_t watermark = 0;
    std::set<std::uint64_t> applied_above;
  };
  mutable std::mutex relay_mu_;
  std::unordered_map<std::uint64_t, RelaySource> relay_sources_;

  mutable std::mutex subs_mu_;
  std::vector<Subscription> subs_;
  std::vector<RollupSub> rollup_subs_;  // guarded by subs_mu_
  std::atomic<std::size_t> rollup_sub_count_{0};
  std::uint32_t next_sub_id_ = 1;
  /// Memoized priority class per raw SeriesId (255 unknown); guarded by
  /// subs_mu_ (publish_batch holds it while fanning out).
  std::vector<std::uint8_t> pri_cache_;

  // serve.* instruments (server-owned; attached to config_.obs at
  // construction when provided).
  obs::ObsRegistry own_obs_;
  obs::Counter connections_total_;
  obs::Gauge connections_;
  obs::Gauge subscriptions_;
  obs::Counter requests_;
  obs::Counter request_errors_;
  obs::Counter bad_frames_;
  obs::Counter bytes_in_;
  obs::Counter bytes_out_;
  obs::Counter deltas_enqueued_;
  obs::Counter evicted_bulk_;
  obs::Counter evicted_standard_;
  obs::Counter coalesced_critical_;
  obs::Counter reads_paused_;
  obs::Counter idle_closed_;
  obs::Counter relay_applied_batches_;
  obs::Counter relay_applied_samples_;
  obs::Counter relay_duplicates_;
  obs::Counter relay_window_rejects_;
  obs::Counter rollup_queries_;
  obs::Counter rollup_deltas_;
  obs::Gauge rollup_subs_gauge_;
  obs::Gauge relay_sources_gauge_;
  obs::Gauge egress_depth_hwm_;
  obs::Histogram request_us_;
  obs::Histogram delta_fanout_us_;
};

}  // namespace hpcmon::serve
