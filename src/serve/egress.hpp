// EgressQueue: one bounded, priority-aware outbound queue per connection.
//
// The serve tier's cardinal rule (and the acceptance bar of this PR): a slow
// client must never stall ingest. Subscription deltas are pushed from the
// ingest path, so the push must be O(1), lock-local, and bounded no matter
// how wedged the reader is. The queue applies the storm-mode priority door
// (core/priority.hpp) to delta frames:
//
//   * bulk is evicted first, then standard (oldest first within a class) —
//     exactly BufferedSubscription's shedding order, now per network client;
//   * critical is NEVER dropped: when the queue is full of critical frames,
//     further critical deltas COALESCE — the queue keeps the latest value
//     per (subscription, series), so memory is bounded by the subscriber's
//     matched-series count and the client still converges to the current
//     state of every critical series once it drains (the snapshot+delta
//     table idiom);
//   * responses (query replies, acks, errors) are never shed — protocol
//     correctness requires exactly one response per request. They can exceed
//     the cap transiently; the reactor stops READING from a connection whose
//     egress is over cap, so a client that writes requests without reading
//     responses is throttled by TCP backpressure, not by unbounded memory.
//
// Thread model: push_* from the reactor thread and any ingest thread;
// take_bytes from the owning writer thread. One mutex per connection —
// never shared across clients, so one wedged connection cannot convoy
// another's deltas.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "core/ids.hpp"
#include "core/priority.hpp"
#include "core/sample.hpp"
#include "core/series_buffer.hpp"
#include "obs/instruments.hpp"

namespace hpcmon::serve {

/// Server-wide shed/depth accounting shared by every connection's queue
/// (instruments owned by ServeServer, registered as serve.*).
struct EgressCounters {
  obs::Counter* evicted_bulk = nullptr;
  obs::Counter* evicted_standard = nullptr;
  obs::Counter* coalesced_critical = nullptr;
  obs::Counter* deltas_enqueued = nullptr;
  obs::Gauge* depth_hwm = nullptr;
};

class EgressQueue {
 public:
  /// `cap`: max queued delta/response frames before the door engages.
  EgressQueue(std::size_t cap, EgressCounters counters)
      : cap_(cap == 0 ? 1 : cap), counters_(counters) {}

  /// Enqueue an already-framed response. Never shed (see file comment);
  /// the caller throttles reads when depth() reports over-cap.
  void push_response(std::vector<std::uint8_t> frame_bytes);

  /// Enqueue a subscription delta for `sub_id` carrying `samples` (all of
  /// one priority class). Applies the priority door; returns true when the
  /// delta was queued or coalesced, false when it was shed.
  bool push_delta(std::uint32_t sub_id, core::Priority priority,
                  const core::SampleBatch& samples);

  /// Writer side: move every pending frame's bytes into `out` (appended),
  /// materializing coalesced critical state into fresh delta frames.
  /// Returns the number of frames taken.
  std::size_t take_bytes(std::vector<std::uint8_t>& out);

  /// Queued frames (responses + deltas; excludes coalesced map entries).
  std::size_t depth() const;
  /// True when the door should throttle request reads (depth >= cap).
  bool over_cap() const { return depth() >= cap_; }
  /// Series held in the coalesced critical map across subscriptions.
  std::size_t coalesced_entries() const;

  /// Drop any subscription-addressed state for `sub_id` (unsubscribe/close).
  void forget_subscription(std::uint32_t sub_id);

 private:
  struct Item {
    core::Priority priority = core::Priority::kCritical;
    bool is_delta = false;
    std::vector<std::uint8_t> bytes;
  };

  /// Evict the lowest-priority, oldest delta that is strictly lower-class
  /// than `incoming`; returns true when a slot was freed.
  bool evict_for_locked(core::Priority incoming);
  static std::vector<std::uint8_t> frame_delta(std::uint32_t sub_id,
                                               const core::SampleBatch& batch);

  const std::size_t cap_;
  EgressCounters counters_;
  mutable std::mutex mu_;
  std::deque<Item> items_;
  /// Latest value per (subscription, series) for critical deltas that could
  /// not be queued. Bounded by the matched-series count of the client's
  /// subscriptions, NOT by ingest rate.
  std::map<std::pair<std::uint32_t, core::SeriesId>, core::TimedValue>
      coalesced_;
};

}  // namespace hpcmon::serve
