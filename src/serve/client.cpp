#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "transport/codec.hpp"

namespace hpcmon::serve {

bool ServeClient::connect(std::uint16_t port, int rcvbuf_bytes) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    error_ = std::strerror(errno);
    return false;
  }
  if (rcvbuf_bytes > 0) {
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                 sizeof(rcvbuf_bytes));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    error_ = std::strerror(errno);
    close();
    return false;
  }
  return true;
}

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  assembler_ = WireAssembler();
  pushes_.clear();
}

bool ServeClient::send_all(const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    error_ = std::strerror(errno);
    return false;
  }
  return true;
}

std::optional<WireFrame> ServeClient::read_frame(int timeout_ms) {
  while (true) {
    if (auto frame = assembler_.next()) return frame;
    if (assembler_.errored()) {
      error_ = assembler_.error();
      return std::nullopt;
    }
    if (timeout_ms >= 0) {
      pollfd pfd{fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, timeout_ms);
      if (pr == 0) {
        error_ = "timeout";
        return std::nullopt;
      }
      if (pr < 0 && errno != EINTR) {
        error_ = std::strerror(errno);
        return std::nullopt;
      }
      if (pr < 0) continue;
    }
    std::uint8_t buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      if (!assembler_.feed(buf, static_cast<std::size_t>(n))) {
        error_ = assembler_.error();
        return std::nullopt;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    error_ = n == 0 ? "connection closed" : std::strerror(errno);
    return std::nullopt;
  }
}

std::optional<Push> ServeClient::as_push(WireFrame&& frame) {
  if (frame.type == MsgType::kRollupDelta) {
    Push push;
    push.type = frame.type;
    push.sub_id = frame.request_id;
    if (!decode_rollup_delta(frame.body, push.rollup)) return std::nullopt;
    return push;
  }
  if (frame.type != MsgType::kSnapshot && frame.type != MsgType::kDelta) {
    return std::nullopt;
  }
  transport::Frame tf;
  tf.type = transport::FrameType::kSamples;
  tf.payload = std::move(frame.body);
  auto decoded = transport::decode_samples(tf);
  if (!decoded) return std::nullopt;
  Push push;
  push.type = frame.type;
  push.sub_id = frame.request_id;
  push.batch = std::move(decoded).take();
  return push;
}

core::Result<std::vector<std::uint8_t>> ServeClient::call(
    MsgType type, const std::vector<std::uint8_t>& body) {
  using R = core::Result<std::vector<std::uint8_t>>;
  if (fd_ < 0) return R::error("not connected");
  const std::uint32_t id = next_request_++;
  std::vector<std::uint8_t> bytes;
  append_wire_frame(bytes, type, id, body);
  if (!send_all(bytes)) return R::error(error_);
  while (true) {
    auto frame = read_frame(read_deadline_ms_);
    if (!frame) return R::error(error_);
    if (frame->type == MsgType::kSnapshot || frame->type == MsgType::kDelta ||
        frame->type == MsgType::kRollupDelta) {
      if (auto push = as_push(std::move(*frame))) {
        pushes_.push_back(std::move(*push));
      }
      continue;
    }
    if (frame->request_id != id) continue;  // stale response: skip
    if (frame->type == MsgType::kError) {
      std::string message;
      decode_string(frame->body, message);
      return R::error(message.empty() ? "server error" : message);
    }
    return std::move(frame->body);
  }
}

std::optional<Push> ServeClient::poll_push(int timeout_ms) {
  if (!pushes_.empty()) {
    Push push = std::move(pushes_.front());
    pushes_.pop_front();
    return push;
  }
  if (fd_ < 0) return std::nullopt;
  while (true) {
    auto frame = read_frame(timeout_ms);
    if (!frame) return std::nullopt;
    if (auto push = as_push(std::move(*frame))) return push;
    // A non-push frame here is a stray response; drop it and keep waiting.
  }
}

bool ServeClient::ping() { return call(MsgType::kPing, {}).is_ok(); }

core::Result<std::vector<core::TimedValue>> ServeClient::query_range(
    core::SeriesId series, const core::TimeRange& range) {
  using R = core::Result<std::vector<core::TimedValue>>;
  auto body = call(MsgType::kQueryRange, encode_range_req({series, range}));
  if (!body) return R::error(body.message());
  std::vector<core::TimedValue> points;
  if (!decode_points(body.value(), points)) return R::error("bad reply body");
  return points;
}

core::Result<std::optional<core::TimedValue>> ServeClient::latest(
    core::SeriesId series) {
  using R = core::Result<std::optional<core::TimedValue>>;
  auto body = call(MsgType::kLatest, encode_range_req({series, {}}));
  if (!body) return R::error(body.message());
  std::optional<core::TimedValue> v;
  if (!decode_latest(body.value(), v)) return R::error("bad reply body");
  return v;
}

core::Result<std::optional<double>> ServeClient::aggregate(
    core::SeriesId series, const core::TimeRange& range, store::Agg agg) {
  using R = core::Result<std::optional<double>>;
  auto body =
      call(MsgType::kAggregate, encode_aggregate_req({series, range, agg}));
  if (!body) return R::error(body.message());
  std::optional<double> v;
  if (!decode_scalar(body.value(), v)) return R::error("bad reply body");
  return v;
}

core::Result<std::vector<core::TimedValue>> ServeClient::downsample(
    core::SeriesId series, const core::TimeRange& range, core::Duration bucket,
    store::Agg agg) {
  using R = core::Result<std::vector<core::TimedValue>>;
  auto body = call(MsgType::kDownsample,
                   encode_downsample_req({series, range, bucket, agg}));
  if (!body) return R::error(body.message());
  std::vector<core::TimedValue> points;
  if (!decode_points(body.value(), points)) return R::error("bad reply body");
  return points;
}

core::Result<std::uint32_t> ServeClient::scan_open(core::SeriesId series,
                                                   const core::TimeRange& range,
                                                   std::uint32_t page_points) {
  using R = core::Result<std::uint32_t>;
  auto body = call(MsgType::kScanOpen,
                   encode_scan_open_req({series, range, page_points}));
  if (!body) return R::error(body.message());
  std::uint32_t cursor = 0;
  if (!decode_u32(body.value(), cursor)) return R::error("bad reply body");
  return cursor;
}

core::Result<ScanPage> ServeClient::scan_next(std::uint32_t cursor_id) {
  using R = core::Result<ScanPage>;
  auto body = call(MsgType::kScanNext, encode_u32(cursor_id));
  if (!body) return R::error(body.message());
  ScanPage page;
  if (!decode_scan_page(body.value(), page)) return R::error("bad reply body");
  return page;
}

bool ServeClient::scan_close(std::uint32_t cursor_id) {
  return call(MsgType::kScanClose, encode_u32(cursor_id)).is_ok();
}

core::Result<RollupStatMsg> ServeClient::rollup_query(
    const std::string& component, const std::string& metric) {
  using R = core::Result<RollupStatMsg>;
  auto body = call(MsgType::kRollupQuery,
                   encode_rollup_req({component, metric}));
  if (!body) return R::error(body.message());
  RollupStatMsg msg;
  if (!decode_rollup_stat(body.value(), msg)) return R::error("bad reply body");
  return msg;
}

core::Result<RollupSubAck> ServeClient::rollup_sub(
    const std::string& component, const std::string& metric) {
  using R = core::Result<RollupSubAck>;
  auto body =
      call(MsgType::kRollupSub, encode_rollup_req({component, metric}));
  if (!body) return R::error(body.message());
  RollupSubAck ack;
  if (!decode_rollup_sub_ack(body.value(), ack)) {
    return R::error("bad reply body");
  }
  return ack;
}

bool ServeClient::rollup_unsub(std::uint32_t sub_id) {
  return call(MsgType::kRollupUnsub, encode_u32(sub_id)).is_ok();
}

core::Result<SubscribeAck> ServeClient::subscribe(const std::string& pattern) {
  using R = core::Result<SubscribeAck>;
  auto body = call(MsgType::kSubscribe, encode_subscribe_req({pattern}));
  if (!body) return R::error(body.message());
  SubscribeAck ack;
  if (!decode_subscribe_ack(body.value(), ack)) {
    return R::error("bad reply body");
  }
  return ack;
}

bool ServeClient::unsubscribe(std::uint32_t sub_id) {
  return call(MsgType::kUnsubscribe, encode_u32(sub_id)).is_ok();
}

core::Result<std::string> ServeClient::status() {
  using R = core::Result<std::string>;
  auto body = call(MsgType::kStatus, {});
  if (!body) return R::error(body.message());
  std::string text;
  if (!decode_string(body.value(), text)) return R::error("bad reply body");
  return text;
}

bool ServeClient::set_mode(std::optional<core::DegradationMode> mode) {
  return call(MsgType::kSetMode, encode_set_mode(mode)).is_ok();
}

bool ServeClient::wal_rotate() {
  return call(MsgType::kWalRotate, {}).is_ok();
}

core::Result<std::vector<ConnInfo>> ServeClient::list_conns() {
  using R = core::Result<std::vector<ConnInfo>>;
  auto body = call(MsgType::kListConns, {});
  if (!body) return R::error(body.message());
  std::vector<ConnInfo> conns;
  if (!decode_conn_list(body.value(), conns)) return R::error("bad reply body");
  return conns;
}

}  // namespace hpcmon::serve
