#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "core/strings.hpp"
#include "core/topic.hpp"
#include "serve/sockio.hpp"
#include "transport/codec.hpp"

namespace hpcmon::serve {

namespace {

/// StageTimer-style RAII span into a serve histogram (the serve tier has
/// its own request/fanout stages rather than widening the pipeline enum).
std::int64_t steady_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class Span {
 public:
  explicit Span(obs::Histogram& hist)
      : hist_(hist), t0_(std::chrono::steady_clock::now()) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    hist_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count()));
  }

 private:
  obs::Histogram& hist_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace

ServeServer::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

ServeServer::ServeServer(ServeConfig config, ServeHooks hooks)
    : config_(std::move(config)), hooks_(std::move(hooks)) {
  attach_to(config_.obs != nullptr ? *config_.obs : own_obs_);
}

ServeServer::~ServeServer() { stop(); }

void ServeServer::attach_to(obs::ObsRegistry& registry) const {
  registry.attach({"serve.connections", "conns", "live client connections"},
                  &connections_);
  registry.attach({"serve.connections_total", "conns",
                   "connections accepted since start"},
                  &connections_total_);
  registry.attach({"serve.subscriptions", "subs", "live subscriptions"},
                  &subscriptions_);
  registry.attach({"serve.requests", "reqs", "requests handled"}, &requests_);
  registry.attach(
      {"serve.request_errors", "reqs", "requests answered with kError"},
      &request_errors_);
  registry.attach({"serve.bad_frames", "frames",
                   "protocol violations (connection dropped)"},
                  &bad_frames_);
  registry.attach({"serve.bytes_in", "bytes", "bytes read from clients"},
                  &bytes_in_);
  registry.attach({"serve.bytes_out", "bytes", "bytes written to clients"},
                  &bytes_out_);
  registry.attach({"serve.deltas", "frames",
                   "subscription delta frames enqueued"},
                  &deltas_enqueued_);
  registry.attach({"serve.egress_evicted_bulk", "frames",
                   "bulk deltas shed by full egress queues (first to go)"},
                  &evicted_bulk_);
  registry.attach({"serve.egress_evicted_standard", "frames",
                   "standard deltas shed by full egress queues"},
                  &evicted_standard_);
  registry.attach(
      {"serve.egress_coalesced_critical", "samples",
       "critical samples folded into latest-state instead of dropped"},
      &coalesced_critical_);
  registry.attach({"serve.reads_paused", "conns",
                   "times a connection's reads were paused (egress over cap)"},
                  &reads_paused_);
  registry.attach({"serve.idle_closed", "conns",
                   "connections reaped by the idle deadline"},
                  &idle_closed_);
  registry.attach({"serve.relay_applied_batches", "batches",
                   "relay appends applied (novel (source, seq))"},
                  &relay_applied_batches_);
  registry.attach({"serve.relay_applied_samples", "samples",
                   "samples applied through the relay tap"},
                  &relay_applied_samples_);
  registry.attach({"serve.relay_duplicates", "batches",
                   "relay appends acked without re-apply (already applied)"},
                  &relay_duplicates_);
  registry.attach({"serve.relay_window_rejects", "batches",
                   "relay appends beyond the dedupe window (resent later)"},
                  &relay_window_rejects_);
  registry.attach({"serve.relay_sources", "sources",
                   "relay sources with dedupe state"},
                  &relay_sources_gauge_);
  registry.attach({"serve.rollup_queries", "reqs",
                   "kRollupQuery requests answered from the rollup tree"},
                  &rollup_queries_);
  registry.attach({"serve.rollup_deltas", "frames",
                   "kRollupDelta pushes enqueued to subscribers"},
                  &rollup_deltas_);
  registry.attach({"serve.rollup_subscriptions", "subs",
                   "live rollup-level subscriptions"},
                  &rollup_subs_gauge_);
  registry.attach({"serve.egress_depth_hwm", "frames",
                   "high-water mark of any connection's egress queue"},
                  &egress_depth_hwm_);
  registry.attach({"serve.request_us", "us", "request handling latency"},
                  &request_us_);
  registry.attach({"serve.fanout_us", "us",
                   "publish_batch subscription fan-out latency"},
                  &delta_fanout_us_);
}

bool ServeServer::start() {
  if (running_) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    error_ = core::strformat("socket: %s", std::strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 128) < 0) {
    error_ = core::strformat("bind/listen: %s", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    error_ = core::strformat("epoll/eventfd: %s", std::strerror(errno));
    stop();
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  stopping_ = false;
  const std::size_t n_writers = std::max<std::size_t>(1, config_.writer_threads);
  writers_.clear();
  for (std::size_t i = 0; i < n_writers; ++i) {
    writers_.push_back(std::make_unique<Writer>());
  }
  for (std::size_t i = 0; i < n_writers; ++i) {
    writers_[i]->thread = std::thread([this, i] { writer_loop(i); });
  }
  reactor_ = std::thread([this] { reactor_loop(); });
  running_ = true;
  return true;
}

void ServeServer::stop() {
  if (stopping_.exchange(true)) {
    // Second caller (destructor after explicit stop): nothing left to join.
  }
  wake_reactor();
  if (reactor_.joinable()) reactor_.join();
  for (auto& w : writers_) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->nudged = true;
    }
    w->cv.notify_all();
    if (w->thread.joinable()) w->thread.join();
  }
  writers_.clear();
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    subs_.clear();
    subscriptions_.set(0);
  }
  conns_.clear();  // destructors close the fds
  connections_.set(0);
  for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
  running_ = false;
}

void ServeServer::wake_reactor() {
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] auto n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void ServeServer::notify_writer(std::uint32_t conn_id) {
  auto& w = *writers_[conn_id % writers_.size()];
  {
    std::lock_guard<std::mutex> lock(w.mu);
    w.nudged = true;
  }
  w.cv.notify_one();
}

void ServeServer::reactor_loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stopping_) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, 10);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < std::max(n, 0); ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        accept_ready();
        continue;
      }
      if (fd == wake_fd_) {
        std::uint64_t drain = 0;
        [[maybe_unused]] auto r = ::read(wake_fd_, &drain, sizeof(drain));
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      auto conn = it->second;  // keep alive across close_conn
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_conn(conn);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) read_ready(conn);
    }
    sweep_closed();
    if (config_.idle_timeout_ms > 0) reap_idle();
    // Resume paused connections whose writer drained the egress queue.
    for (auto& [fd, conn] : conns_) {
      if (conn->paused.load(std::memory_order_relaxed)) {
        update_pause_state(conn);
      }
    }
  }
}

void ServeServer::reap_idle() {
  const std::int64_t now = steady_ms();
  std::vector<std::shared_ptr<Connection>> idle;
  for (auto& [fd, conn] : conns_) {
    if (now - conn->last_activity_ms.load(std::memory_order_relaxed) >
        config_.idle_timeout_ms) {
      idle.push_back(conn);
    }
  }
  for (auto& conn : idle) {
    idle_closed_.add();
    close_conn(conn);
  }
}

void ServeServer::accept_ready() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: back to epoll
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (config_.sndbuf_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.sndbuf_bytes,
                   sizeof(config_.sndbuf_bytes));
    }
    EgressCounters counters;
    counters.evicted_bulk = &evicted_bulk_;
    counters.evicted_standard = &evicted_standard_;
    counters.coalesced_critical = &coalesced_critical_;
    counters.deltas_enqueued = &deltas_enqueued_;
    counters.depth_hwm = &egress_depth_hwm_;
    auto conn = std::make_shared<Connection>(fd, next_conn_id_++,
                                             config_.egress_cap, counters);
    conn->assembler = WireAssembler(config_.max_frame_bytes);
    conn->last_activity_ms.store(steady_ms(), std::memory_order_relaxed);
    conns_[fd] = conn;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    auto& w = *writers_[conn->id % writers_.size()];
    {
      std::lock_guard<std::mutex> lock(w.mu);
      w.conns.push_back(conn);
    }
    connections_total_.add();
    connections_.set(static_cast<double>(conns_.size()));
  }
}

void ServeServer::read_ready(const std::shared_ptr<Connection>& conn) {
  std::uint8_t buf[64 * 1024];
  while (!conn->closed) {
    const ssize_t n =
        faulty_recv(conn->fd, buf, sizeof(buf), config_.socket_faults);
    if (n > 0) {
      bytes_in_.add(static_cast<std::uint64_t>(n));
      conn->last_activity_ms.store(steady_ms(), std::memory_order_relaxed);
      if (!conn->assembler.feed(buf, static_cast<std::size_t>(n))) {
        bad_frames_.add();
        close_conn(conn);
        return;
      }
      while (auto frame = conn->assembler.next()) {
        handle_frame(conn, *frame);
        if (conn->assembler.errored()) {
          bad_frames_.add();
          close_conn(conn);
          return;
        }
      }
      continue;
    }
    if (n == 0) {
      close_conn(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_conn(conn);
    return;
  }
  update_pause_state(conn);
}

void ServeServer::update_pause_state(const std::shared_ptr<Connection>& conn) {
  const bool paused = conn->paused.load(std::memory_order_relaxed);
  if (!paused && conn->egress.over_cap()) {
    epoll_event ev{};
    ev.events = 0;  // stay registered, stop reading: TCP backpressure
    ev.data.fd = conn->fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
    conn->paused.store(true, std::memory_order_relaxed);
    reads_paused_.add();
  } else if (paused && conn->egress.depth() <= config_.egress_cap / 2) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn->fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
    conn->paused.store(false, std::memory_order_relaxed);
  }
}

void ServeServer::close_conn(const std::shared_ptr<Connection>& conn) {
  if (conns_.erase(conn->fd) == 0) return;  // already closed
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  conn->closed = true;
  auto& w = *writers_[conn->id % writers_.size()];
  {
    std::lock_guard<std::mutex> lock(w.mu);
    w.conns.erase(std::remove(w.conns.begin(), w.conns.end(), conn),
                  w.conns.end());
  }
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    subs_.erase(std::remove_if(subs_.begin(), subs_.end(),
                               [&](const Subscription& s) {
                                 return s.conn == conn;
                               }),
                subs_.end());
    subscriptions_.set(static_cast<double>(subs_.size()));
    rollup_subs_.erase(std::remove_if(rollup_subs_.begin(),
                                      rollup_subs_.end(),
                                      [&](const RollupSub& s) {
                                        return s.conn == conn;
                                      }),
                       rollup_subs_.end());
    rollup_sub_count_.store(rollup_subs_.size(), std::memory_order_relaxed);
    rollup_subs_gauge_.set(static_cast<double>(rollup_subs_.size()));
  }
  connections_.set(static_cast<double>(conns_.size()));
}

void ServeServer::sweep_closed() {
  // Writers flag dead sockets; the reactor owns the maps, so it finalizes.
  std::vector<std::shared_ptr<Connection>> dead;
  for (auto& [fd, conn] : conns_) {
    if (conn->closed) dead.push_back(conn);
  }
  for (auto& conn : dead) {
    conn->closed = false;  // let close_conn's erase run once
    close_conn(conn);
    conn->closed = true;
  }
}

void ServeServer::reply(const std::shared_ptr<Connection>& conn, MsgType type,
                        std::uint32_t request_id,
                        const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> bytes;
  append_wire_frame(bytes, type, request_id, body);
  conn->egress.push_response(std::move(bytes));
  notify_writer(conn->id);
}

void ServeServer::reply_error(const std::shared_ptr<Connection>& conn,
                              std::uint32_t request_id,
                              const std::string& message) {
  request_errors_.add();
  reply(conn, MsgType::kError, request_id, encode_string(message));
}

void ServeServer::handle_frame(const std::shared_ptr<Connection>& conn,
                               const WireFrame& frame) {
  Span span(request_us_);
  requests_.add();
  conn->requests.fetch_add(1, std::memory_order_relaxed);
  const auto id = frame.request_id;
  switch (frame.type) {
    case MsgType::kPing:
      reply(conn, MsgType::kOk, id, {});
      return;
    case MsgType::kQueryRange: {
      RangeReq req;
      if (!decode_range_req(frame.body, req) || !hooks_.query_range) {
        reply_error(conn, id, "bad query_range request");
        return;
      }
      reply(conn, MsgType::kOk, id,
            encode_points(hooks_.query_range(req.series, req.range)));
      return;
    }
    case MsgType::kAggregate: {
      AggregateReq req;
      if (!decode_aggregate_req(frame.body, req) || !hooks_.aggregate) {
        reply_error(conn, id, "bad aggregate request");
        return;
      }
      reply(conn, MsgType::kOk, id,
            encode_scalar(hooks_.aggregate(req.series, req.range, req.agg)));
      return;
    }
    case MsgType::kDownsample: {
      DownsampleReq req;
      if (!decode_downsample_req(frame.body, req) || !hooks_.downsample) {
        reply_error(conn, id, "bad downsample request");
        return;
      }
      reply(conn, MsgType::kOk, id,
            encode_points(hooks_.downsample(req.series, req.range, req.bucket,
                                            req.agg)));
      return;
    }
    case MsgType::kLatest: {
      RangeReq req;  // range ignored; series-only body reuses the layout
      if (!decode_range_req(frame.body, req) || !hooks_.latest) {
        reply_error(conn, id, "bad latest request");
        return;
      }
      reply(conn, MsgType::kOk, id, encode_latest(hooks_.latest(req.series)));
      return;
    }
    case MsgType::kScanOpen: {
      ScanOpenReq req;
      if (!decode_scan_open_req(frame.body, req) || !hooks_.scan) {
        reply_error(conn, id, "bad scan_open request");
        return;
      }
      const std::uint32_t cursor_id = conn->next_cursor++;
      ScanCursor cur;
      cur.series = req.series;
      cur.range = req.range;
      cur.next_begin = req.range.begin;
      cur.page_points = std::max<std::uint32_t>(
          1, std::min<std::uint32_t>(
                 req.page_points,
                 static_cast<std::uint32_t>(config_.scan_page_cap)));
      conn->cursors[cursor_id] = cur;
      reply(conn, MsgType::kOk, id, encode_u32(cursor_id));
      return;
    }
    case MsgType::kScanNext: {
      std::uint32_t cursor_id = 0;
      if (!decode_u32(frame.body, cursor_id)) {
        reply_error(conn, id, "bad scan_next request");
        return;
      }
      auto it = conn->cursors.find(cursor_id);
      if (it == conn->cursors.end()) {
        reply_error(conn, id, "unknown scan cursor");
        return;
      }
      ScanCursor& cur = it->second;
      ScanPage page;
      page.points.reserve(cur.page_points);
      hooks_.scan(cur.series, {cur.next_begin, cur.range.end},
                  [&](const core::TimedValue& tv) {
                    page.points.push_back(tv);
                    return page.points.size() < cur.page_points;
                  });
      page.done = page.points.size() < cur.page_points;
      if (page.done) {
        conn->cursors.erase(it);  // exhausted cursors auto-close
      } else {
        cur.next_begin = page.points.back().time + 1;
      }
      reply(conn, MsgType::kOk, id, encode_scan_page(page));
      return;
    }
    case MsgType::kScanClose: {
      std::uint32_t cursor_id = 0;
      if (!decode_u32(frame.body, cursor_id)) {
        reply_error(conn, id, "bad scan_close request");
        return;
      }
      conn->cursors.erase(cursor_id);
      reply(conn, MsgType::kOk, id, {});
      return;
    }
    case MsgType::kRelayHello: {
      RelayHello hello;
      if (!decode_relay_hello(frame.body, hello) || !hooks_.relay_apply) {
        reply_error(conn, id, "bad relay hello");
        return;
      }
      RelayAck ack;
      {
        std::lock_guard<std::mutex> lock(relay_mu_);
        ack.watermark = relay_sources_[hello.source_id].watermark;
        relay_sources_gauge_.set(static_cast<double>(relay_sources_.size()));
      }
      reply(conn, MsgType::kOk, id, encode_relay_ack(ack));
      return;
    }
    case MsgType::kRelayAppend:
      handle_relay_append(conn, frame);
      return;
    case MsgType::kSubscribe:
      handle_subscribe(conn, frame);
      return;
    case MsgType::kUnsubscribe: {
      std::uint32_t sub_id = 0;
      if (!decode_u32(frame.body, sub_id)) {
        reply_error(conn, id, "bad unsubscribe request");
        return;
      }
      {
        std::lock_guard<std::mutex> lock(subs_mu_);
        subs_.erase(std::remove_if(subs_.begin(), subs_.end(),
                                   [&](const Subscription& s) {
                                     return s.id == sub_id && s.conn == conn;
                                   }),
                    subs_.end());
        subscriptions_.set(static_cast<double>(subs_.size()));
      }
      conn->egress.forget_subscription(sub_id);
      reply(conn, MsgType::kOk, id, {});
      return;
    }
    case MsgType::kRollupQuery: {
      RollupReq req;
      if (!decode_rollup_req(frame.body, req) || !hooks_.rollup_query) {
        reply_error(conn, id, "bad rollup query");
        return;
      }
      rollup_queries_.add();
      RollupStatMsg msg;
      if (const auto s = hooks_.rollup_query(req.component, req.metric)) {
        msg.found = true;
        msg.stat = *s;
      }
      reply(conn, MsgType::kOk, id, encode_rollup_stat(msg));
      return;
    }
    case MsgType::kRollupSub: {
      RollupReq req;
      if (!decode_rollup_req(frame.body, req) || !hooks_.rollup_query) {
        reply_error(conn, id, "bad rollup subscribe");
        return;
      }
      rollup_queries_.add();
      RollupSubAck ack;
      if (const auto s = hooks_.rollup_query(req.component, req.metric)) {
        ack.current.found = true;
        ack.current.stat = *s;
      }
      {
        std::lock_guard<std::mutex> lock(subs_mu_);
        RollupSub sub;
        sub.id = next_sub_id_++;
        sub.conn = conn;
        sub.component = std::move(req.component);
        sub.metric = std::move(req.metric);
        ack.sub_id = sub.id;
        rollup_subs_.push_back(std::move(sub));
        rollup_sub_count_.store(rollup_subs_.size(),
                                std::memory_order_relaxed);
        rollup_subs_gauge_.set(static_cast<double>(rollup_subs_.size()));
      }
      reply(conn, MsgType::kOk, id, encode_rollup_sub_ack(ack));
      return;
    }
    case MsgType::kRollupUnsub: {
      std::uint32_t sub_id = 0;
      if (!decode_u32(frame.body, sub_id)) {
        reply_error(conn, id, "bad rollup unsubscribe");
        return;
      }
      {
        std::lock_guard<std::mutex> lock(subs_mu_);
        rollup_subs_.erase(
            std::remove_if(rollup_subs_.begin(), rollup_subs_.end(),
                           [&](const RollupSub& s) {
                             return s.id == sub_id && s.conn == conn;
                           }),
            rollup_subs_.end());
        rollup_sub_count_.store(rollup_subs_.size(),
                                std::memory_order_relaxed);
        rollup_subs_gauge_.set(static_cast<double>(rollup_subs_.size()));
      }
      reply(conn, MsgType::kOk, id, {});
      return;
    }
    case MsgType::kStatus: {
      if (!hooks_.status) {
        reply_error(conn, id, "no status hook");
        return;
      }
      reply(conn, MsgType::kOk, id, encode_string(hooks_.status()));
      return;
    }
    case MsgType::kSetMode: {
      std::optional<core::DegradationMode> mode;
      if (!decode_set_mode(frame.body, mode)) {
        reply_error(conn, id, "bad set_mode request");
        return;
      }
      if (!hooks_.set_mode || !hooks_.set_mode(mode)) {
        reply_error(conn, id, "degradation override unavailable");
        return;
      }
      reply(conn, MsgType::kOk, id, {});
      return;
    }
    case MsgType::kWalRotate: {
      if (!hooks_.wal_rotate || !hooks_.wal_rotate()) {
        reply_error(conn, id, "WAL rotate unavailable");
        return;
      }
      reply(conn, MsgType::kOk, id, {});
      return;
    }
    case MsgType::kListConns: {
      std::vector<ConnInfo> rows;
      rows.reserve(conns_.size());
      for (const auto& [fd, c] : conns_) {
        ConnInfo info;
        info.id = c->id;
        info.requests = c->requests.load(std::memory_order_relaxed);
        info.tx_bytes = c->tx_bytes.load(std::memory_order_relaxed);
        info.egress_depth = static_cast<std::uint32_t>(c->egress.depth());
        info.subscriptions = 0;
        {
          std::lock_guard<std::mutex> lock(subs_mu_);
          for (const auto& s : subs_) {
            if (s.conn == c) ++info.subscriptions;
          }
        }
        rows.push_back(info);
      }
      reply(conn, MsgType::kOk, id, encode_conn_list(rows));
      return;
    }
    default:
      reply_error(conn, id, core::strformat("unknown message type %u",
                                            static_cast<unsigned>(frame.type)));
      return;
  }
}

void ServeServer::handle_relay_append(const std::shared_ptr<Connection>& conn,
                                      const WireFrame& frame) {
  RelayAppend req;
  if (!decode_relay_append(frame.body, req) || !hooks_.relay_apply ||
      req.seq == 0) {
    reply_error(conn, frame.request_id, "bad relay append");
    return;
  }
  RelayAck ack;
  std::lock_guard<std::mutex> lock(relay_mu_);
  RelaySource& src = relay_sources_[req.source_id];
  if (req.seq <= src.watermark || src.applied_above.count(req.seq) != 0) {
    // At-least-once resend of something already applied: ack, never
    // re-apply — this is the "exactly-applied" half of the contract.
    ack.duplicate = true;
    relay_duplicates_.add();
  } else if (req.seq >
             src.watermark +
                 std::max<std::size_t>(1, config_.relay_dedupe_window)) {
    // Beyond the bounded window: acking it would either grow dedupe state
    // without bound or (worse) force the watermark past seqs never seen.
    // Ack at the current watermark without applying; the client holds the
    // batch and resends once the watermark catches up. The window is
    // floored at 1 — a zero window would refuse even the next in-order
    // seq and livelock the client against its own resends.
    relay_window_rejects_.add();
  } else {
    transport::Frame f;
    f.type = transport::FrameType::kSamples;
    f.priority = req.priority;
    f.payload = std::move(req.payload);
    auto decoded = transport::decode_samples(f);
    if (!decoded.is_ok()) {
      // A corrupt payload is a protocol violation, not an ack: the client
      // must not advance its watermark past data the server never applied.
      reply_error(conn, frame.request_id, "bad relay payload");
      return;
    }
    const std::size_t applied =
        hooks_.relay_apply(decoded.value(), req.priority);
    src.applied_above.insert(req.seq);
    while (src.applied_above.erase(src.watermark + 1) != 0) ++src.watermark;
    ack.applied = true;
    relay_applied_batches_.add();
    relay_applied_samples_.add(applied);
  }
  ack.watermark = src.watermark;
  relay_sources_gauge_.set(static_cast<double>(relay_sources_.size()));
  reply(conn, MsgType::kOk, frame.request_id, encode_relay_ack(ack));
}

void ServeServer::handle_subscribe(const std::shared_ptr<Connection>& conn,
                                   const WireFrame& frame) {
  SubscribeReq req;
  if (!decode_subscribe_req(frame.body, req) || hooks_.registry == nullptr ||
      !hooks_.latest) {
    reply_error(conn, frame.request_id, "bad subscribe request");
    return;
  }
  std::lock_guard<std::mutex> lock(subs_mu_);
  Subscription sub;
  sub.id = next_sub_id_++;
  sub.conn = conn;
  sub.pattern = req.pattern;
  // Match every known series now (the cache handles ones born later).
  SubscribeAck ack;
  ack.sub_id = sub.id;
  core::SampleBatch snapshot;
  const auto count = hooks_.registry->series_count();
  sub.match_cache.assign(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    const auto sid = core::SeriesId{static_cast<std::uint32_t>(i)};
    const auto name = hooks_.registry->series_name(sid);
    const bool hit = core::topic_match(sub.pattern, name);
    sub.match_cache[i] = hit ? 1 : 2;
    if (!hit) continue;
    ack.matched.emplace_back(sid, name);
    if (const auto tv = hooks_.latest(sid)) {
      snapshot.samples.push_back({sid, tv->time, tv->value});
      snapshot.sweep_time = std::max(snapshot.sweep_time, tv->time);
    }
  }
  // Ack, then snapshot, then (once registered) deltas: all three ride the
  // same FIFO egress queue, so the client provably sees snapshot-then-deltas.
  reply(conn, MsgType::kOk, frame.request_id, encode_subscribe_ack(ack));
  std::vector<std::uint8_t> snap_bytes;
  append_wire_frame(snap_bytes, MsgType::kSnapshot, sub.id,
                    transport::encode_samples(snapshot).payload);
  conn->egress.push_response(std::move(snap_bytes));
  notify_writer(conn->id);
  subs_.push_back(std::move(sub));
  subscriptions_.set(static_cast<double>(subs_.size()));
}

bool ServeServer::sub_matches(Subscription& sub, core::SeriesId id) {
  const auto idx = static_cast<std::size_t>(core::raw(id));
  if (idx >= sub.match_cache.size()) sub.match_cache.resize(idx + 1, 0);
  if (sub.match_cache[idx] == 0) {
    const bool hit =
        core::topic_match(sub.pattern, hooks_.registry->series_name(id));
    sub.match_cache[idx] = hit ? 1 : 2;
  }
  return sub.match_cache[idx] == 1;
}

std::size_t ServeServer::publish_batch(const core::SampleBatch& batch) {
  if (batch.samples.empty() || hooks_.registry == nullptr) return 0;
  std::lock_guard<std::mutex> lock(subs_mu_);
  if (subs_.empty()) return 0;
  Span span(delta_fanout_us_);
  // Resolve (and memoize) each sample's priority class once per batch.
  const auto priority_of = [this](core::SeriesId id) {
    const auto idx = static_cast<std::size_t>(core::raw(id));
    if (idx >= pri_cache_.size()) pri_cache_.resize(idx + 1, 255);
    if (pri_cache_[idx] == 255) {
      pri_cache_[idx] =
          static_cast<std::uint8_t>(hooks_.registry->series_priority(id));
    }
    return static_cast<core::Priority>(pri_cache_[idx]);
  };
  std::size_t enqueued = 0;
  for (auto& sub : subs_) {
    if (sub.conn->closed) continue;
    // One delta per priority class: the egress door reasons about a queued
    // frame's class as a whole (same shape as ingest's PrioritizedBatch).
    std::array<core::SampleBatch, core::kPriorityClasses> by_class;
    bool any = false;
    for (const auto& s : batch.samples) {
      if (!sub_matches(sub, s.series)) continue;
      auto& cls = by_class[static_cast<std::size_t>(priority_of(s.series))];
      cls.samples.push_back(s);
      cls.sweep_time = batch.sweep_time;
      any = true;
    }
    if (!any) continue;
    for (std::size_t c = 0; c < core::kPriorityClasses; ++c) {
      if (by_class[c].samples.empty()) continue;
      if (sub.conn->egress.push_delta(sub.id, static_cast<core::Priority>(c),
                                      by_class[c])) {
        ++enqueued;
      }
    }
    notify_writer(sub.conn->id);
  }
  return enqueued;
}

bool ServeServer::has_rollup_subs() const {
  return rollup_sub_count_.load(std::memory_order_relaxed) > 0;
}

std::size_t ServeServer::publish_rollup(std::span<const RollupDelta> changed) {
  if (changed.empty()) return 0;
  std::lock_guard<std::mutex> lock(subs_mu_);
  if (rollup_subs_.empty()) return 0;
  std::size_t enqueued = 0;
  for (const auto& d : changed) {
    for (auto& sub : rollup_subs_) {
      if (sub.conn->closed) continue;
      if (sub.component != d.component || sub.metric != d.metric) continue;
      std::vector<std::uint8_t> bytes;
      append_wire_frame(bytes, MsgType::kRollupDelta, sub.id,
                        encode_rollup_delta(d));
      sub.conn->egress.push_response(std::move(bytes));
      notify_writer(sub.conn->id);
      rollup_deltas_.add();
      ++enqueued;
    }
  }
  return enqueued;
}

void ServeServer::writer_loop(std::size_t writer_index) {
  auto& w = *writers_[writer_index];
  std::vector<std::shared_ptr<Connection>> conns;
  while (!stopping_) {
    {
      std::unique_lock<std::mutex> lock(w.mu);
      w.cv.wait_for(lock, std::chrono::milliseconds(10),
                    [&] { return w.nudged || stopping_.load(); });
      w.nudged = false;
      conns = w.conns;
    }
    for (auto& conn : conns) {
      if (conn->closed) continue;
      // Refill the write buffer from the egress queue when drained.
      if (conn->woff == conn->wbuf.size()) {
        conn->wbuf.clear();
        conn->woff = 0;
        conn->egress.take_bytes(conn->wbuf);
      }
      while (conn->woff < conn->wbuf.size() && !conn->closed) {
        const ssize_t n =
            faulty_send(conn->fd, conn->wbuf.data() + conn->woff,
                        conn->wbuf.size() - conn->woff, config_.socket_faults);
        if (n > 0) {
          conn->woff += static_cast<std::size_t>(n);
          conn->tx_bytes.fetch_add(static_cast<std::uint64_t>(n),
                                   std::memory_order_relaxed);
          bytes_out_.add(static_cast<std::uint64_t>(n));
          conn->last_activity_ms.store(steady_ms(),
                                       std::memory_order_relaxed);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        conn->closed = true;  // dead peer: reactor finalizes on next sweep
        wake_reactor();
        break;
      }
      // A paused connection whose queue just drained: nudge the reactor so
      // it re-arms EPOLLIN without waiting for its poll timeout.
      if (conn->paused.load(std::memory_order_relaxed) &&
          !conn->egress.over_cap()) {
        wake_reactor();
      }
    }
  }
}

ServeStats ServeServer::stats() const {
  ServeStats s;
  s.connections_total = connections_total_.value();
  s.requests = requests_.value();
  s.request_errors = request_errors_.value();
  s.bad_frames = bad_frames_.value();
  s.bytes_in = bytes_in_.value();
  s.bytes_out = bytes_out_.value();
  s.deltas_enqueued = deltas_enqueued_.value();
  s.egress_evicted_bulk = evicted_bulk_.value();
  s.egress_evicted_standard = evicted_standard_.value();
  s.egress_coalesced_critical = coalesced_critical_.value();
  s.reads_paused = reads_paused_.value();
  s.idle_closed = idle_closed_.value();
  s.relay_applied_batches = relay_applied_batches_.value();
  s.relay_applied_samples = relay_applied_samples_.value();
  s.relay_duplicates = relay_duplicates_.value();
  s.relay_window_rejects = relay_window_rejects_.value();
  s.rollup_queries = rollup_queries_.value();
  s.rollup_deltas = rollup_deltas_.value();
  s.connections = static_cast<std::size_t>(connections_.value());
  s.subscriptions = static_cast<std::size_t>(subscriptions_.value());
  s.rollup_subscriptions =
      static_cast<std::size_t>(rollup_subs_gauge_.value());
  s.relay_sources = static_cast<std::size_t>(relay_sources_gauge_.value());
  return s;
}

}  // namespace hpcmon::serve
