// Wire framing for the serve tier: length-prefixed binary messages.
//
// The paper's Sec. IV-A complaint is monitoring data trapped behind
// proprietary transports; hpcmon::serve puts the documented binary codec
// (transport/codec.hpp) on a socket behind the simplest possible framing:
//
//   u32 length | u8 msg type | u32 request id | body...
//
// `length` counts everything after itself (type + id + body), little-endian
// like every other hpcmon codec. The body of each message type is encoded
// with transport::ByteWriter primitives (protocol.hpp); sample payloads are
// verbatim transport::encode_samples() bytes, so a serve frame carrying
// telemetry is the SAME bytes the in-process router moves.
//
// A socket is an adversarial input: WireAssembler reassembles frames from
// arbitrary read() fragmentation, rejects declared lengths above
// kMaxWireFrameBytes before allocating anything (no unbounded allocation
// from a hostile u32), and reports malformed input as a hard error so the
// connection can be dropped.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace hpcmon::serve {

/// Message types on the wire. Client->server requests are < 64;
/// server->client messages are >= 64. Every request gets exactly one kOk or
/// kError response carrying its request id; kSnapshot/kDelta are
/// server-initiated pushes (request id = owning subscription id).
enum class MsgType : std::uint8_t {
  // Requests.
  kPing = 1,
  kQueryRange = 2,
  kAggregate = 3,
  kDownsample = 4,
  kLatest = 5,
  kScanOpen = 6,
  kScanNext = 7,
  kScanClose = 8,
  kSubscribe = 9,
  kUnsubscribe = 10,
  // Admin surface.
  kStatus = 16,
  kSetMode = 17,
  kWalRotate = 18,
  kListConns = 19,
  // Relay tier (cross-stack forwarding, protocol.hpp / relay/client.hpp).
  kRelayHello = 24,
  kRelayAppend = 25,
  // Rollup tree (O(depth) topology aggregates; rollup/tree.hpp).
  kRollupQuery = 26,
  kRollupSub = 27,
  kRollupUnsub = 28,
  // Responses / pushes.
  kOk = 64,
  kError = 65,
  kSnapshot = 66,
  kDelta = 67,
  kRollupDelta = 68,
};

/// One parsed wire frame: type + request id + raw body bytes.
struct WireFrame {
  MsgType type = MsgType::kPing;
  std::uint32_t request_id = 0;
  std::vector<std::uint8_t> body;
};

/// Hard cap on a declared frame length (type + id + body). A frame header
/// declaring more is a protocol violation, not a large message.
inline constexpr std::uint32_t kMaxWireFrameBytes = 8u << 20;  // 8 MiB
/// Bytes of header before the body: length(4) + type(1) + request id(4).
inline constexpr std::size_t kWireHeaderBytes = 9;

/// Serialize one frame (header + body) onto `out`.
void append_wire_frame(std::vector<std::uint8_t>& out, MsgType type,
                       std::uint32_t request_id,
                       const std::vector<std::uint8_t>& body);

/// Incremental frame reassembly over a byte stream. Feed it whatever read()
/// returned; pop complete frames until nullopt. Once a declared length
/// exceeds kMaxWireFrameBytes (or a frame is shorter than type+id) the
/// assembler enters a sticky error state — the caller must drop the
/// connection, because frame boundaries are unrecoverable.
class WireAssembler {
 public:
  explicit WireAssembler(std::uint32_t max_frame_bytes = kMaxWireFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Append raw bytes from the socket. Returns false (and consumes nothing
  /// more) when the stream is in the error state.
  bool feed(const std::uint8_t* data, std::size_t n);

  /// Extract the next complete frame, if any.
  std::optional<WireFrame> next();

  bool errored() const { return errored_; }
  const std::string& error() const { return error_; }
  /// Bytes buffered awaiting a complete frame (bounded by max_frame_bytes_).
  std::size_t buffered() const { return buf_.size(); }

 private:
  void fail(std::string why);

  std::uint32_t max_frame_bytes_;
  std::vector<std::uint8_t> buf_;
  bool errored_ = false;
  std::string error_;
};

}  // namespace hpcmon::serve
