#include "serve/protocol.hpp"

#include "transport/codec.hpp"

namespace hpcmon::serve {

using transport::ByteReader;
using transport::ByteWriter;

namespace {
// Adversarial-count guard: a decoder never reserves more entries than the
// remaining bytes could possibly hold (smallest element is 8 bytes), so a
// hostile count cannot force a large allocation before the underrun check.
std::size_t bounded_reserve(std::uint32_t count, std::size_t remaining,
                            std::size_t min_elem_bytes) {
  const std::size_t possible = remaining / min_elem_bytes;
  return std::min<std::size_t>(count, possible);
}
}  // namespace

std::vector<std::uint8_t> encode_range_req(const RangeReq& r) {
  std::vector<std::uint8_t> body;
  ByteWriter w(body);
  w.u32(core::raw(r.series));
  w.i64(r.range.begin);
  w.i64(r.range.end);
  return body;
}

bool decode_range_req(const std::vector<std::uint8_t>& body, RangeReq& out) {
  ByteReader r(body);
  std::uint32_t series = 0;
  if (!r.u32(series) || !r.i64(out.range.begin) || !r.i64(out.range.end)) {
    return false;
  }
  out.series = core::SeriesId{series};
  return true;
}

std::vector<std::uint8_t> encode_aggregate_req(const AggregateReq& r) {
  std::vector<std::uint8_t> body;
  ByteWriter w(body);
  w.u32(core::raw(r.series));
  w.i64(r.range.begin);
  w.i64(r.range.end);
  w.u8(static_cast<std::uint8_t>(r.agg));
  return body;
}

bool decode_aggregate_req(const std::vector<std::uint8_t>& body,
                          AggregateReq& out) {
  ByteReader r(body);
  std::uint32_t series = 0;
  std::uint8_t agg = 0;
  if (!r.u32(series) || !r.i64(out.range.begin) || !r.i64(out.range.end) ||
      !r.u8(agg)) {
    return false;
  }
  if (agg > static_cast<std::uint8_t>(store::Agg::kLast)) return false;
  out.series = core::SeriesId{series};
  out.agg = static_cast<store::Agg>(agg);
  return true;
}

std::vector<std::uint8_t> encode_downsample_req(const DownsampleReq& r) {
  std::vector<std::uint8_t> body;
  ByteWriter w(body);
  w.u32(core::raw(r.series));
  w.i64(r.range.begin);
  w.i64(r.range.end);
  w.i64(r.bucket);
  w.u8(static_cast<std::uint8_t>(r.agg));
  return body;
}

bool decode_downsample_req(const std::vector<std::uint8_t>& body,
                           DownsampleReq& out) {
  ByteReader r(body);
  std::uint32_t series = 0;
  std::uint8_t agg = 0;
  if (!r.u32(series) || !r.i64(out.range.begin) || !r.i64(out.range.end) ||
      !r.i64(out.bucket) || !r.u8(agg)) {
    return false;
  }
  if (agg > static_cast<std::uint8_t>(store::Agg::kLast)) return false;
  if (out.bucket <= 0) return false;
  out.series = core::SeriesId{series};
  out.agg = static_cast<store::Agg>(agg);
  return true;
}

std::vector<std::uint8_t> encode_scan_open_req(const ScanOpenReq& r) {
  std::vector<std::uint8_t> body;
  ByteWriter w(body);
  w.u32(core::raw(r.series));
  w.i64(r.range.begin);
  w.i64(r.range.end);
  w.u32(r.page_points);
  return body;
}

bool decode_scan_open_req(const std::vector<std::uint8_t>& body,
                          ScanOpenReq& out) {
  ByteReader r(body);
  std::uint32_t series = 0;
  if (!r.u32(series) || !r.i64(out.range.begin) || !r.i64(out.range.end) ||
      !r.u32(out.page_points)) {
    return false;
  }
  out.series = core::SeriesId{series};
  return true;
}

std::vector<std::uint8_t> encode_subscribe_req(const SubscribeReq& r) {
  std::vector<std::uint8_t> body;
  ByteWriter w(body);
  w.str(r.pattern);
  return body;
}

bool decode_subscribe_req(const std::vector<std::uint8_t>& body,
                          SubscribeReq& out) {
  ByteReader r(body);
  return r.str(out.pattern);
}

std::vector<std::uint8_t> encode_relay_hello(const RelayHello& h) {
  std::vector<std::uint8_t> body;
  ByteWriter w(body);
  w.u64(h.source_id);
  return body;
}

bool decode_relay_hello(const std::vector<std::uint8_t>& body,
                        RelayHello& out) {
  ByteReader r(body);
  return r.u64(out.source_id);
}

std::vector<std::uint8_t> encode_relay_append(const RelayAppend& a) {
  std::vector<std::uint8_t> body;
  ByteWriter w(body);
  w.u64(a.source_id);
  w.u64(a.seq);
  w.u8(static_cast<std::uint8_t>(a.priority));
  w.u32(static_cast<std::uint32_t>(a.payload.size()));
  body.insert(body.end(), a.payload.begin(), a.payload.end());
  return body;
}

bool decode_relay_append(const std::vector<std::uint8_t>& body,
                         RelayAppend& out) {
  ByteReader r(body);
  std::uint8_t pri = 0;
  std::uint32_t len = 0;
  if (!r.u64(out.source_id) || !r.u64(out.seq) || !r.u8(pri) || !r.u32(len)) {
    return false;
  }
  if (pri >= core::kPriorityClasses) return false;
  if (len != r.remaining()) return false;  // exactly the declared payload
  out.priority = static_cast<core::Priority>(pri);
  out.payload.assign(body.end() - len, body.end());
  return true;
}

std::vector<std::uint8_t> encode_relay_ack(const RelayAck& a) {
  std::vector<std::uint8_t> body;
  ByteWriter w(body);
  w.u64(a.watermark);
  w.u8(a.applied ? 1 : 0);
  w.u8(a.duplicate ? 1 : 0);
  return body;
}

bool decode_relay_ack(const std::vector<std::uint8_t>& body, RelayAck& out) {
  ByteReader r(body);
  std::uint8_t applied = 0;
  std::uint8_t duplicate = 0;
  if (!r.u64(out.watermark) || !r.u8(applied) || !r.u8(duplicate)) {
    return false;
  }
  out.applied = applied != 0;
  out.duplicate = duplicate != 0;
  return true;
}

namespace {
void write_stat(ByteWriter& w, const rollup::RollupStat& s) {
  w.u64(s.count);
  w.f64(s.sum);
  w.f64(s.min);
  w.f64(s.max);
  w.f64(s.last);
  w.i64(s.last_time);
}

bool read_stat(ByteReader& r, rollup::RollupStat& s) {
  return r.u64(s.count) && r.f64(s.sum) && r.f64(s.min) && r.f64(s.max) &&
         r.f64(s.last) && r.i64(s.last_time);
}
}  // namespace

std::vector<std::uint8_t> encode_rollup_req(const RollupReq& req) {
  std::vector<std::uint8_t> body;
  ByteWriter w(body);
  w.str(req.component);
  w.str(req.metric);
  return body;
}

bool decode_rollup_req(const std::vector<std::uint8_t>& body, RollupReq& out) {
  ByteReader r(body);
  return r.str(out.component) && r.str(out.metric) && r.remaining() == 0;
}

std::vector<std::uint8_t> encode_rollup_stat(const RollupStatMsg& m) {
  std::vector<std::uint8_t> body;
  ByteWriter w(body);
  w.u8(m.found ? 1 : 0);
  if (m.found) write_stat(w, m.stat);
  return body;
}

bool decode_rollup_stat(const std::vector<std::uint8_t>& body,
                        RollupStatMsg& out) {
  ByteReader r(body);
  std::uint8_t found = 0;
  if (!r.u8(found)) return false;
  out.found = found != 0;
  out.stat = rollup::RollupStat{};
  if (out.found && !read_stat(r, out.stat)) return false;
  return r.remaining() == 0;
}

std::vector<std::uint8_t> encode_rollup_sub_ack(const RollupSubAck& a) {
  std::vector<std::uint8_t> body;
  ByteWriter w(body);
  w.u32(a.sub_id);
  w.u8(a.current.found ? 1 : 0);
  if (a.current.found) write_stat(w, a.current.stat);
  return body;
}

bool decode_rollup_sub_ack(const std::vector<std::uint8_t>& body,
                           RollupSubAck& out) {
  ByteReader r(body);
  std::uint8_t found = 0;
  if (!r.u32(out.sub_id) || !r.u8(found)) return false;
  out.current.found = found != 0;
  out.current.stat = rollup::RollupStat{};
  if (out.current.found && !read_stat(r, out.current.stat)) return false;
  return r.remaining() == 0;
}

std::vector<std::uint8_t> encode_rollup_delta(const RollupDelta& d) {
  std::vector<std::uint8_t> body;
  ByteWriter w(body);
  w.str(d.component);
  w.str(d.metric);
  write_stat(w, d.stat);
  return body;
}

bool decode_rollup_delta(const std::vector<std::uint8_t>& body,
                         RollupDelta& out) {
  ByteReader r(body);
  return r.str(out.component) && r.str(out.metric) && read_stat(r, out.stat) &&
         r.remaining() == 0;
}

std::vector<std::uint8_t> encode_u32(std::uint32_t v) {
  std::vector<std::uint8_t> body;
  ByteWriter w(body);
  w.u32(v);
  return body;
}

bool decode_u32(const std::vector<std::uint8_t>& body, std::uint32_t& out) {
  ByteReader r(body);
  return r.u32(out);
}

std::vector<std::uint8_t> encode_set_mode(
    std::optional<core::DegradationMode> mode) {
  std::vector<std::uint8_t> body;
  ByteWriter w(body);
  w.u8(mode.has_value() ? 1 : 0);
  w.u8(mode.has_value() ? static_cast<std::uint8_t>(*mode) : 0);
  return body;
}

bool decode_set_mode(const std::vector<std::uint8_t>& body,
                     std::optional<core::DegradationMode>& out) {
  ByteReader r(body);
  std::uint8_t has = 0;
  std::uint8_t mode = 0;
  if (!r.u8(has) || !r.u8(mode)) return false;
  if (has == 0) {
    out = std::nullopt;
    return true;
  }
  if (mode >= core::kDegradationModes) return false;
  out = static_cast<core::DegradationMode>(mode);
  return true;
}

std::vector<std::uint8_t> encode_points(
    const std::vector<core::TimedValue>& pts) {
  std::vector<std::uint8_t> body;
  ByteWriter w(body);
  w.u32(static_cast<std::uint32_t>(pts.size()));
  for (const auto& p : pts) {
    w.i64(p.time);
    w.f64(p.value);
  }
  return body;
}

bool decode_points(const std::vector<std::uint8_t>& body,
                   std::vector<core::TimedValue>& out) {
  ByteReader r(body);
  std::uint32_t count = 0;
  if (!r.u32(count)) return false;
  out.clear();
  out.reserve(bounded_reserve(count, r.remaining(), 16));
  for (std::uint32_t i = 0; i < count; ++i) {
    core::TimedValue p;
    if (!r.i64(p.time) || !r.f64(p.value)) return false;
    out.push_back(p);
  }
  return true;
}

std::vector<std::uint8_t> encode_scalar(std::optional<double> v) {
  std::vector<std::uint8_t> body;
  ByteWriter w(body);
  w.u8(v.has_value() ? 1 : 0);
  w.f64(v.value_or(0.0));
  return body;
}

bool decode_scalar(const std::vector<std::uint8_t>& body,
                   std::optional<double>& out) {
  ByteReader r(body);
  std::uint8_t has = 0;
  double v = 0.0;
  if (!r.u8(has) || !r.f64(v)) return false;
  out = has != 0 ? std::optional<double>(v) : std::nullopt;
  return true;
}

std::vector<std::uint8_t> encode_latest(std::optional<core::TimedValue> v) {
  std::vector<std::uint8_t> body;
  ByteWriter w(body);
  w.u8(v.has_value() ? 1 : 0);
  w.i64(v ? v->time : 0);
  w.f64(v ? v->value : 0.0);
  return body;
}

bool decode_latest(const std::vector<std::uint8_t>& body,
                   std::optional<core::TimedValue>& out) {
  ByteReader r(body);
  std::uint8_t has = 0;
  core::TimedValue v;
  if (!r.u8(has) || !r.i64(v.time) || !r.f64(v.value)) return false;
  out = has != 0 ? std::optional<core::TimedValue>(v) : std::nullopt;
  return true;
}

std::vector<std::uint8_t> encode_scan_page(const ScanPage& p) {
  std::vector<std::uint8_t> body;
  ByteWriter w(body);
  w.u8(p.done ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(p.points.size()));
  for (const auto& pt : p.points) {
    w.i64(pt.time);
    w.f64(pt.value);
  }
  return body;
}

bool decode_scan_page(const std::vector<std::uint8_t>& body, ScanPage& out) {
  ByteReader r(body);
  std::uint8_t done = 0;
  std::uint32_t count = 0;
  if (!r.u8(done) || !r.u32(count)) return false;
  out.done = done != 0;
  out.points.clear();
  out.points.reserve(bounded_reserve(count, r.remaining(), 16));
  for (std::uint32_t i = 0; i < count; ++i) {
    core::TimedValue p;
    if (!r.i64(p.time) || !r.f64(p.value)) return false;
    out.points.push_back(p);
  }
  return true;
}

std::vector<std::uint8_t> encode_subscribe_ack(const SubscribeAck& a) {
  std::vector<std::uint8_t> body;
  ByteWriter w(body);
  w.u32(a.sub_id);
  w.u32(static_cast<std::uint32_t>(a.matched.size()));
  for (const auto& [id, name] : a.matched) {
    w.u32(core::raw(id));
    w.str(name);
  }
  return body;
}

bool decode_subscribe_ack(const std::vector<std::uint8_t>& body,
                          SubscribeAck& out) {
  ByteReader r(body);
  std::uint32_t count = 0;
  if (!r.u32(out.sub_id) || !r.u32(count)) return false;
  out.matched.clear();
  out.matched.reserve(bounded_reserve(count, r.remaining(), 6));
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t id = 0;
    std::string name;
    if (!r.u32(id) || !r.str(name)) return false;
    out.matched.emplace_back(core::SeriesId{id}, std::move(name));
  }
  return true;
}

std::vector<std::uint8_t> encode_conn_list(const std::vector<ConnInfo>& conns) {
  std::vector<std::uint8_t> body;
  ByteWriter w(body);
  w.u32(static_cast<std::uint32_t>(conns.size()));
  for (const auto& c : conns) {
    w.u32(c.id);
    w.u64(c.requests);
    w.u64(c.tx_bytes);
    w.u32(c.egress_depth);
    w.u32(c.subscriptions);
  }
  return body;
}

bool decode_conn_list(const std::vector<std::uint8_t>& body,
                      std::vector<ConnInfo>& out) {
  ByteReader r(body);
  std::uint32_t count = 0;
  if (!r.u32(count)) return false;
  out.clear();
  out.reserve(bounded_reserve(count, r.remaining(), 28));
  for (std::uint32_t i = 0; i < count; ++i) {
    ConnInfo c;
    if (!r.u32(c.id) || !r.u64(c.requests) || !r.u64(c.tx_bytes) ||
        !r.u32(c.egress_depth) || !r.u32(c.subscriptions)) {
      return false;
    }
    out.push_back(c);
  }
  return true;
}

std::vector<std::uint8_t> encode_string(const std::string& s) {
  std::vector<std::uint8_t> body;
  ByteWriter w(body);
  w.str(s);
  return body;
}

bool decode_string(const std::vector<std::uint8_t>& body, std::string& out) {
  ByteReader r(body);
  return r.str(out);
}

}  // namespace hpcmon::serve
