// ServeClient: a small blocking client for the serve protocol.
//
// One connection, one request in flight: each call sends a frame and blocks
// until the response with the matching request id arrives. Server-initiated
// pushes (kSnapshot/kDelta) that arrive while a response is pending are set
// aside in arrival order and surfaced through poll_push(), so a client can
// interleave queries with a live subscription without losing or reordering
// pushed frames. Used by the end-to-end tests, bench/ablation_serve_fanout's
// load generator, and examples/serve_client.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "core/result.hpp"
#include "core/sample.hpp"
#include "serve/protocol.hpp"
#include "serve/wire.hpp"
#include "store/summary.hpp"

namespace hpcmon::serve {

/// One server push for subscription `sub_id`, already decoded: a
/// snapshot/delta sample batch, or a rollup-level stat (kRollupDelta, in
/// which case `rollup` is set and `batch` is empty).
struct Push {
  MsgType type = MsgType::kDelta;  // kSnapshot, kDelta, or kRollupDelta
  std::uint32_t sub_id = 0;
  core::SampleBatch batch;
  RollupDelta rollup;
};

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient() { close(); }
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connect to 127.0.0.1:`port`. `rcvbuf_bytes` > 0 shrinks the socket's
  /// receive buffer (tests use a tiny one to wedge the pipe quickly).
  bool connect(std::uint16_t port, int rcvbuf_bytes = 0);
  void close();
  bool connected() const { return fd_ >= 0; }
  const std::string& error() const { return error_; }

  /// Deadline applied to every response wait inside call(). The default -1
  /// blocks forever — which on a half-open socket (peer gone, no RST ever
  /// delivered) means forever. Callers that must distinguish "slow" from
  /// "gone" (the relay, ping-based liveness probes) set a bound; an expired
  /// deadline fails the call with error() == "timeout" and leaves the
  /// connection open, so a lightweight ping() can re-probe it.
  void set_read_deadline_ms(int ms) { read_deadline_ms_ = ms; }
  int read_deadline_ms() const { return read_deadline_ms_; }

  bool ping();
  core::Result<std::vector<core::TimedValue>> query_range(
      core::SeriesId series, const core::TimeRange& range);
  core::Result<std::optional<core::TimedValue>> latest(core::SeriesId series);
  core::Result<std::optional<double>> aggregate(core::SeriesId series,
                                                const core::TimeRange& range,
                                                store::Agg agg);
  core::Result<std::vector<core::TimedValue>> downsample(
      core::SeriesId series, const core::TimeRange& range,
      core::Duration bucket, store::Agg agg);

  /// Streaming scan cursor: open -> next until page.done -> (auto-closed).
  core::Result<std::uint32_t> scan_open(core::SeriesId series,
                                        const core::TimeRange& range,
                                        std::uint32_t page_points = 512);
  core::Result<ScanPage> scan_next(std::uint32_t cursor_id);
  bool scan_close(std::uint32_t cursor_id);

  core::Result<SubscribeAck> subscribe(const std::string& pattern);
  bool unsubscribe(std::uint32_t sub_id);

  /// One (component, metric) rollup level, answered O(1) from the server's
  /// rollup snapshot — the fleet-at-a-glance read over the wire.
  core::Result<RollupStatMsg> rollup_query(const std::string& component,
                                           const std::string& metric);
  /// Subscribe to a rollup level: the ack carries its current stat, then a
  /// kRollupDelta push (poll_push) follows every tick the level changes.
  core::Result<RollupSubAck> rollup_sub(const std::string& component,
                                        const std::string& metric);
  bool rollup_unsub(std::uint32_t sub_id);

  /// Block up to `timeout_ms` for the next pushed snapshot/delta (pushes
  /// queued during request waits are returned first, without blocking).
  std::optional<Push> poll_push(int timeout_ms);
  /// Pushed frames currently queued client-side.
  std::size_t pending_pushes() const { return pushes_.size(); }

  // Admin surface.
  core::Result<std::string> status();
  bool set_mode(std::optional<core::DegradationMode> mode);
  bool wal_rotate();
  core::Result<std::vector<ConnInfo>> list_conns();

 private:
  /// Send `body` as `type` and block for the matching kOk/kError, queueing
  /// pushes aside. Returns the kOk body, or an error Result.
  core::Result<std::vector<std::uint8_t>> call(
      MsgType type, const std::vector<std::uint8_t>& body);
  bool send_all(const std::vector<std::uint8_t>& bytes);
  /// Read until the assembler yields a frame; -1 timeout blocks forever.
  std::optional<WireFrame> read_frame(int timeout_ms);
  static std::optional<Push> as_push(WireFrame&& frame);

  int fd_ = -1;
  int read_deadline_ms_ = -1;
  std::uint32_t next_request_ = 1;
  WireAssembler assembler_;
  std::deque<Push> pushes_;
  std::string error_;
};

}  // namespace hpcmon::serve
