// Request/response bodies of the serve protocol.
//
// Three request families (ROADMAP's "real network front door"):
//   * point reads  — kQueryRange / kAggregate / kDownsample / kLatest,
//     answered from the same ChunkSummary-backed engine in-process callers
//     use; results must be byte-identical to the in-process calls.
//   * streamed scans — kScanOpen hands out a cursor id; each kScanNext
//     returns one bounded page and the client asks for the next when IT is
//     ready (client-driven flow control over the wire).
//   * live subscriptions — kSubscribe binds a core::topic_match pattern over
//     series names; the reply lists the matched series, a kSnapshot push
//     delivers their latest values, then kDelta pushes follow from the
//     ingest tap. Snapshot and delta payloads are verbatim
//     transport::encode_samples() bytes — the documented codec, reused.
//
// Every encode_*/decode_* pair here is exercised from both sides of a real
// socket; decoders treat the body as adversarial (length-checked reads, no
// trust in counts).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/priority.hpp"
#include "core/sample.hpp"
#include "core/series_buffer.hpp"
#include "core/time.hpp"
#include "rollup/reducer.hpp"
#include "store/summary.hpp"

namespace hpcmon::serve {

// -- Request bodies -----------------------------------------------------------

struct RangeReq {
  core::SeriesId series{0};
  core::TimeRange range;
};

struct AggregateReq {
  core::SeriesId series{0};
  core::TimeRange range;
  store::Agg agg = store::Agg::kMean;
};

struct DownsampleReq {
  core::SeriesId series{0};
  core::TimeRange range;
  core::Duration bucket = 0;
  store::Agg agg = store::Agg::kMean;
};

struct ScanOpenReq {
  core::SeriesId series{0};
  core::TimeRange range;
  /// Max points per kScanNext page (server clamps to >= 1).
  std::uint32_t page_points = 512;
};

struct SubscribeReq {
  /// core::topic_match pattern over "metric.name@component" series names.
  std::string pattern;
};

std::vector<std::uint8_t> encode_range_req(const RangeReq& r);
bool decode_range_req(const std::vector<std::uint8_t>& body, RangeReq& out);

std::vector<std::uint8_t> encode_aggregate_req(const AggregateReq& r);
bool decode_aggregate_req(const std::vector<std::uint8_t>& body,
                          AggregateReq& out);

std::vector<std::uint8_t> encode_downsample_req(const DownsampleReq& r);
bool decode_downsample_req(const std::vector<std::uint8_t>& body,
                           DownsampleReq& out);

std::vector<std::uint8_t> encode_scan_open_req(const ScanOpenReq& r);
bool decode_scan_open_req(const std::vector<std::uint8_t>& body,
                          ScanOpenReq& out);

std::vector<std::uint8_t> encode_subscribe_req(const SubscribeReq& r);
bool decode_subscribe_req(const std::vector<std::uint8_t>& body,
                          SubscribeReq& out);

/// kRelayHello body: a relay client announces its durable source identity;
/// the kOk reply carries a RelayAck whose watermark tells the client where
/// to resume (every seq <= watermark is durably applied server-side).
struct RelayHello {
  std::uint64_t source_id = 0;
};

/// kRelayAppend body: one at-least-once append. `payload` is verbatim
/// transport::encode_samples() bytes — the same codec the in-process router
/// moves — and `priority` carries the batch's class across the hop so the
/// aggregator's storm-mode shedding still sees it. `seq` is assigned
/// contiguously per source; the server applies each (source_id, seq) at most
/// once (dedupe window keyed to the acked watermark).
struct RelayAppend {
  std::uint64_t source_id = 0;
  std::uint64_t seq = 0;
  core::Priority priority = core::Priority::kStandard;
  std::vector<std::uint8_t> payload;
};

/// kOk reply to both relay requests: the server's applied watermark (highest
/// seq S such that every seq <= S has been applied). `applied` reports what
/// happened to THIS append: freshly applied, or acked-without-apply because
/// it was a duplicate or beyond the dedupe window (resend after the
/// watermark catches up).
struct RelayAck {
  std::uint64_t watermark = 0;
  bool applied = false;
  bool duplicate = false;
};

std::vector<std::uint8_t> encode_relay_hello(const RelayHello& h);
bool decode_relay_hello(const std::vector<std::uint8_t>& body, RelayHello& out);

std::vector<std::uint8_t> encode_relay_append(const RelayAppend& a);
bool decode_relay_append(const std::vector<std::uint8_t>& body,
                         RelayAppend& out);

std::vector<std::uint8_t> encode_relay_ack(const RelayAck& a);
bool decode_relay_ack(const std::vector<std::uint8_t>& body, RelayAck& out);

/// kRollupQuery / kRollupSub body: one (component, metric) rollup level,
/// addressed by NAME — remote dashboards ask for "c3-0" / "node.cpu_util"
/// without holding the server's id space.
struct RollupReq {
  std::string component;  // registry cname, e.g. "system", "c3-0"
  std::string metric;     // e.g. "node.cpu_util"
};

/// One rollup level's canonical accumulator on the wire (kRollupQuery
/// reply). `found` distinguishes "level absent/empty" from a zero stat.
struct RollupStatMsg {
  bool found = false;
  rollup::RollupStat stat;  // meaningful only when found
};

/// kRollupSub reply: the subscription id plus the level's current stat, so
/// the client starts from a consistent value before deltas flow.
struct RollupSubAck {
  std::uint32_t sub_id = 0;
  RollupStatMsg current;
};

/// kRollupDelta push body (request id = owning sub id): self-describing so
/// a logging client can tail several levels without a lookaside table.
struct RollupDelta {
  std::string component;
  std::string metric;
  rollup::RollupStat stat;
};

std::vector<std::uint8_t> encode_rollup_req(const RollupReq& r);
bool decode_rollup_req(const std::vector<std::uint8_t>& body, RollupReq& out);

std::vector<std::uint8_t> encode_rollup_stat(const RollupStatMsg& m);
bool decode_rollup_stat(const std::vector<std::uint8_t>& body,
                        RollupStatMsg& out);

std::vector<std::uint8_t> encode_rollup_sub_ack(const RollupSubAck& a);
bool decode_rollup_sub_ack(const std::vector<std::uint8_t>& body,
                           RollupSubAck& out);

std::vector<std::uint8_t> encode_rollup_delta(const RollupDelta& d);
bool decode_rollup_delta(const std::vector<std::uint8_t>& body,
                         RollupDelta& out);

/// Bare u32 body (kScanNext/kScanClose cursor id, kUnsubscribe sub id).
std::vector<std::uint8_t> encode_u32(std::uint32_t v);
bool decode_u32(const std::vector<std::uint8_t>& body, std::uint32_t& out);

/// kSetMode body: the degradation-mode override, or release when nullopt.
std::vector<std::uint8_t> encode_set_mode(
    std::optional<core::DegradationMode> mode);
bool decode_set_mode(const std::vector<std::uint8_t>& body,
                     std::optional<core::DegradationMode>& out);

// -- Response bodies ----------------------------------------------------------

/// Time-ordered points (kQueryRange / kDownsample reply, scan page tail).
std::vector<std::uint8_t> encode_points(
    const std::vector<core::TimedValue>& pts);
bool decode_points(const std::vector<std::uint8_t>& body,
                   std::vector<core::TimedValue>& out);

/// Optional scalar (kAggregate reply; kLatest packs time+value when present).
std::vector<std::uint8_t> encode_scalar(std::optional<double> v);
bool decode_scalar(const std::vector<std::uint8_t>& body,
                   std::optional<double>& out);

std::vector<std::uint8_t> encode_latest(std::optional<core::TimedValue> v);
bool decode_latest(const std::vector<std::uint8_t>& body,
                   std::optional<core::TimedValue>& out);

/// kScanNext reply: `done` marks the cursor exhausted (and auto-closed).
struct ScanPage {
  bool done = false;
  std::vector<core::TimedValue> points;
};
std::vector<std::uint8_t> encode_scan_page(const ScanPage& p);
bool decode_scan_page(const std::vector<std::uint8_t>& body, ScanPage& out);

/// kSubscribe reply: the subscription id plus every matched series at
/// subscribe time (id -> name so the client can label pushed samples).
struct SubscribeAck {
  std::uint32_t sub_id = 0;
  std::vector<std::pair<core::SeriesId, std::string>> matched;
};
std::vector<std::uint8_t> encode_subscribe_ack(const SubscribeAck& a);
bool decode_subscribe_ack(const std::vector<std::uint8_t>& body,
                          SubscribeAck& out);

/// kListConns reply row.
struct ConnInfo {
  std::uint32_t id = 0;
  std::uint64_t requests = 0;
  std::uint64_t tx_bytes = 0;
  std::uint32_t egress_depth = 0;
  std::uint32_t subscriptions = 0;
};
std::vector<std::uint8_t> encode_conn_list(const std::vector<ConnInfo>& conns);
bool decode_conn_list(const std::vector<std::uint8_t>& body,
                      std::vector<ConnInfo>& out);

/// kError reply / kStatus reply body: one length-prefixed string.
std::vector<std::uint8_t> encode_string(const std::string& s);
bool decode_string(const std::vector<std::uint8_t>& body, std::string& out);

}  // namespace hpcmon::serve
