// Fault-aware socket I/O for the serve and relay tiers.
//
// Thin wrappers over send()/recv() that consult an optional
// core::SocketFaultInjector immediately before the syscall — the network
// analogue of the WAL consulting FsFaultInjector before every write. With a
// null injector the wrappers compile down to the bare syscall; with one, a
// test can script resets, stalls, partial writes, short reads and torn
// frames at exact operations of a live exchange (see core/sockfault.hpp for
// the fault-to-syscall mapping).
//
// Injected resets and torn frames additionally shutdown(2) the socket so the
// PEER observes the failure too: a torn frame is only a torn frame if the
// other end is left holding the prefix.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>

#include "core/sockfault.hpp"

namespace hpcmon::serve {

/// Milliseconds an injected kStall sleeps before the operation proceeds.
/// Bounded and small: deadlines must absorb it, tests must not crawl.
inline constexpr int kInjectedStallMs = 5;

/// send(fd, buf, n, MSG_NOSIGNAL) with fault injection. Returns the byte
/// count actually transmitted (possibly short), or -1 with errno set.
ssize_t faulty_send(int fd, const std::uint8_t* buf, std::size_t n,
                    core::SocketFaultInjector* faults);

/// recv(fd, buf, n, 0) with fault injection. Returns the byte count read
/// (possibly short), 0 on orderly shutdown, or -1 with errno set.
ssize_t faulty_recv(int fd, std::uint8_t* buf, std::size_t n,
                    core::SocketFaultInjector* faults);

/// Consult the injector for a connect(2) about to happen. Returns false if
/// the connect should fail as a reset would (the caller skips the syscall);
/// an injected stall sleeps, then proceeds.
bool faulty_connect_allowed(core::SocketFaultInjector* faults);

}  // namespace hpcmon::serve
