#include "serve/wire.hpp"

#include <cstring>

#include "core/strings.hpp"

namespace hpcmon::serve {

void append_wire_frame(std::vector<std::uint8_t>& out, MsgType type,
                       std::uint32_t request_id,
                       const std::vector<std::uint8_t>& body) {
  const auto len = static_cast<std::uint32_t>(1 + 4 + body.size());
  out.reserve(out.size() + 4 + len);
  const auto put_u32 = [&out](std::uint32_t v) {
    const auto* b = reinterpret_cast<const std::uint8_t*>(&v);
    out.insert(out.end(), b, b + 4);
  };
  put_u32(len);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u32(request_id);
  out.insert(out.end(), body.begin(), body.end());
}

bool WireAssembler::feed(const std::uint8_t* data, std::size_t n) {
  if (errored_) return false;
  buf_.insert(buf_.end(), data, data + n);
  // Validate the declared length as soon as the header is visible, BEFORE
  // next() is asked to materialize anything: a hostile 4 GiB length must be
  // rejected while only 4 bytes are buffered.
  if (buf_.size() >= 4) {
    std::uint32_t len = 0;
    std::memcpy(&len, buf_.data(), 4);
    if (len > max_frame_bytes_) {
      fail(core::strformat("declared frame length %u exceeds cap %u", len,
                           max_frame_bytes_));
      return false;
    }
    if (len < 5) {  // must at least hold type + request id
      fail(core::strformat("declared frame length %u below header size", len));
      return false;
    }
  }
  return true;
}

std::optional<WireFrame> WireAssembler::next() {
  if (errored_ || buf_.size() < 4) return std::nullopt;
  std::uint32_t len = 0;
  std::memcpy(&len, buf_.data(), 4);
  if (buf_.size() < 4 + static_cast<std::size_t>(len)) return std::nullopt;
  WireFrame f;
  f.type = static_cast<MsgType>(buf_[4]);
  std::memcpy(&f.request_id, buf_.data() + 5, 4);
  f.body.assign(buf_.begin() + kWireHeaderBytes, buf_.begin() + 4 + len);
  buf_.erase(buf_.begin(), buf_.begin() + 4 + len);
  // Re-validate the next header now at the front of the buffer (feed() only
  // sees the front-of-buffer header of its moment).
  if (buf_.size() >= 4) {
    std::uint32_t next_len = 0;
    std::memcpy(&next_len, buf_.data(), 4);
    if (next_len > max_frame_bytes_) {
      fail(core::strformat("declared frame length %u exceeds cap %u", next_len,
                           max_frame_bytes_));
    } else if (next_len < 5) {
      fail(core::strformat("declared frame length %u below header size",
                           next_len));
    }
  }
  return f;
}

void WireAssembler::fail(std::string why) {
  errored_ = true;
  error_ = std::move(why);
  buf_.clear();
  buf_.shrink_to_fit();
}

}  // namespace hpcmon::serve
