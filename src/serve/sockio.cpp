#include "serve/sockio.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <thread>

namespace hpcmon::serve {

namespace {

void stall() {
  std::this_thread::sleep_for(std::chrono::milliseconds(kInjectedStallMs));
}

ssize_t inject_reset(int fd) {
  // Kill the wire so the peer observes the failure too; SHUT_RDWR makes its
  // pending reads return 0/ECONNRESET and its writes fail.
  ::shutdown(fd, SHUT_RDWR);
  errno = ECONNRESET;
  return -1;
}

}  // namespace

ssize_t faulty_send(int fd, const std::uint8_t* buf, std::size_t n,
                    core::SocketFaultInjector* faults) {
  if (faults != nullptr && n > 0) {
    switch (faults->socket_fault(core::SocketOp::kSend)) {
      case core::SocketFault::kNone:
        break;
      case core::SocketFault::kReset:
        return inject_reset(fd);
      case core::SocketFault::kStall:
        stall();
        break;
      case core::SocketFault::kShortWrite:
        // Benign fragmentation: transmit a prefix, report the short count.
        n = n / 2 + 1;
        break;
      case core::SocketFault::kTornFrame: {
        // Transmit a prefix, then die: the peer is left holding a torn
        // frame its assembler must discard with the connection.
        const std::size_t torn = n / 2 + 1;
        (void)::send(fd, buf, torn, MSG_NOSIGNAL);
        return inject_reset(fd);
      }
      case core::SocketFault::kShortRead:
        break;  // recv-only fault; not drawn for kSend
    }
  }
  return ::send(fd, buf, n, MSG_NOSIGNAL);
}

ssize_t faulty_recv(int fd, std::uint8_t* buf, std::size_t n,
                    core::SocketFaultInjector* faults) {
  if (faults != nullptr && n > 0) {
    switch (faults->socket_fault(core::SocketOp::kRecv)) {
      case core::SocketFault::kNone:
        break;
      case core::SocketFault::kReset:
        return inject_reset(fd);
      case core::SocketFault::kStall:
        stall();
        break;
      case core::SocketFault::kShortRead:
        // Deliver fewer bytes than the caller asked for; framing reassembles.
        n = n > 7 ? 7 : n;
        break;
      case core::SocketFault::kShortWrite:
      case core::SocketFault::kTornFrame:
        break;  // send-only faults; not drawn for kRecv
    }
  }
  return ::recv(fd, buf, n, 0);
}

bool faulty_connect_allowed(core::SocketFaultInjector* faults) {
  if (faults == nullptr) return true;
  switch (faults->socket_fault(core::SocketOp::kConnect)) {
    case core::SocketFault::kReset:
      return false;
    case core::SocketFault::kStall:
      stall();
      return true;
    default:
      return true;
  }
}

}  // namespace hpcmon::serve
