// RelayClient: durable at-least-once forwarding to an upstream aggregator.
//
// The paper's transport sections (III-IV) and the ORNL/Ciorba follow-ups all
// land on the same requirement: node-level telemetry must reach the central
// store over a network that fails exactly when the monitored system does,
// and no transport may silently lose data while doing so. The relay tier is
// that hop, built on the serve wire (serve/wire.hpp, kRelayHello /
// kRelayAppend) with **at-least-once, exactly-applied** semantics:
//
//   * Every forwarded batch carries a monotone per-source sequence number,
//     assigned contiguously AT SEND TIME (so shedding unsent bulk under
//     pressure never leaves a permanent gap the server would wait on).
//   * One append is in flight at a time; the durable ack watermark advances
//     only when the server acknowledges the applied watermark. Anything
//     unacked survives locally and is resent after reconnect.
//   * Reconnects are governed by a resilience::CircuitBreaker on a
//     steady-clock timeline: exponential backoff with seeded jitter, capped,
//     so a dead aggregator costs bounded connect attempts and a revived one
//     is found within one backoff period.
//   * On (re)connect the client sends kRelayHello; the server's watermark
//     reply is authoritative: acked entries are dropped, the send sequence
//     resumes from the watermark, and next_seq jumps past it — so even a
//     lost local state file cannot re-use a consumed seq (which the server
//     would ack-as-duplicate, silently discarding fresh data).
//   * The local state file (next-seq lease + watermark, tmp+fsync+rename,
//     FsFaultInjector-aware) preserves seq continuity across node restarts
//     while the aggregator is unreachable; with it lost, the hello heal
//     above still guarantees no consumed seq is reused.
//
// The server applies each (source_id, seq) at most once (serve/server.cpp's
// dedupe window keyed to the acked watermark), so resends after lost acks
// are acked-without-reapply: at-least-once delivery, exactly-once apply.
// Node restarts re-submit WAL-replayed batches under FRESH seqs; the
// aggregator store's strictly-increasing per-series timestamps reject the
// byte-identical re-applies (the second dedupe layer, see DESIGN.md).
//
// submit() never blocks the caller: the bounded pending queue sheds unsent
// bulk first, then unsent standard; critical entries are never shed (they
// may transiently push the queue over its cap — the same contract as the
// serve egress door's "responses are never shed").
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/fsfault.hpp"
#include "core/ids.hpp"
#include "core/priority.hpp"
#include "core/sample.hpp"
#include "core/sockfault.hpp"
#include "obs/registry.hpp"
#include "resilience/breaker.hpp"
#include "serve/wire.hpp"

namespace hpcmon::relay {

struct RelayConfig {
  /// Upstream aggregator's serve port on 127.0.0.1 (the serve tier binds
  /// loopback; a real fleet would front it with the LAN listener).
  std::uint16_t upstream_port = 0;
  /// Durable source identity; the server keys its dedupe state on it.
  std::uint64_t source_id = 1;
  /// Max samples per append frame; larger submits are split.
  std::size_t batch_samples = 512;
  /// Pending-entry bound; unsent bulk/standard shed above it (critical never).
  std::size_t queue_cap = 1024;
  /// First reconnect backoff (wall ms); doubles per consecutive failure.
  int backoff_ms = 50;
  int backoff_max_ms = 2000;
  /// Deadline on the ack read — distinguishes "slow" from "gone".
  int ack_timeout_ms = 1000;
  /// Path of the durable seq-lease/watermark file; "" keeps state volatile.
  std::string state_path;
  /// Priority class per series (unset: everything kStandard).
  std::function<core::Priority(core::SeriesId)> priority_of;
  /// Fault injection (tests only): socket ops and state-file fs ops.
  core::SocketFaultInjector* socket_faults = nullptr;
  core::FsFaultInjector* fs_faults = nullptr;
  /// Shared obs registry for the relay.* instruments; unset => private.
  obs::ObsRegistry* obs = nullptr;
};

/// Typed view over the relay.* instruments.
struct RelayStats {
  std::uint64_t submitted_batches = 0;
  std::uint64_t submitted_samples = 0;
  std::uint64_t shed_batches = 0;
  std::uint64_t sent_batches = 0;
  std::uint64_t resent_batches = 0;
  std::uint64_t acked_batches = 0;
  std::uint64_t acked_samples = 0;
  std::uint64_t rejected_batches = 0;
  std::uint64_t connects = 0;
  std::uint64_t connect_failures = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t ack_timeouts = 0;
  std::uint64_t state_write_errors = 0;
  std::uint64_t watermark = 0;
  std::size_t pending = 0;
  bool connected = false;
};

class RelayClient {
 public:
  explicit RelayClient(RelayConfig config);
  ~RelayClient();

  RelayClient(const RelayClient&) = delete;
  RelayClient& operator=(const RelayClient&) = delete;

  /// Load durable state and start the forwarding worker.
  bool start();
  /// Stop forwarding (pending entries are NOT flushed — call drain_for
  /// first for a graceful handoff) and persist the state file.
  void stop();
  bool running() const { return running_; }

  /// Enqueue `batch` for forwarding; never blocks. Splits by priority class
  /// and into <= batch_samples chunks. Returns entries enqueued (0 when the
  /// batch is empty or everything was shed).
  std::size_t submit(const core::SampleBatch& batch);

  /// Block until every submitted entry is acked or `timeout_ms` expires.
  bool drain_for(int timeout_ms);

  bool connected() const { return connected_; }
  /// Highest seq the server has contiguously applied (durable upstream).
  std::uint64_t watermark() const;
  std::size_t pending() const;
  RelayStats stats() const;

  /// Catalog the relay.* instruments in `registry` (done automatically for
  /// RelayConfig::obs at construction).
  void attach_to(obs::ObsRegistry& registry) const;

 private:
  struct Pending {
    std::uint64_t seq = 0;  // 0 until first send (assigned contiguously)
    core::Priority priority = core::Priority::kStandard;
    core::SampleBatch batch;
    std::vector<std::uint8_t> payload;  // encoded lazily at first send
    bool sent_once = false;
  };

  void worker();
  bool ensure_connected();
  void disconnect();
  bool send_front();
  bool send_frame(serve::MsgType type, std::uint32_t request_id,
                  const std::vector<std::uint8_t>& body);
  std::optional<serve::WireFrame> read_reply(int timeout_ms);
  /// Drop every pending entry with an assigned seq <= `watermark` (they are
  /// durably applied upstream). Caller holds mu_.
  void drop_acked_locked(std::uint64_t watermark);
  void load_state();
  /// Persist {next_seq lease, watermark}; failures are counted and retried
  /// on the next persist point (forwarding never blocks on the state file).
  void persist_state_locked(std::uint64_t lease_end);
  static std::int64_t now_us();

  RelayConfig config_;
  resilience::CircuitBreaker breaker_;
  std::thread worker_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> connected_{false};
  int fd_ = -1;  // worker-owned
  serve::WireAssembler assembler_;
  std::uint32_t next_request_ = 1;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // work available / stop
  std::condition_variable drain_cv_;  // queue drained
  std::deque<Pending> queue_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t lease_end_ = 0;  // highest seq the durable lease covers
  std::uint64_t watermark_ = 0;

  // relay.* instruments.
  obs::ObsRegistry own_obs_;
  obs::Counter submitted_batches_;
  obs::Counter submitted_samples_;
  obs::Counter shed_batches_;
  obs::Counter sent_batches_;
  obs::Counter resent_batches_;
  obs::Counter acked_batches_;
  obs::Counter acked_samples_;
  obs::Counter rejected_batches_;
  obs::Counter connects_;
  obs::Counter connect_failures_;
  obs::Counter disconnects_;
  obs::Counter ack_timeouts_;
  obs::Counter state_write_errors_;
  obs::Gauge pending_gauge_;
  obs::Gauge watermark_gauge_;
  obs::Histogram ack_rtt_us_;
};

}  // namespace hpcmon::relay
