#include "relay/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "serve/protocol.hpp"
#include "serve/sockio.hpp"
#include "transport/codec.hpp"

namespace hpcmon::relay {

namespace {

/// Seqs reserved per durable lease write: a restart burns at most one lease
/// block of the 64-bit space, so the state file is rewritten once per
/// ~65k appends instead of once per append.
constexpr std::uint64_t kSeqLeaseBlock = 1u << 16;

constexpr std::uint8_t kStateVersion = 1;
constexpr std::uint8_t kStateMagic[4] = {'H', 'R', 'L', 'Y'};

}  // namespace

std::int64_t RelayClient::now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

RelayClient::RelayClient(RelayConfig config)
    : config_(std::move(config)),
      breaker_(
          resilience::BreakerConfig{
              .failure_threshold = 1,
              .cooldown = std::max(1, config_.backoff_ms) * core::kMillisecond,
              .backoff_factor = 2.0,
              .max_cooldown =
                  std::max(config_.backoff_ms, config_.backoff_max_ms) *
                  core::kMillisecond,
              .jitter = 0.1,
          },
          0x5EEDB4EAull ^ config_.source_id) {
  attach_to(config_.obs != nullptr ? *config_.obs : own_obs_);
}

RelayClient::~RelayClient() { stop(); }

void RelayClient::attach_to(obs::ObsRegistry& registry) const {
  registry.attach({"relay.submitted_batches", "batches",
                   "append entries enqueued for forwarding"},
                  &submitted_batches_);
  registry.attach({"relay.submitted_samples", "samples",
                   "samples enqueued for forwarding"},
                  &submitted_samples_);
  registry.attach({"relay.shed_batches", "batches",
                   "unsent bulk/standard entries shed by the queue bound"},
                  &shed_batches_);
  registry.attach({"relay.sent_batches", "batches", "append frames sent"},
                  &sent_batches_);
  registry.attach({"relay.resent_batches", "batches",
                   "append frames re-sent after a lost ack or reconnect"},
                  &resent_batches_);
  registry.attach({"relay.acked_batches", "batches",
                   "entries acknowledged (durably applied upstream)"},
                  &acked_batches_);
  registry.attach({"relay.acked_samples", "samples",
                   "samples acknowledged (durably applied upstream)"},
                  &acked_samples_);
  registry.attach({"relay.rejected_batches", "batches",
                   "entries the server answered kError for (dropped)"},
                  &rejected_batches_);
  registry.attach({"relay.connects", "conns", "successful upstream connects"},
                  &connects_);
  registry.attach({"relay.connect_failures", "conns",
                   "failed connect/hello attempts (breaker-counted)"},
                  &connect_failures_);
  registry.attach({"relay.disconnects", "conns",
                   "connections torn down (error, timeout, or fault)"},
                  &disconnects_);
  registry.attach({"relay.ack_timeouts", "acks",
                   "ack waits that hit the read deadline"},
                  &ack_timeouts_);
  registry.attach({"relay.state_write_errors", "writes",
                   "state-file persists that failed (retried later)"},
                  &state_write_errors_);
  registry.attach({"relay.pending", "batches", "entries awaiting ack"},
                  &pending_gauge_);
  registry.attach({"relay.watermark", "seq",
                   "highest seq contiguously applied upstream"},
                  &watermark_gauge_);
  registry.attach({"relay.ack_rtt_us", "us", "append send-to-ack latency"},
                  &ack_rtt_us_);
}

bool RelayClient::start() {
  if (running_) return true;
  stop_ = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    load_state();
  }
  worker_ = std::thread([this] { worker(); });
  running_ = true;
  return true;
}

void RelayClient::stop() {
  if (!running_) return;
  stop_ = true;
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  running_ = false;
  std::lock_guard<std::mutex> lock(mu_);
  // Persist the exact resume point: the lease is shrunk back to what was
  // actually consumed, so a clean restart wastes no seq space.
  persist_state_locked(next_seq_ > 0 ? next_seq_ - 1 : 0);
}

std::size_t RelayClient::submit(const core::SampleBatch& batch) {
  if (batch.samples.empty() || !running_ || stop_) return 0;
  // Partition by priority class, preserving order within each class.
  std::array<core::SampleBatch, core::kPriorityClasses> by_class;
  for (const auto& s : batch.samples) {
    const auto cls = config_.priority_of ? config_.priority_of(s.series)
                                         : core::Priority::kStandard;
    auto& b = by_class[static_cast<std::size_t>(cls)];
    b.samples.push_back(s);
    b.sweep_time = batch.sweep_time;
    b.origin = batch.origin;
  }
  const std::size_t chunk =
      std::max<std::size_t>(1, config_.batch_samples);
  std::size_t enqueued = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t c = 0; c < core::kPriorityClasses; ++c) {
    const auto cls = static_cast<core::Priority>(c);
    const auto& all = by_class[c].samples;
    for (std::size_t off = 0; off < all.size(); off += chunk) {
      Pending p;
      p.priority = cls;
      p.batch.sweep_time = by_class[c].sweep_time;
      p.batch.origin = by_class[c].origin;
      p.batch.samples.assign(all.begin() + off,
                             all.begin() + std::min(off + chunk, all.size()));
      if (queue_.size() >= config_.queue_cap &&
          cls != core::Priority::kCritical) {
        // Drop-oldest within the lowest sheddable class, never anything
        // already holding a seq (the sent-unacked region must stay
        // contiguous or the server watermark would stall on the gap).
        auto victim = queue_.end();
        for (auto cand = static_cast<int>(core::kPriorityClasses) - 1;
             cand >= static_cast<int>(c) && victim == queue_.end(); --cand) {
          victim = std::find_if(queue_.begin(), queue_.end(),
                                [&](const Pending& e) {
                                  return e.seq == 0 &&
                                         e.priority ==
                                             static_cast<core::Priority>(cand);
                                });
        }
        shed_batches_.add();
        if (victim == queue_.end()) continue;  // nothing lower: shed incoming
        queue_.erase(victim);
      }
      submitted_batches_.add();
      submitted_samples_.add(p.batch.samples.size());
      queue_.push_back(std::move(p));
      ++enqueued;
    }
  }
  pending_gauge_.set(static_cast<double>(queue_.size()));
  if (enqueued > 0) cv_.notify_one();
  return enqueued;
}

bool RelayClient::drain_for(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.notify_all();
  drain_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                     [&] { return queue_.empty() || stop_.load(); });
  return queue_.empty();
}

std::uint64_t RelayClient::watermark() const {
  std::lock_guard<std::mutex> lock(mu_);
  return watermark_;
}

std::size_t RelayClient::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

RelayStats RelayClient::stats() const {
  RelayStats s;
  s.submitted_batches = submitted_batches_.value();
  s.submitted_samples = submitted_samples_.value();
  s.shed_batches = shed_batches_.value();
  s.sent_batches = sent_batches_.value();
  s.resent_batches = resent_batches_.value();
  s.acked_batches = acked_batches_.value();
  s.acked_samples = acked_samples_.value();
  s.rejected_batches = rejected_batches_.value();
  s.connects = connects_.value();
  s.connect_failures = connect_failures_.value();
  s.disconnects = disconnects_.value();
  s.ack_timeouts = ack_timeouts_.value();
  s.state_write_errors = state_write_errors_.value();
  std::lock_guard<std::mutex> lock(mu_);
  s.watermark = watermark_;
  s.pending = queue_.size();
  s.connected = connected_;
  return s;
}

void RelayClient::worker() {
  while (!stop_) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (queue_.empty()) {
        drain_cv_.notify_all();
        cv_.wait_for(lock, std::chrono::milliseconds(10),
                     [&] { return stop_.load() || !queue_.empty(); });
        if (stop_ || queue_.empty()) continue;
      }
    }
    if (!ensure_connected()) {
      // Breaker denial or failed attempt: bounded nap, so we neither spin
      // nor oversleep the retry_at the breaker scheduled.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      continue;
    }
    if (!send_front()) disconnect();
  }
  disconnect();
}

bool RelayClient::ensure_connected() {
  if (fd_ >= 0) return true;
  if (!breaker_.allow(now_us())) return false;
  const auto fail = [&] {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    breaker_.record_failure(now_us());
    connect_failures_.add();
    return false;
  };
  if (!serve::faulty_connect_allowed(config_.socket_faults)) return fail();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return fail();
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.upstream_port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return fail();
  }
  assembler_ = serve::WireAssembler();
  // Hello: the server's watermark is authoritative. Everything at or below
  // it is durably applied (drop it); and next_seq must jump past it so a
  // lost state file can never re-use a consumed seq.
  const std::uint32_t req_id = next_request_++;
  if (!send_frame(serve::MsgType::kRelayHello,  req_id,
                  serve::encode_relay_hello({config_.source_id}))) {
    return fail();
  }
  auto reply = read_reply(config_.ack_timeout_ms);
  if (!reply || reply->type != serve::MsgType::kOk) return fail();
  serve::RelayAck ack;
  if (!serve::decode_relay_ack(reply->body, ack)) return fail();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ack.watermark > watermark_) watermark_ = ack.watermark;
    if (watermark_ >= next_seq_) {
      next_seq_ = watermark_ + 1;
      if (next_seq_ > lease_end_) {
        persist_state_locked(next_seq_ + kSeqLeaseBlock);
      }
    }
    drop_acked_locked(watermark_);
    watermark_gauge_.set(static_cast<double>(watermark_));
  }
  breaker_.record_success(now_us());
  connects_.add();
  connected_ = true;
  return true;
}

void RelayClient::disconnect() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
  if (connected_.exchange(false)) disconnects_.add();
}

bool RelayClient::send_frame(serve::MsgType type, std::uint32_t request_id,
                             const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> bytes;
  serve::append_wire_frame(bytes, type, request_id, body);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = serve::faulty_send(fd_, bytes.data() + off,
                                         bytes.size() - off,
                                         config_.socket_faults);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::optional<serve::WireFrame> RelayClient::read_reply(int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    if (auto frame = assembler_.next()) {
      // The relay connection never subscribes, but stay robust to pushes.
      if (frame->type == serve::MsgType::kSnapshot ||
          frame->type == serve::MsgType::kDelta) {
        continue;
      }
      return frame;
    }
    if (assembler_.errored()) return std::nullopt;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - std::chrono::steady_clock::now())
                          .count();
    if (left <= 0) {
      ack_timeouts_.add();
      return std::nullopt;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(left));
    if (pr == 0) {
      ack_timeouts_.add();
      return std::nullopt;
    }
    if (pr < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    std::uint8_t buf[64 * 1024];
    const ssize_t n =
        serve::faulty_recv(fd_, buf, sizeof(buf), config_.socket_faults);
    if (n > 0) {
      if (!assembler_.feed(buf, static_cast<std::size_t>(n))) {
        return std::nullopt;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return std::nullopt;
  }
}

bool RelayClient::send_front() {
  serve::RelayAppend msg;
  bool was_sent = false;
  std::size_t samples = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return true;
    Pending& front = queue_.front();
    if (front.seq == 0) {
      front.seq = next_seq_++;
      if (next_seq_ > lease_end_) {
        persist_state_locked(next_seq_ + kSeqLeaseBlock);
      }
    }
    if (front.payload.empty()) {
      front.payload = transport::encode_samples(front.batch).payload;
    }
    msg.source_id = config_.source_id;
    msg.seq = front.seq;
    msg.priority = front.priority;
    msg.payload = front.payload;
    was_sent = front.sent_once;
    front.sent_once = true;
    samples = front.batch.samples.size();
  }
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint32_t req_id = next_request_++;
  if (!send_frame(serve::MsgType::kRelayAppend, req_id,
                  serve::encode_relay_append(msg))) {
    return false;
  }
  sent_batches_.add();
  if (was_sent) resent_batches_.add();
  while (true) {
    auto reply = read_reply(config_.ack_timeout_ms);
    if (!reply) return false;
    if (reply->request_id != req_id) continue;  // stale: skip
    if (reply->type == serve::MsgType::kError) {
      // The server refused (no relay hook, or the payload failed to decode
      // server-side). Drop the poison entry rather than loop on it; the
      // harness asserts this stays zero.
      std::lock_guard<std::mutex> lock(mu_);
      if (!queue_.empty() && queue_.front().seq == msg.seq) {
        queue_.pop_front();
        pending_gauge_.set(static_cast<double>(queue_.size()));
      }
      rejected_batches_.add();
      if (queue_.empty()) drain_cv_.notify_all();
      return true;
    }
    serve::RelayAck ack;
    if (!serve::decode_relay_ack(reply->body, ack)) return false;
    ack_rtt_us_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
    std::lock_guard<std::mutex> lock(mu_);
    if (ack.watermark > watermark_) watermark_ = ack.watermark;
    drop_acked_locked(watermark_);
    watermark_gauge_.set(static_cast<double>(watermark_));
    (void)samples;
    if (queue_.empty()) drain_cv_.notify_all();
    return true;
  }
}

void RelayClient::drop_acked_locked(std::uint64_t watermark) {
  while (!queue_.empty() && queue_.front().seq != 0 &&
         queue_.front().seq <= watermark) {
    acked_batches_.add();
    acked_samples_.add(queue_.front().batch.samples.size());
    queue_.pop_front();
  }
  pending_gauge_.set(static_cast<double>(queue_.size()));
}

void RelayClient::load_state() {
  next_seq_ = 1;
  lease_end_ = 0;
  if (config_.state_path.empty()) return;
  std::FILE* f = std::fopen(config_.state_path.c_str(), "rb");
  if (f == nullptr) return;
  std::uint8_t buf[4 + 1 + 8 + 8 + 8];
  const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  if (n != sizeof(buf) || std::memcmp(buf, kStateMagic, 4) != 0 ||
      buf[4] != kStateVersion) {
    return;  // torn or foreign state: the hello heal covers the gap
  }
  std::uint64_t source = 0;
  std::uint64_t lease = 0;
  std::uint64_t mark = 0;
  std::memcpy(&source, buf + 5, 8);
  std::memcpy(&lease, buf + 13, 8);
  std::memcpy(&mark, buf + 21, 8);
  if (source != config_.source_id) return;
  // Seqs up to the lease may have been consumed before the crash; resume
  // strictly after it.
  next_seq_ = lease + 1;
  lease_end_ = lease;
  watermark_ = mark;
}

void RelayClient::persist_state_locked(std::uint64_t lease_end) {
  if (config_.state_path.empty()) {
    lease_end_ = lease_end;
    return;
  }
  const auto fault = [&](core::FsOp op) {
    return config_.fs_faults != nullptr ? config_.fs_faults->fs_fault(op)
                                        : core::FsFault::kNone;
  };
  const auto failed = [&] {
    state_write_errors_.add();
  };
  const std::string tmp = config_.state_path + ".tmp";
  if (fault(core::FsOp::kOpen) != core::FsFault::kNone) return failed();
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
                        0644);
  if (fd < 0) return failed();
  std::uint8_t buf[4 + 1 + 8 + 8 + 8];
  std::memcpy(buf, kStateMagic, 4);
  buf[4] = kStateVersion;
  std::memcpy(buf + 5, &config_.source_id, 8);
  std::memcpy(buf + 13, &lease_end, 8);
  std::memcpy(buf + 21, &watermark_, 8);
  const auto wf = fault(core::FsOp::kWrite);
  if (wf != core::FsFault::kNone) {
    if (wf == core::FsFault::kShortWrite) {
      [[maybe_unused]] auto r = ::write(fd, buf, sizeof(buf) / 2);
    }
    ::close(fd);
    ::unlink(tmp.c_str());
    return failed();
  }
  if (::write(fd, buf, sizeof(buf)) != static_cast<ssize_t>(sizeof(buf))) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return failed();
  }
  if (fault(core::FsOp::kFsync) != core::FsFault::kNone || ::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return failed();
  }
  ::close(fd);
  if (fault(core::FsOp::kRename) != core::FsFault::kNone ||
      ::rename(tmp.c_str(), config_.state_path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return failed();
  }
  lease_end_ = lease_end;
}

}  // namespace hpcmon::relay
