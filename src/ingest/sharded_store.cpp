#include "ingest/sharded_store.hpp"

#include <thread>

namespace hpcmon::ingest {

ShardedTimeSeriesStore::ShardedTimeSeriesStore(std::size_t shards,
                                               std::size_t chunk_points) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<store::TimeSeriesStore>(chunk_points));
  }
}

void ShardedTimeSeriesStore::attach_rollup(rollup::RollupTree* tree) {
  rollup_ = tree;
  for (auto& shard : shards_) {
    if (tree != nullptr) {
      shard->set_series_gone_listener(
          [tree](core::SeriesId id) { tree->forget_series(id); });
    } else {
      shard->set_series_gone_listener(nullptr);
    }
  }
}

std::size_t ShardedTimeSeriesStore::append_run(
    core::SeriesId series, std::span<const core::Sample> run) {
  const auto k = shard_of(series);
  const auto accepted = shards_[k]->append_run(series, run);
  if (rollup_ != nullptr && !run.empty()) {
    // Only the max-time sample of a window can win the tree's pending-latest
    // cell, so one observe per run suffices (runs carry the caller's series
    // field, which append_run ignores — rebuild the sample with ours).
    const core::Sample* best = &run.front();
    for (const auto& s : run) {
      if (s.time > best->time) best = &s;
    }
    rollup_->observe(k, core::Sample{series, best->time, best->value});
  }
  return accepted;
}

std::size_t ShardedTimeSeriesStore::append_batch(
    std::span<const core::Sample> samples) {
  if (samples.empty()) return 0;
  if (shards_.size() == 1) {
    const auto accepted = shards_[0]->append_batch(samples);
    if (rollup_ != nullptr) rollup_->observe(0, samples);
    return accepted;
  }
  // Stable counting sort by owning shard into a recycled scratch buffer;
  // each shard then takes one batched append (which stripe-groups
  // internally). Per-series order is preserved, so results are identical to
  // routing sample by sample.
  thread_local std::vector<core::Sample> scratch;
  thread_local std::vector<std::size_t> offsets;
  offsets.assign(shards_.size() + 1, 0);
  for (const auto& s : samples) ++offsets[shard_of(s.series) + 1];
  for (std::size_t k = 1; k <= shards_.size(); ++k) {
    offsets[k] += offsets[k - 1];
  }
  scratch.resize(samples.size());
  thread_local std::vector<std::size_t> fill;
  fill.assign(offsets.begin(), offsets.end());
  for (const auto& s : samples) scratch[fill[shard_of(s.series)]++] = s;

  std::size_t accepted = 0;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const std::size_t n = offsets[k + 1] - offsets[k];
    if (n == 0) continue;
    const std::span<const core::Sample> group(scratch.data() + offsets[k], n);
    accepted += shards_[k]->append_batch(group);
    if (rollup_ != nullptr) rollup_->observe(k, group);
  }
  return accepted;
}

void ShardedTimeSeriesStore::scatter(
    const std::vector<core::SeriesId>& ids,
    const std::function<void(std::size_t, const std::vector<std::size_t>&)>&
        work) const {
  std::vector<std::vector<std::size_t>> groups(shards_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    groups[shard_of(ids[i])].push_back(i);
  }
  std::vector<std::size_t> active;
  for (std::size_t s = 0; s < groups.size(); ++s) {
    if (!groups[s].empty()) active.push_back(s);
  }
  if (active.size() <= 1) {  // nothing to parallelize
    for (const auto s : active) work(s, groups[s]);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(active.size() - 1);
  for (std::size_t k = 1; k < active.size(); ++k) {
    workers.emplace_back(
        [&, s = active[k]] { work(s, groups[s]); });
  }
  work(active[0], groups[active[0]]);  // this thread takes the first group
  for (auto& w : workers) w.join();
}

std::vector<std::optional<double>> ShardedTimeSeriesStore::aggregate_many(
    const std::vector<core::SeriesId>& ids, const core::TimeRange& range,
    store::Agg agg) const {
  std::vector<std::optional<double>> out(ids.size());
  scatter(ids, [&](std::size_t shard, const std::vector<std::size_t>& idx) {
    for (const auto i : idx) {
      out[i] = shards_[shard]->aggregate(ids[i], range, agg);
    }
  });
  return out;
}

std::vector<std::vector<core::TimedValue>>
ShardedTimeSeriesStore::downsample_many(const std::vector<core::SeriesId>& ids,
                                        const core::TimeRange& range,
                                        core::Duration bucket,
                                        store::Agg agg) const {
  std::vector<std::vector<core::TimedValue>> out(ids.size());
  scatter(ids, [&](std::size_t shard, const std::vector<std::size_t>& idx) {
    for (const auto i : idx) {
      out[i] = shards_[shard]->downsample(ids[i], range, bucket, agg);
    }
  });
  return out;
}

std::size_t ShardedTimeSeriesStore::evict_before(
    core::TimePoint cutoff,
    const std::function<void(core::SeriesId, store::Chunk&&)>& sink) {
  std::size_t evicted = 0;
  for (auto& shard : shards_) evicted += shard->evict_before(cutoff, sink);
  return evicted;
}

store::StoreStats ShardedTimeSeriesStore::stats() const {
  store::StoreStats merged;
  for (const auto& shard : shards_) {
    const auto st = shard->stats();
    merged.series += st.series;
    merged.points += st.points;
    merged.sealed_chunks += st.sealed_chunks;
    merged.compressed_bytes += st.compressed_bytes;
    merged.head_points += st.head_points;
  }
  return merged;
}

store::QueryStats ShardedTimeSeriesStore::query_stats() const {
  store::QueryStats merged;
  for (const auto& shard : shards_) merged += shard->query_stats();
  return merged;
}

}  // namespace hpcmon::ingest
