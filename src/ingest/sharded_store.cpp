#include "ingest/sharded_store.hpp"

namespace hpcmon::ingest {

ShardedTimeSeriesStore::ShardedTimeSeriesStore(std::size_t shards,
                                               std::size_t chunk_points) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<store::TimeSeriesStore>(chunk_points));
  }
}

std::size_t ShardedTimeSeriesStore::append_batch(
    const std::vector<core::Sample>& samples) {
  std::size_t accepted = 0;
  for (const auto& s : samples) {
    if (append(s.series, s.time, s.value)) ++accepted;
  }
  return accepted;
}

std::size_t ShardedTimeSeriesStore::evict_before(
    core::TimePoint cutoff,
    const std::function<void(core::SeriesId, store::Chunk&&)>& sink) {
  std::size_t evicted = 0;
  for (auto& shard : shards_) evicted += shard->evict_before(cutoff, sink);
  return evicted;
}

store::StoreStats ShardedTimeSeriesStore::stats() const {
  store::StoreStats merged;
  for (const auto& shard : shards_) {
    const auto st = shard->stats();
    merged.series += st.series;
    merged.points += st.points;
    merged.sealed_chunks += st.sealed_chunks;
    merged.compressed_bytes += st.compressed_bytes;
    merged.head_points += st.head_points;
  }
  return merged;
}

}  // namespace hpcmon::ingest
