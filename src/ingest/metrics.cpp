#include "ingest/metrics.hpp"

#include <algorithm>

#include "core/strings.hpp"

namespace hpcmon::ingest {

IngestMetrics::IngestMetrics(std::size_t shards) : queue_hwm_(shards) {}

void IngestMetrics::record_append(std::size_t merged_batches,
                                  std::size_t accepted,
                                  std::size_t out_of_order,
                                  std::uint64_t duration_us) {
  appends_.fetch_add(1, std::memory_order_relaxed);
  coalesced_batches_.fetch_add(merged_batches, std::memory_order_relaxed);
  accepted_samples_.fetch_add(accepted, std::memory_order_relaxed);
  out_of_order_samples_.fetch_add(out_of_order, std::memory_order_relaxed);
  append_us_.fetch_add(duration_us, std::memory_order_relaxed);
  const std::size_t size = accepted + out_of_order;
  std::size_t bucket = 0;
  while (bucket + 1 < kBatchHistBuckets && (2u << bucket) <= size) ++bucket;
  batch_size_hist_[bucket].fetch_add(1, std::memory_order_relaxed);
}

IngestSnapshot IngestMetrics::snapshot() const {
  IngestSnapshot s;
  s.submitted_batches = submitted_batches_.load(std::memory_order_relaxed);
  s.submitted_samples = submitted_samples_.load(std::memory_order_relaxed);
  s.enqueued_batches = enqueued_batches_.load(std::memory_order_relaxed);
  s.appends = appends_.load(std::memory_order_relaxed);
  s.coalesced_batches = coalesced_batches_.load(std::memory_order_relaxed);
  s.accepted_samples = accepted_samples_.load(std::memory_order_relaxed);
  s.out_of_order_samples =
      out_of_order_samples_.load(std::memory_order_relaxed);
  s.dropped_batches = dropped_batches_.load(std::memory_order_relaxed);
  s.dropped_samples = dropped_samples_.load(std::memory_order_relaxed);
  s.rejected_batches = rejected_batches_.load(std::memory_order_relaxed);
  s.rejected_samples = rejected_samples_.load(std::memory_order_relaxed);
  s.blocked_pushes = blocked_pushes_.load(std::memory_order_relaxed);
  s.block_wait_us = block_wait_us_.load(std::memory_order_relaxed);
  s.append_us = append_us_.load(std::memory_order_relaxed);
  s.queue_hwm.reserve(queue_hwm_.size());
  for (const auto& h : queue_hwm_) {
    s.queue_hwm.push_back(h.load(std::memory_order_relaxed));
  }
  for (std::size_t b = 0; b < kBatchHistBuckets; ++b) {
    s.batch_size_hist[b] = batch_size_hist_[b].load(std::memory_order_relaxed);
  }
  for (std::size_t c = 0; c < core::kPriorityClasses; ++c) {
    s.submitted_by_class[c] =
        submitted_by_class_[c].load(std::memory_order_relaxed);
    s.shed_by_class[c] = shed_by_class_[c].load(std::memory_order_relaxed);
    s.dropped_by_class[c] =
        dropped_by_class_[c].load(std::memory_order_relaxed);
    s.rejected_by_class[c] =
        rejected_by_class_[c].load(std::memory_order_relaxed);
  }
  return s;
}

std::uint64_t IngestSnapshot::max_queue_hwm() const {
  std::uint64_t m = 0;
  for (const auto h : queue_hwm) m = std::max(m, h);
  return m;
}

std::string IngestSnapshot::to_string() const {
  return core::strformat(
      "ingest acc=%llu ooo=%llu drop=%llu rej=%llu shed=%llu blocked=%llu "
      "hwm=%llu batch=%.1f append_us=%.1f crit_lost=%llu",
      static_cast<unsigned long long>(accepted_samples),
      static_cast<unsigned long long>(out_of_order_samples),
      static_cast<unsigned long long>(dropped_samples),
      static_cast<unsigned long long>(rejected_samples),
      static_cast<unsigned long long>(shed_samples()),
      static_cast<unsigned long long>(blocked_pushes),
      static_cast<unsigned long long>(max_queue_hwm()), mean_batch_samples(),
      mean_append_us(),
      static_cast<unsigned long long>(
          dropped_by_class[static_cast<std::size_t>(
              core::Priority::kCritical)] +
          rejected_by_class[static_cast<std::size_t>(
              core::Priority::kCritical)]));
}

std::vector<core::Sample> IngestMetrics::to_samples(
    core::MetricRegistry& registry, core::ComponentId component,
    core::TimePoint now) const {
  const auto snap = snapshot();
  std::vector<core::Sample> out;
  const auto emit = [&](const char* name, const char* units, const char* desc,
                        bool counter, double value) {
    const auto metric = registry.register_metric({name, units, desc, counter});
    out.push_back({registry.series(metric, component), now, value});
  };
  emit("ingest.submitted_samples", "samples",
       "samples offered to the ingest tier", true,
       static_cast<double>(snap.submitted_samples));
  emit("ingest.accepted_samples", "samples",
       "samples stored by the sharded store", true,
       static_cast<double>(snap.accepted_samples));
  emit("ingest.out_of_order_samples", "samples",
       "samples refused by per-series time ordering", true,
       static_cast<double>(snap.out_of_order_samples));
  emit("ingest.dropped_samples", "samples",
       "samples evicted by the drop-oldest overload policy", true,
       static_cast<double>(snap.dropped_samples));
  emit("ingest.rejected_samples", "samples",
       "samples refused at the door by the reject overload policy", true,
       static_cast<double>(snap.rejected_samples));
  emit("ingest.blocked_pushes", "pushes",
       "producer enqueues that hit backpressure (block policy)", true,
       static_cast<double>(snap.blocked_pushes));
  emit("ingest.block_wait_us", "us",
       "cumulative producer time spent blocked on full queues", true,
       static_cast<double>(snap.block_wait_us));
  emit("ingest.append_us", "us",
       "cumulative worker time spent appending to shards", true,
       static_cast<double>(snap.append_us));
  emit("ingest.queue_hwm", "batches",
       "highest per-shard queue depth seen so far", false,
       static_cast<double>(snap.max_queue_hwm()));
  emit("ingest.batch_mean_samples", "samples",
       "mean coalesced batch size per shard append", false,
       snap.mean_batch_samples());
  // Per-priority-class counters: named ingest.<verb>_<class>_samples so one
  // glance at a dashboard shows which class is absorbing the storm. The
  // critical drop/reject series exist precisely so operators can alert on
  // them being nonzero (the invariant the priority machinery enforces).
  for (std::size_t c = 0; c < core::kPriorityClasses; ++c) {
    const auto pri = static_cast<core::Priority>(c);
    const std::string cls{core::to_string(pri)};
    emit(("ingest.submitted_" + cls + "_samples").c_str(), "samples",
         "samples of this priority class offered to the ingest tier", true,
         static_cast<double>(snap.submitted_by_class[c]));
    emit(("ingest.shed_" + cls + "_samples").c_str(), "samples",
         "samples voluntarily shed at the door by the degradation controller",
         true, static_cast<double>(snap.shed_by_class[c]));
    emit(("ingest.dropped_" + cls + "_samples").c_str(), "samples",
         "samples of this priority class lost to drop-oldest eviction", true,
         static_cast<double>(snap.dropped_by_class[c]));
    emit(("ingest.rejected_" + cls + "_samples").c_str(), "samples",
         "samples of this priority class refused at the door under overload",
         true, static_cast<double>(snap.rejected_by_class[c]));
  }
  return out;
}

}  // namespace hpcmon::ingest
