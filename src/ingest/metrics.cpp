#include "ingest/metrics.hpp"

#include <algorithm>
#include <string>

namespace hpcmon::ingest {

IngestMetrics::IngestMetrics(std::size_t shards)
    : queue_hwm_(shards), arena_bytes_(shards) {}

void IngestMetrics::record_append(std::size_t merged_batches,
                                  std::size_t accepted,
                                  std::size_t out_of_order,
                                  std::uint64_t duration_us) {
  appends_.add();
  coalesced_batches_.add(merged_batches);
  accepted_samples_.add(accepted);
  out_of_order_samples_.add(out_of_order);
  append_us_.add(duration_us);
  batch_samples_.record(accepted + out_of_order);
}

IngestSnapshot IngestMetrics::snapshot() const {
  IngestSnapshot s;
  s.submitted_batches = submitted_batches_.value();
  s.submitted_samples = submitted_samples_.value();
  s.enqueued_batches = enqueued_batches_.value();
  s.appends = appends_.value();
  s.coalesced_batches = coalesced_batches_.value();
  s.accepted_samples = accepted_samples_.value();
  s.out_of_order_samples = out_of_order_samples_.value();
  s.dropped_batches = dropped_batches_.value();
  s.dropped_samples = dropped_samples_.value();
  s.rejected_batches = rejected_batches_.value();
  s.rejected_samples = rejected_samples_.value();
  s.blocked_pushes = blocked_pushes_.value();
  s.block_wait_us = block_wait_us_.value();
  s.append_us = append_us_.value();
  s.queue_hwm.reserve(queue_hwm_.size());
  for (const auto& h : queue_hwm_) {
    s.queue_hwm.push_back(static_cast<std::uint64_t>(h.value()));
  }
  for (const auto& a : arena_bytes_) {
    s.arena_bytes += static_cast<std::uint64_t>(a.value());
  }
  s.batch_samples = batch_samples_.snapshot();
  for (std::size_t c = 0; c < core::kPriorityClasses; ++c) {
    s.submitted_by_class[c] = submitted_by_class_[c].value();
    s.shed_by_class[c] = shed_by_class_[c].value();
    s.dropped_by_class[c] = dropped_by_class_[c].value();
    s.rejected_by_class[c] = rejected_by_class_[c].value();
  }
  return s;
}

std::uint64_t IngestSnapshot::max_queue_hwm() const {
  std::uint64_t m = 0;
  for (const auto h : queue_hwm) m = std::max(m, h);
  return m;
}

void IngestMetrics::attach_to(obs::ObsRegistry& registry) const {
  const auto counter = [&](const char* name, const char* unit,
                           const char* desc, const obs::Counter* c) {
    registry.attach({name, unit, desc}, c);
  };
  counter("ingest.submitted_batches", "batches",
          "batches offered via submit()", &submitted_batches_);
  counter("ingest.submitted_samples", "samples",
          "samples offered to the ingest tier", &submitted_samples_);
  counter("ingest.enqueued_batches", "batches",
          "per-shard sub-batches queued", &enqueued_batches_);
  counter("ingest.appends", "appends", "worker append_batch calls", &appends_);
  counter("ingest.coalesced_batches", "batches",
          "sub-batches merged into shard appends", &coalesced_batches_);
  counter("ingest.accepted_samples", "samples",
          "samples stored by the sharded store", &accepted_samples_);
  counter("ingest.out_of_order_samples", "samples",
          "samples refused by per-series time ordering",
          &out_of_order_samples_);
  counter("ingest.dropped_batches", "batches", "drop-oldest evictions",
          &dropped_batches_);
  counter("ingest.dropped_samples", "samples",
          "samples evicted by the drop-oldest overload policy",
          &dropped_samples_);
  counter("ingest.rejected_batches", "batches",
          "batches refused at the door (reject policy or closed pipe)",
          &rejected_batches_);
  counter("ingest.rejected_samples", "samples",
          "samples refused at the door by the reject overload policy",
          &rejected_samples_);
  counter("ingest.blocked_pushes", "pushes",
          "producer enqueues that hit backpressure (block policy)",
          &blocked_pushes_);
  counter("ingest.block_wait_us", "us",
          "cumulative producer time spent blocked on full queues",
          &block_wait_us_);
  counter("ingest.append_us", "us",
          "cumulative worker time spent appending to shards", &append_us_);
  obs::InstrumentInfo hwm;
  hwm.name = "ingest.queue_hwm";
  hwm.unit = "batches";
  hwm.description = "highest per-shard queue depth seen so far";
  hwm.gauge_agg = obs::GaugeAgg::kMax;
  for (const auto& g : queue_hwm_) registry.attach(hwm, &g);
  obs::InstrumentInfo arena;
  arena.name = "ingest.arena_bytes";
  arena.unit = "bytes";
  arena.description = "retained shard-worker sample-arena allocation";
  arena.gauge_agg = obs::GaugeAgg::kSum;  // shard arenas sum to tier memory
  for (const auto& g : arena_bytes_) registry.attach(arena, &g);
  registry.attach({"ingest.batch_samples", "samples",
                   "coalesced samples per shard append"},
                  &batch_samples_);
  // Per-priority-class counters: named ingest.<verb>_<class>_samples so one
  // glance at a dashboard shows which class is absorbing the storm. The
  // critical drop/reject series exist precisely so operators can alert on
  // them being nonzero (the invariant the priority machinery enforces).
  for (std::size_t c = 0; c < core::kPriorityClasses; ++c) {
    const std::string cls{core::to_string(static_cast<core::Priority>(c))};
    registry.attach({"ingest.submitted_" + cls + "_samples", "samples",
                     "samples of this priority class offered to the tier"},
                    &submitted_by_class_[c]);
    registry.attach(
        {"ingest.shed_" + cls + "_samples", "samples",
         "samples voluntarily shed at the door by degradation mode"},
        &shed_by_class_[c]);
    registry.attach({"ingest.dropped_" + cls + "_samples", "samples",
                     "samples of this class lost to drop-oldest eviction"},
                    &dropped_by_class_[c]);
    registry.attach({"ingest.rejected_" + cls + "_samples", "samples",
                     "samples of this class refused at the door"},
                    &rejected_by_class_[c]);
  }
}

}  // namespace hpcmon::ingest
