// ShardedTimeSeriesStore: N independent TimeSeriesStore shards, hash-
// partitioned by SeriesId.
//
// The paper's Sec. IV-C storage pain point is that canonical per-site SQL
// stores "lack scalability with respect to ingest"; the single
// TimeSeriesStore serializes every append behind one global mutex. Sharding
// partitions both the data and the lock: a series lives in exactly one
// shard, so per-series operations route to that shard's store (and its
// mutex), while whole-store operations (stats, eviction) scatter-gather
// across shards. The result is a drop-in superset of TimeSeriesStore: same
// API, identical per-series query results, plus shard-level concurrency for
// the ingest tier (pipeline.hpp) to exploit.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "obs/registry.hpp"
#include "obs/stage.hpp"
#include "rollup/tree.hpp"
#include "store/tsdb.hpp"

namespace hpcmon::ingest {

class ShardedTimeSeriesStore {
 public:
  /// `shards` must be >= 1; `chunk_points` is forwarded to every shard.
  explicit ShardedTimeSeriesStore(std::size_t shards = 4,
                                  std::size_t chunk_points = 512);

  std::size_t shard_count() const { return shards_.size(); }

  /// Owning shard of a series (deterministic multiplicative hash — dense
  /// SeriesIds spread evenly instead of striding into one shard).
  std::size_t shard_of(core::SeriesId id) const {
    return (core::raw(id) * 2654435761u) % shards_.size();
  }

  store::TimeSeriesStore& shard(std::size_t i) { return *shards_[i]; }
  const store::TimeSeriesStore& shard(std::size_t i) const {
    return *shards_[i];
  }

  // -- TimeSeriesStore-compatible API (routed per series) --------------------
  bool append(core::SeriesId series, core::TimePoint t, double value) {
    const auto k = shard_of(series);
    const bool ok = shards_[k]->append(series, t, value);
    if (rollup_ != nullptr) rollup_->observe(k, core::Sample{series, t, value});
    return ok;
  }
  void append(const core::Sample& s) { append(s.series, s.time, s.value); }
  /// Append a batch: samples are grouped by owning shard (stable counting
  /// sort into a recycled scratch buffer) and each shard gets one
  /// stripe-grouped append_batch call instead of a per-sample route+lock.
  std::size_t append_batch(std::span<const core::Sample> samples);
  /// One series' time-ordered run, encoded under a single stripe-lock
  /// acquisition of the owning shard.
  std::size_t append_run(core::SeriesId series,
                         std::span<const core::Sample> run);
  /// Pre-routed batch append for the ingest workers: every sample already
  /// belongs to shard `k` (the pipeline partitioned by shard_of), so this
  /// skips re-routing and keeps the rollup observe on the worker's own
  /// delta domain — the shard(k).append_batch fast path, rollup included.
  std::size_t append_batch_on_shard(std::size_t k,
                                    std::span<const core::Sample> samples) {
    const auto accepted = shards_[k]->append_batch(samples);
    if (rollup_ != nullptr) rollup_->observe(k, samples);
    return accepted;
  }

  std::vector<core::TimedValue> query_range(core::SeriesId series,
                                            const core::TimeRange& range) const {
    return shards_[shard_of(series)]->query_range(series, range);
  }
  std::optional<core::TimedValue> latest(core::SeriesId series) const {
    return shards_[shard_of(series)]->latest(series);
  }
  std::optional<double> aggregate(core::SeriesId series,
                                  const core::TimeRange& range,
                                  store::Agg agg) const {
    return shards_[shard_of(series)]->aggregate(series, range, agg);
  }
  std::vector<core::TimedValue> downsample(core::SeriesId series,
                                           const core::TimeRange& range,
                                           core::Duration bucket,
                                           store::Agg agg) const {
    return shards_[shard_of(series)]->downsample(series, range, bucket, agg);
  }
  std::size_t scan(core::SeriesId series, const core::TimeRange& range,
                   const std::function<bool(const core::TimedValue&)>& visit)
      const {
    return shards_[shard_of(series)]->scan(series, range, visit);
  }
  bool has_series(core::SeriesId series) const {
    return shards_[shard_of(series)]->has_series(series);
  }

  // -- Scatter-gather over all shards ----------------------------------------
  /// Aggregate many series at once — the dashboard/per-job fan-out query.
  /// Series are grouped by owning shard and the shard groups run in
  /// parallel (one thread per shard touched); results align with `ids`.
  std::vector<std::optional<double>> aggregate_many(
      const std::vector<core::SeriesId>& ids, const core::TimeRange& range,
      store::Agg agg) const;
  /// Parallel multi-series downsample; results align with `ids`.
  std::vector<std::vector<core::TimedValue>> downsample_many(
      const std::vector<core::SeriesId>& ids, const core::TimeRange& range,
      core::Duration bucket, store::Agg agg) const;

  /// Evict sealed chunks older than `cutoff` from every shard; total count.
  std::size_t evict_before(core::TimePoint cutoff,
                           const std::function<void(core::SeriesId,
                                                    store::Chunk&&)>& sink);
  /// Merged stats across shards (series are disjoint, so sums are exact).
  store::StoreStats stats() const;
  /// Merged read-path self-metrics across shards.
  store::QueryStats query_stats() const;

  // -- Rollup tree (incremental topology aggregation) ------------------------
  /// Feed every append into `tree` (per-shard delta domains, no cross-shard
  /// lock) and wire each shard's series-gone listener to the tree so
  /// retention retracts rollup membership. `tree->shard_count()` must be
  /// >= shard_count(); nullptr detaches. Not synchronized with appends:
  /// attach before concurrent ingest starts.
  void attach_rollup(rollup::RollupTree* tree);
  rollup::RollupTree* rollup() const { return rollup_; }

  /// O(depth) fleet-wide read from the rollup tree's latest snapshot —
  /// replaces the aggregate_many scatter-gather for topology-level
  /// questions ("mean cpu_util of cabinet 3, now"). nullopt when no tree is
  /// attached or the level is absent/empty.
  std::optional<double> rollup_aggregate(core::ComponentId comp,
                                         std::string_view metric,
                                         store::Agg agg) const {
    if (rollup_ == nullptr) return std::nullopt;
    return rollup_->snapshot()->aggregate(comp, metric, agg);
  }

  /// Attach every shard's read-path instruments under the shared store.*
  /// names; the registry merges them at snapshot time.
  void attach_to(obs::ObsRegistry& registry) const {
    for (const auto& shard : shards_) shard->attach_to(registry);
  }
  /// Route every shard's query spans into `timer`.
  void set_stage_timer(obs::StageTimer* timer) {
    for (auto& shard : shards_) shard->set_stage_timer(timer);
  }

 private:
  /// Run `work(shard, indices-into-ids)` for every shard owning at least one
  /// id — concurrently when more than one shard is touched.
  void scatter(const std::vector<core::SeriesId>& ids,
               const std::function<void(std::size_t,
                                        const std::vector<std::size_t>&)>&
                   work) const;
  // TimeSeriesStore owns a mutex (immovable), so shards live behind pointers.
  std::vector<std::unique_ptr<store::TimeSeriesStore>> shards_;
  rollup::RollupTree* rollup_ = nullptr;
};

}  // namespace hpcmon::ingest
