// IngestMetrics: the ingest tier's self-telemetry, built on hpcmon::obs
// instruments.
//
// Table I demands that transport impact "should be well-documented"; here it
// is measured. Every overload-policy decision (block, drop, reject), every
// out-of-order point the store refuses, queue-depth high-water marks, a
// batch-size histogram, and per-stage latency (producer enqueue wait, worker
// append time) are counted with lock-free obs instruments so the hot path
// stays cheap. The instruments are the single source of truth: attach_to()
// catalogs them in the shared ObsRegistry, where the degradation control
// loop, the hpcmon.self.* export, and the operator report all read the same
// atomics. snapshot() is a typed view for tests and benches.
//
// Clock note: the library's telemetry runs on the simulated timeline, but the
// ingest tier is real threads doing real work, so its latency self-metrics
// are real (steady_clock) durations measured by the pipeline and recorded
// here as plain microsecond totals.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/priority.hpp"
#include "obs/registry.hpp"

namespace hpcmon::ingest {

/// Point-in-time copy of every counter (plain values, safe to print/compare).
struct IngestSnapshot {
  std::uint64_t submitted_batches = 0;  // batches offered via submit()
  std::uint64_t submitted_samples = 0;
  std::uint64_t enqueued_batches = 0;   // per-shard sub-batches queued
  std::uint64_t appends = 0;            // worker append_batch calls
  std::uint64_t coalesced_batches = 0;  // sub-batches merged into appends
  std::uint64_t accepted_samples = 0;   // stored by a shard
  std::uint64_t out_of_order_samples = 0;  // store rejected (time <= last)
  std::uint64_t dropped_batches = 0;    // kDropOldest evictions
  std::uint64_t dropped_samples = 0;
  std::uint64_t rejected_batches = 0;   // kReject refusals (or closed pipe)
  std::uint64_t rejected_samples = 0;
  std::uint64_t blocked_pushes = 0;     // kBlock producer stalls
  std::uint64_t block_wait_us = 0;      // producer time spent in backpressure
  std::uint64_t append_us = 0;          // worker time spent appending
  std::vector<std::uint64_t> queue_hwm;  // per-shard depth high-water mark
  std::uint64_t arena_bytes = 0;  // summed retained worker-arena allocation
  /// Coalesced samples-per-append distribution (log-bucketed, mergeable).
  obs::HistogramSnapshot batch_samples;

  // Per-priority-class accounting (indexed by core::Priority). "Shed" is the
  // voluntary kind — samples the degradation controller turned away at the
  // door (bulk shed, standard downsampled) — as opposed to dropped/rejected,
  // which are involuntary overload losses. The storm-mode invariant is
  // dropped_by_class[kCritical] == rejected_by_class[kCritical] == 0, always.
  std::array<std::uint64_t, core::kPriorityClasses> submitted_by_class{};
  std::array<std::uint64_t, core::kPriorityClasses> shed_by_class{};
  std::array<std::uint64_t, core::kPriorityClasses> dropped_by_class{};
  std::array<std::uint64_t, core::kPriorityClasses> rejected_by_class{};

  std::uint64_t shed_samples() const {
    std::uint64_t total = 0;
    for (const auto s : shed_by_class) total += s;
    return total;
  }
  std::uint64_t lost_samples() const {
    return dropped_samples + rejected_samples;
  }

  double mean_batch_samples() const { return batch_samples.mean(); }
  double mean_append_us() const {
    return appends == 0
               ? 0.0
               : static_cast<double>(append_us) / static_cast<double>(appends);
  }
  std::uint64_t max_queue_hwm() const;
};

class IngestMetrics {
 public:
  explicit IngestMetrics(std::size_t shards);

  // -- Producer side ---------------------------------------------------------
  void record_submit(std::size_t samples) {
    submitted_batches_.add();
    submitted_samples_.add(samples);
  }
  void record_enqueue(std::size_t shard, std::size_t depth_after) {
    enqueued_batches_.add();
    queue_hwm_[shard].update_max(static_cast<double>(depth_after));
  }
  /// The stall is counted on ENTRY to the blocking wait (so an observer can
  /// see that a producer is parked); the wait duration is added once the
  /// producer resumes.
  void record_block_entered() { blocked_pushes_.add(); }
  void record_block_wait(std::uint64_t wait_us) { block_wait_us_.add(wait_us); }
  void record_dropped(std::size_t samples,
                      core::Priority pri = core::Priority::kStandard) {
    dropped_batches_.add();
    dropped_samples_.add(samples);
    dropped_by_class_[static_cast<std::size_t>(pri)].add(samples);
  }
  void record_rejected(std::size_t samples,
                       core::Priority pri = core::Priority::kStandard) {
    rejected_batches_.add();
    rejected_samples_.add(samples);
    rejected_by_class_[static_cast<std::size_t>(pri)].add(samples);
  }
  void record_submit_class(core::Priority pri, std::size_t samples) {
    submitted_by_class_[static_cast<std::size_t>(pri)].add(samples);
  }
  /// Voluntary degradation-mode shedding at the submit door (never critical).
  void record_shed(core::Priority pri, std::size_t samples) {
    shed_by_class_[static_cast<std::size_t>(pri)].add(samples);
  }

  // -- Worker side -----------------------------------------------------------
  void record_append(std::size_t merged_batches, std::size_t accepted,
                     std::size_t out_of_order, std::uint64_t duration_us);
  /// Current retained allocation of a shard worker's sample arena.
  void record_arena(std::size_t shard, std::size_t bytes) {
    arena_bytes_[shard].set(static_cast<double>(bytes));
  }

  IngestSnapshot snapshot() const;

  /// Catalog every instrument as ingest.* in `registry` (critical priority:
  /// the ingest tier's vitals must survive the storms they report on).
  void attach_to(obs::ObsRegistry& registry) const;

 private:
  obs::Counter submitted_batches_;
  obs::Counter submitted_samples_;
  obs::Counter enqueued_batches_;
  obs::Counter appends_;
  obs::Counter coalesced_batches_;
  obs::Counter accepted_samples_;
  obs::Counter out_of_order_samples_;
  obs::Counter dropped_batches_;
  obs::Counter dropped_samples_;
  obs::Counter rejected_batches_;
  obs::Counter rejected_samples_;
  obs::Counter blocked_pushes_;
  obs::Counter block_wait_us_;
  obs::Counter append_us_;
  std::vector<obs::Gauge> queue_hwm_;  // per shard; merged via GaugeAgg::kMax
  std::vector<obs::Gauge> arena_bytes_;  // per shard; merged via GaugeAgg::kSum
  obs::Histogram batch_samples_;
  std::array<obs::Counter, core::kPriorityClasses> submitted_by_class_;
  std::array<obs::Counter, core::kPriorityClasses> shed_by_class_;
  std::array<obs::Counter, core::kPriorityClasses> dropped_by_class_;
  std::array<obs::Counter, core::kPriorityClasses> rejected_by_class_;
};

}  // namespace hpcmon::ingest
