// IngestMetrics: the ingest tier's self-telemetry.
//
// Table I demands that transport impact "should be well-documented"; here it
// is measured. Every overload-policy decision (block, drop, reject), every
// out-of-order point the store refuses, queue-depth high-water marks, a
// batch-size histogram, and per-stage latency (producer enqueue wait, worker
// append time) are counted with relaxed atomics so the hot path stays cheap.
// The counters can be re-emitted as hpcmon series (to_samples) so the monitor
// monitors itself with its own pipeline and dashboards.
//
// Clock note: the library's telemetry runs on the simulated timeline, but the
// ingest tier is real threads doing real work, so its latency self-metrics
// are real (steady_clock) durations measured by the pipeline and recorded
// here as plain microsecond totals.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/priority.hpp"
#include "core/registry.hpp"
#include "core/sample.hpp"
#include "core/time.hpp"

namespace hpcmon::ingest {

/// Batch-size histogram buckets: bucket b counts appends of size in
/// [2^b, 2^(b+1)), with the last bucket open-ended.
inline constexpr std::size_t kBatchHistBuckets = 16;

/// Point-in-time copy of every counter (plain values, safe to print/compare).
struct IngestSnapshot {
  std::uint64_t submitted_batches = 0;  // batches offered via submit()
  std::uint64_t submitted_samples = 0;
  std::uint64_t enqueued_batches = 0;   // per-shard sub-batches queued
  std::uint64_t appends = 0;            // worker append_batch calls
  std::uint64_t coalesced_batches = 0;  // sub-batches merged into appends
  std::uint64_t accepted_samples = 0;   // stored by a shard
  std::uint64_t out_of_order_samples = 0;  // store rejected (time <= last)
  std::uint64_t dropped_batches = 0;    // kDropOldest evictions
  std::uint64_t dropped_samples = 0;
  std::uint64_t rejected_batches = 0;   // kReject refusals (or closed pipe)
  std::uint64_t rejected_samples = 0;
  std::uint64_t blocked_pushes = 0;     // kBlock producer stalls
  std::uint64_t block_wait_us = 0;      // producer time spent in backpressure
  std::uint64_t append_us = 0;          // worker time spent appending
  std::vector<std::uint64_t> queue_hwm;  // per-shard depth high-water mark
  std::array<std::uint64_t, kBatchHistBuckets> batch_size_hist{};

  // Per-priority-class accounting (indexed by core::Priority). "Shed" is the
  // voluntary kind — samples the degradation controller turned away at the
  // door (bulk shed, standard downsampled) — as opposed to dropped/rejected,
  // which are involuntary overload losses. The storm-mode invariant is
  // dropped_by_class[kCritical] == rejected_by_class[kCritical] == 0, always.
  std::array<std::uint64_t, core::kPriorityClasses> submitted_by_class{};
  std::array<std::uint64_t, core::kPriorityClasses> shed_by_class{};
  std::array<std::uint64_t, core::kPriorityClasses> dropped_by_class{};
  std::array<std::uint64_t, core::kPriorityClasses> rejected_by_class{};

  std::uint64_t shed_samples() const {
    std::uint64_t total = 0;
    for (const auto s : shed_by_class) total += s;
    return total;
  }
  std::uint64_t lost_samples() const { return dropped_samples + rejected_samples; }

  double mean_batch_samples() const {
    return appends == 0 ? 0.0
                        : static_cast<double>(accepted_samples +
                                              out_of_order_samples) /
                              static_cast<double>(appends);
  }
  double mean_append_us() const {
    return appends == 0
               ? 0.0
               : static_cast<double>(append_us) / static_cast<double>(appends);
  }
  std::uint64_t max_queue_hwm() const;
  /// One-line operator summary for MonitoringStack::status().
  std::string to_string() const;
};

class IngestMetrics {
 public:
  explicit IngestMetrics(std::size_t shards);

  // -- Producer side ---------------------------------------------------------
  void record_submit(std::size_t samples) {
    submitted_batches_.fetch_add(1, std::memory_order_relaxed);
    submitted_samples_.fetch_add(samples, std::memory_order_relaxed);
  }
  void record_enqueue(std::size_t shard, std::size_t depth_after) {
    enqueued_batches_.fetch_add(1, std::memory_order_relaxed);
    auto& hwm = queue_hwm_[shard];
    std::uint64_t seen = hwm.load(std::memory_order_relaxed);
    while (seen < depth_after &&
           !hwm.compare_exchange_weak(seen, depth_after,
                                      std::memory_order_relaxed)) {
    }
  }
  /// The stall is counted on ENTRY to the blocking wait (so an observer can
  /// see that a producer is parked); the wait duration is added once the
  /// producer resumes.
  void record_block_entered() {
    blocked_pushes_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_block_wait(std::uint64_t wait_us) {
    block_wait_us_.fetch_add(wait_us, std::memory_order_relaxed);
  }
  void record_dropped(std::size_t samples,
                      core::Priority pri = core::Priority::kStandard) {
    dropped_batches_.fetch_add(1, std::memory_order_relaxed);
    dropped_samples_.fetch_add(samples, std::memory_order_relaxed);
    dropped_by_class_[static_cast<std::size_t>(pri)].fetch_add(
        samples, std::memory_order_relaxed);
  }
  void record_rejected(std::size_t samples,
                       core::Priority pri = core::Priority::kStandard) {
    rejected_batches_.fetch_add(1, std::memory_order_relaxed);
    rejected_samples_.fetch_add(samples, std::memory_order_relaxed);
    rejected_by_class_[static_cast<std::size_t>(pri)].fetch_add(
        samples, std::memory_order_relaxed);
  }
  void record_submit_class(core::Priority pri, std::size_t samples) {
    submitted_by_class_[static_cast<std::size_t>(pri)].fetch_add(
        samples, std::memory_order_relaxed);
  }
  /// Voluntary degradation-mode shedding at the submit door (never critical).
  void record_shed(core::Priority pri, std::size_t samples) {
    shed_by_class_[static_cast<std::size_t>(pri)].fetch_add(
        samples, std::memory_order_relaxed);
  }

  // -- Worker side -----------------------------------------------------------
  void record_append(std::size_t merged_batches, std::size_t accepted,
                     std::size_t out_of_order, std::uint64_t duration_us);

  IngestSnapshot snapshot() const;

  /// Re-emit the counters as hpcmon samples at simulated time `now`, interning
  /// "ingest.*" metrics on `component`. Counters are emitted cumulative
  /// (is_counter = true), gauges (queue high-water, mean batch/latency) as
  /// instantaneous values.
  std::vector<core::Sample> to_samples(core::MetricRegistry& registry,
                                       core::ComponentId component,
                                       core::TimePoint now) const;

 private:
  std::atomic<std::uint64_t> submitted_batches_{0};
  std::atomic<std::uint64_t> submitted_samples_{0};
  std::atomic<std::uint64_t> enqueued_batches_{0};
  std::atomic<std::uint64_t> appends_{0};
  std::atomic<std::uint64_t> coalesced_batches_{0};
  std::atomic<std::uint64_t> accepted_samples_{0};
  std::atomic<std::uint64_t> out_of_order_samples_{0};
  std::atomic<std::uint64_t> dropped_batches_{0};
  std::atomic<std::uint64_t> dropped_samples_{0};
  std::atomic<std::uint64_t> rejected_batches_{0};
  std::atomic<std::uint64_t> rejected_samples_{0};
  std::atomic<std::uint64_t> blocked_pushes_{0};
  std::atomic<std::uint64_t> block_wait_us_{0};
  std::atomic<std::uint64_t> append_us_{0};
  std::vector<std::atomic<std::uint64_t>> queue_hwm_;
  std::array<std::atomic<std::uint64_t>, kBatchHistBuckets> batch_size_hist_{};
  std::array<std::atomic<std::uint64_t>, core::kPriorityClasses>
      submitted_by_class_{};
  std::array<std::atomic<std::uint64_t>, core::kPriorityClasses>
      shed_by_class_{};
  std::array<std::atomic<std::uint64_t>, core::kPriorityClasses>
      dropped_by_class_{};
  std::array<std::atomic<std::uint64_t>, core::kPriorityClasses>
      rejected_by_class_{};
};

}  // namespace hpcmon::ingest
