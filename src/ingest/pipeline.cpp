#include "ingest/pipeline.hpp"

#include <chrono>

#include "ingest/arena.hpp"

namespace hpcmon::ingest {

namespace {
using std::chrono::steady_clock;

std::uint64_t elapsed_us(steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          steady_clock::now() - since)
          .count());
}
}  // namespace

std::string_view to_string(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock: return "block";
    case OverloadPolicy::kDropOldest: return "drop_oldest";
    case OverloadPolicy::kReject: return "reject";
  }
  return "?";
}

OverloadPolicy policy_from_string(std::string_view name, OverloadPolicy dflt) {
  if (name == "block") return OverloadPolicy::kBlock;
  if (name == "drop_oldest") return OverloadPolicy::kDropOldest;
  if (name == "reject") return OverloadPolicy::kReject;
  return dflt;
}

IngestPipeline::IngestPipeline(ShardedTimeSeriesStore& store,
                               IngestConfig config)
    : store_(store), config_(config), metrics_(store.shard_count()) {
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  if (config_.max_coalesce_batches == 0) config_.max_coalesce_batches = 1;
  if (config_.standard_stride == 0) config_.standard_stride = 1;
  obs_ = config_.obs != nullptr ? config_.obs : &own_obs_;
  metrics_.attach_to(*obs_);
  channels_.reserve(store_.shard_count());
  for (std::size_t i = 0; i < store_.shard_count(); ++i) {
    channels_.push_back(std::make_unique<transport::Channel<PrioritizedBatch>>(
        config_.queue_capacity));
  }
}

core::Priority IngestPipeline::priority_of(core::SeriesId series) {
  if (!config_.priority_of) return core::Priority::kStandard;
  const auto idx = static_cast<std::size_t>(core::raw(series));
  {
    std::shared_lock lock(pri_mu_);
    if (idx < pri_cache_.size() && pri_cache_[idx] != 255) {
      return static_cast<core::Priority>(pri_cache_[idx]);
    }
  }
  const auto pri = config_.priority_of(series);
  std::unique_lock lock(pri_mu_);
  if (idx >= pri_cache_.size()) pri_cache_.resize(idx + 1, 255);
  pri_cache_[idx] = static_cast<std::uint8_t>(pri);
  return pri;
}

bool IngestPipeline::admit_standard(core::SeriesId series) {
  const auto idx = static_cast<std::size_t>(core::raw(series));
  std::scoped_lock lock(stride_mu_);
  if (idx >= stride_counts_.size()) stride_counts_.resize(idx + 1, 0);
  return (stride_counts_[idx]++ % config_.standard_stride) == 0;
}

IngestPipeline::~IngestPipeline() { stop(); }

void IngestPipeline::start() {
  if (started_ || stopped_) return;
  started_ = true;
  workers_.reserve(channels_.size());
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    workers_.emplace_back([this, i] { worker(i); });
  }
}

std::size_t IngestPipeline::submit(const core::SampleBatch& batch) {
  metrics_.record_submit(batch.size());
  const auto mode = this->mode();
  // Partition by owning shard AND priority class, applying the degradation
  // mode's door policy per sample; each queued item then has one uniform
  // class, which keeps per-series ordering (a series has exactly one class)
  // and lets eviction treat items wholesale.
  constexpr std::size_t kClasses = core::kPriorityClasses;
  std::vector<std::array<core::SampleBatch, kClasses>> parts(channels_.size());
  std::array<std::size_t, kClasses> offered{};
  std::array<std::size_t, kClasses> shed{};
  for (const auto& s : batch.samples) {
    const auto pri = priority_of(s.series);
    const auto cls = static_cast<std::size_t>(pri);
    ++offered[cls];
    if (pri == core::Priority::kBulk &&
        mode >= core::DegradationMode::kShedBulk) {
      ++shed[cls];
      continue;
    }
    if (pri == core::Priority::kStandard) {
      if (mode == core::DegradationMode::kQuarantine ||
          (mode == core::DegradationMode::kSummarize &&
           !admit_standard(s.series))) {
        ++shed[cls];
        continue;
      }
    }
    parts[store_.shard_of(s.series)][cls].samples.push_back(s);
  }
  for (std::size_t c = 0; c < kClasses; ++c) {
    const auto pri = static_cast<core::Priority>(c);
    if (offered[c] > 0) metrics_.record_submit_class(pri, offered[c]);
    if (shed[c] > 0) metrics_.record_shed(pri, shed[c]);
  }

  std::size_t enqueued = 0;
  for (std::size_t shard = 0; shard < parts.size(); ++shard) {
    for (std::size_t c = 0; c < kClasses; ++c) {
      auto& samples = parts[shard][c].samples;
      if (samples.empty()) continue;
      const auto pri = static_cast<core::Priority>(c);
      PrioritizedBatch part;
      part.priority = pri;
      part.batch.samples = std::move(samples);
      part.batch.sweep_time = batch.sweep_time;
      part.batch.origin = batch.origin;
      if (config_.stages != nullptr) part.enqueue_time = steady_clock::now();
      const std::size_t n = part.batch.samples.size();
      auto& ch = *channels_[shard];
      const bool critical = pri == core::Priority::kCritical;

      // Fast path: space available (push_for with zero wait does not consume
      // `part` on failure, so the policy below still owns the same item).
      bool pushed = ch.push_for(part, std::chrono::seconds(0));
      if (!pushed) {
        // Critical sub-batches bypass the lossy policies: make room by
        // evicting lower-priority queued work, then fall back to bounded
        // blocking backpressure. The only way a critical batch is refused is
        // a closed (stopping) pipeline.
        const auto policy = critical && config_.policy != OverloadPolicy::kBlock
                                ? OverloadPolicy::kDropOldest
                                : config_.policy;
        switch (policy) {
          case OverloadPolicy::kBlock: {
            if (ch.closed()) break;  // reject, not a backpressure stall
            metrics_.record_block_entered();
            const auto t0 = steady_clock::now();
            // Bounded waits so a closed pipeline cannot wedge a producer.
            while (!ch.closed() && !(pushed = ch.push_for(
                                         part, std::chrono::milliseconds(50)))) {
            }
            metrics_.record_block_wait(elapsed_us(t0));
            break;
          }
          case OverloadPolicy::kDropOldest: {
            bool block_entered = false;
            auto t0 = steady_clock::now();
            while (!ch.closed() &&
                   !(pushed = ch.push_for(part, std::chrono::seconds(0)))) {
              // Evict the oldest item of the worst class present, down to the
              // incoming batch's own class (classic drop-oldest within a
              // class) — bulk before standard, critical never.
              const std::size_t floor = c < 1 ? 1 : c;
              std::optional<PrioritizedBatch> evicted;
              for (std::size_t victim = kClasses - 1; victim >= floor;
                   --victim) {
                evicted = ch.evict_first_if([victim](const PrioritizedBatch& q) {
                  return static_cast<std::size_t>(q.priority) == victim;
                });
                if (evicted) break;
              }
              if (evicted) {
                metrics_.record_dropped(evicted->batch.samples.size(),
                                        evicted->priority);
                in_flight_.fetch_add(-1, std::memory_order_acq_rel);
                continue;
              }
              if (critical) {
                // Nothing outranked below us (queue is all-critical):
                // backpressure rather than lose critical data.
                if (!block_entered) {
                  block_entered = true;
                  metrics_.record_block_entered();
                  t0 = steady_clock::now();
                }
                pushed = ch.push_for(part, std::chrono::milliseconds(50));
                continue;
              }
              // Incoming batch ranks no higher than anything queued: the
              // incoming work IS the oldest-to-shed equivalent. Drop it.
              break;
            }
            if (block_entered) metrics_.record_block_wait(elapsed_us(t0));
            if (!pushed && !ch.closed()) {
              metrics_.record_dropped(n, pri);
              continue;  // counted as dropped, not rejected
            }
            break;
          }
          case OverloadPolicy::kReject:
            break;
        }
      }
      if (pushed) {
        in_flight_.fetch_add(1, std::memory_order_acq_rel);
        metrics_.record_enqueue(shard, ch.size());
        enqueued += n;
      } else {
        metrics_.record_rejected(n, pri);
      }
    }
  }
  return enqueued;
}

void IngestPipeline::drain() {
  if (!started_ || stopped_) return;
  while (in_flight_.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

bool IngestPipeline::drain_for(std::chrono::milliseconds deadline) {
  if (!started_ || stopped_) {
    return in_flight_.load(std::memory_order_acquire) <= 0;
  }
  const auto until = steady_clock::now() + deadline;
  while (in_flight_.load(std::memory_order_acquire) > 0) {
    if (steady_clock::now() >= until) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

void IngestPipeline::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& ch : channels_) ch->close();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void IngestPipeline::worker(std::size_t shard) {
  auto& ch = *channels_[shard];
  const auto idle = std::chrono::milliseconds(config_.idle_poll_ms);
  // Per-worker merge arena: reset on every drain, so the coalesce+append
  // hot loop reuses one warmed-up allocation instead of growing and freeing
  // a vector per iteration.
  SampleArena arena;
  for (;;) {
    auto first = ch.pop_for(idle);
    if (!first) {
      // Timeout or closed-and-drained; this worker is the only consumer, so
      // the emptiness check cannot race another pop.
      if (ch.closed() && ch.size() == 0) return;
      continue;
    }
    const auto work_t0 = steady_clock::now();
    const auto queue_wait = [&](const PrioritizedBatch& item) {
      if (config_.stages == nullptr) return;
      config_.stages->record(
          obs::Stage::kQueueWait,
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  work_t0 - item.enqueue_time)
                  .count()));
    };
    queue_wait(*first);
    // Coalesce whatever else is already queued (bounded) into one append:
    // fewer lock acquisitions per sample, and the batch-size histogram shows
    // how bursty the offered load was. Classes may mix in the merged append;
    // the store does not care, and each sub-batch already survived the
    // priority-aware admission above.
    arena.reset();
    arena.append(first->batch.samples);
    std::size_t sub_batches = 1;
    while (sub_batches < config_.max_coalesce_batches) {
      auto more = ch.try_pop();
      if (!more) break;
      queue_wait(*more);
      arena.append(more->batch.samples);
      ++sub_batches;
    }
    const auto t0 = steady_clock::now();
    const std::size_t accepted =
        store_.append_batch_on_shard(shard, arena.run());
    const auto append_us = elapsed_us(t0);
    metrics_.record_append(sub_batches, accepted, arena.size() - accepted,
                           append_us);
    metrics_.record_arena(shard, arena.capacity_bytes());
    if (config_.stages != nullptr) {
      config_.stages->record(obs::Stage::kStoreAppend, append_us);
      config_.stages->record(obs::Stage::kShardWorker, elapsed_us(work_t0));
    }
    in_flight_.fetch_add(-static_cast<std::int64_t>(sub_batches),
                         std::memory_order_acq_rel);
  }
}

}  // namespace hpcmon::ingest
