#include "ingest/pipeline.hpp"

#include <chrono>

namespace hpcmon::ingest {

namespace {
using std::chrono::steady_clock;

std::uint64_t elapsed_us(steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          steady_clock::now() - since)
          .count());
}
}  // namespace

std::string_view to_string(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock: return "block";
    case OverloadPolicy::kDropOldest: return "drop_oldest";
    case OverloadPolicy::kReject: return "reject";
  }
  return "?";
}

OverloadPolicy policy_from_string(std::string_view name, OverloadPolicy dflt) {
  if (name == "block") return OverloadPolicy::kBlock;
  if (name == "drop_oldest") return OverloadPolicy::kDropOldest;
  if (name == "reject") return OverloadPolicy::kReject;
  return dflt;
}

IngestPipeline::IngestPipeline(ShardedTimeSeriesStore& store,
                               IngestConfig config)
    : store_(store), config_(config), metrics_(store.shard_count()) {
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  if (config_.max_coalesce_batches == 0) config_.max_coalesce_batches = 1;
  channels_.reserve(store_.shard_count());
  for (std::size_t i = 0; i < store_.shard_count(); ++i) {
    channels_.push_back(
        std::make_unique<transport::Channel<core::SampleBatch>>(
            config_.queue_capacity));
  }
}

IngestPipeline::~IngestPipeline() { stop(); }

void IngestPipeline::start() {
  if (started_ || stopped_) return;
  started_ = true;
  workers_.reserve(channels_.size());
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    workers_.emplace_back([this, i] { worker(i); });
  }
}

std::size_t IngestPipeline::submit(const core::SampleBatch& batch) {
  metrics_.record_submit(batch.size());
  // Partition by owning shard; sub-batches inherit the sweep metadata.
  std::vector<core::SampleBatch> parts(channels_.size());
  for (const auto& s : batch.samples) {
    parts[store_.shard_of(s.series)].samples.push_back(s);
  }
  std::size_t enqueued = 0;
  for (std::size_t shard = 0; shard < parts.size(); ++shard) {
    auto& part = parts[shard];
    if (part.samples.empty()) continue;
    part.sweep_time = batch.sweep_time;
    part.origin = batch.origin;
    const std::size_t n = part.samples.size();
    auto& ch = *channels_[shard];

    // Fast path: space available (push_for with zero wait does not consume
    // `part` on failure, so the policy below still owns the same item).
    bool pushed = ch.push_for(part, std::chrono::seconds(0));
    if (!pushed) {
      switch (config_.policy) {
        case OverloadPolicy::kBlock: {
          if (ch.closed()) break;  // reject, not a backpressure stall
          metrics_.record_block_entered();
          const auto t0 = steady_clock::now();
          // Bounded waits so a closed pipeline cannot wedge a producer.
          while (!ch.closed() &&
                 !(pushed = ch.push_for(part, std::chrono::milliseconds(50)))) {
          }
          metrics_.record_block_wait(elapsed_us(t0));
          break;
        }
        case OverloadPolicy::kDropOldest: {
          while (!ch.closed() &&
                 !(pushed = ch.push_for(part, std::chrono::seconds(0)))) {
            if (auto oldest = ch.try_pop()) {
              metrics_.record_dropped(oldest->samples.size());
              in_flight_.fetch_add(-1, std::memory_order_acq_rel);
            }
          }
          break;
        }
        case OverloadPolicy::kReject:
          break;
      }
    }
    if (pushed) {
      in_flight_.fetch_add(1, std::memory_order_acq_rel);
      metrics_.record_enqueue(shard, ch.size());
      enqueued += n;
    } else {
      metrics_.record_rejected(n);
    }
  }
  return enqueued;
}

void IngestPipeline::drain() {
  if (!started_ || stopped_) return;
  while (in_flight_.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void IngestPipeline::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& ch : channels_) ch->close();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void IngestPipeline::worker(std::size_t shard) {
  auto& ch = *channels_[shard];
  auto& store = store_.shard(shard);
  const auto idle = std::chrono::milliseconds(config_.idle_poll_ms);
  for (;;) {
    auto first = ch.pop_for(idle);
    if (!first) {
      // Timeout or closed-and-drained; this worker is the only consumer, so
      // the emptiness check cannot race another pop.
      if (ch.closed() && ch.size() == 0) return;
      continue;
    }
    // Coalesce whatever else is already queued (bounded) into one append:
    // fewer lock acquisitions per sample, and the batch-size histogram shows
    // how bursty the offered load was.
    core::SampleBatch merged = std::move(*first);
    std::size_t sub_batches = 1;
    while (sub_batches < config_.max_coalesce_batches) {
      auto more = ch.try_pop();
      if (!more) break;
      merged.samples.insert(merged.samples.end(), more->samples.begin(),
                            more->samples.end());
      ++sub_batches;
    }
    const auto t0 = steady_clock::now();
    const std::size_t accepted = store.append_batch(merged.samples);
    metrics_.record_append(sub_batches, accepted,
                           merged.samples.size() - accepted, elapsed_us(t0));
    in_flight_.fetch_add(-static_cast<std::int64_t>(sub_batches),
                         std::memory_order_acq_rel);
  }
}

}  // namespace hpcmon::ingest
