// SampleArena: a recycled bump buffer for the ingest hot path.
//
// Each shard worker merges coalesced PrioritizedBatch sub-batches into one
// contiguous sample run before appending. Doing that with a fresh
// std::vector per iteration means steady-state malloc/free traffic exactly
// on the hot path the paper says must cost nothing. The arena is the
// same contiguous buffer, but reset() only rewinds the bump pointer — the
// allocation survives across pipeline iterations, so after warm-up the
// worker loop performs zero heap operations regardless of batch shape.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/sample.hpp"

namespace hpcmon::ingest {

class SampleArena {
 public:
  /// Rewind the bump pointer; capacity (and therefore the warmed-up
  /// allocation) is retained.
  void reset() { used_ = 0; }

  /// Bump-append `samples` onto the current run (geometric growth while
  /// warming up, plain copies afterwards).
  void append(std::span<const core::Sample> samples) {
    const std::size_t need = used_ + samples.size();
    if (need > buf_.size()) {
      buf_.resize(need < 2 * buf_.capacity() ? 2 * buf_.capacity() : need);
    }
    for (const auto& s : samples) buf_[used_++] = s;
  }

  /// The samples appended since the last reset, contiguous.
  std::span<const core::Sample> run() const {
    return {buf_.data(), used_};
  }

  std::size_t size() const { return used_; }
  /// Retained allocation (feeds the ingest.arena_bytes gauge).
  std::size_t capacity_bytes() const {
    return buf_.capacity() * sizeof(core::Sample);
  }

 private:
  std::vector<core::Sample> buf_;
  std::size_t used_ = 0;
};

}  // namespace hpcmon::ingest
