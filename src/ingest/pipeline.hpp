// IngestPipeline: a sharded, multi-threaded ingest tier with backpressure.
//
// The queue-decoupled ingestion shape every site in the paper converged on
// (RabbitMQ -> Elasticsearch at NERSC, Sec. IV-C; "sharding, batching,
// async" in the roadmap): producers submit SampleBatches; submit() hash-
// partitions each batch by series into per-shard sub-batches and enqueues
// them on bounded transport::Channels; one worker thread per shard pops,
// coalesces adjacent sub-batches, and appends to its ShardedTimeSeriesStore
// shard. Because a series always maps to the same shard and each shard has
// one worker, per-series ordering is preserved end to end — pipeline results
// are identical to appending the same stream synchronously.
//
// When a queue is full, one of three configurable overload policies applies
// (Table I: transport impact "should be well-documented" — here every
// decision is counted in IngestMetrics):
//   kBlock      producer waits (backpressure; lossless)
//   kDropOldest evict the oldest queued sub-batch to admit the new one
//               (bounded staleness; sheds the oldest load first)
//   kReject     refuse the new sub-batch at the door (protects queued work)
//
// Determinism: the synchronous store path stays the default in
// MonitoringStack; the pipeline is opt-in (ingest_shards > 0). For
// deterministic overload tests, construct without start(): submissions then
// exercise the policies against static full queues with exact counts.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "core/sample.hpp"
#include "ingest/metrics.hpp"
#include "ingest/sharded_store.hpp"
#include "transport/channel.hpp"

namespace hpcmon::ingest {

enum class OverloadPolicy : std::uint8_t { kBlock, kDropOldest, kReject };

std::string_view to_string(OverloadPolicy policy);
/// Parse "block" / "drop_oldest" / "reject"; anything else returns `dflt`.
OverloadPolicy policy_from_string(std::string_view name, OverloadPolicy dflt);

struct IngestConfig {
  /// Bounded sub-batches per shard queue.
  std::size_t queue_capacity = 256;
  OverloadPolicy policy = OverloadPolicy::kBlock;
  /// Max queued sub-batches a worker merges into one shard append.
  std::size_t max_coalesce_batches = 16;
  /// Worker wake period while idle (bounds shutdown latency).
  int idle_poll_ms = 20;
};

class IngestPipeline {
 public:
  /// One queue + one worker per shard of `store` (which must outlive the
  /// pipeline). Workers do not run until start().
  IngestPipeline(ShardedTimeSeriesStore& store, IngestConfig config = {});
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Spawn the per-shard worker threads. Idempotent; not restartable after
  /// stop().
  void start();
  bool started() const { return started_; }

  /// Partition `batch` by shard and enqueue per the overload policy.
  /// Returns the number of samples actually enqueued (the rest were dropped
  /// or rejected and counted). Thread-safe; callable from many producers.
  std::size_t submit(const core::SampleBatch& batch);

  /// Block until every enqueued sub-batch has been appended. Requires
  /// started(); returns immediately otherwise.
  void drain();

  /// Close the queues, let workers drain what is already queued, join them.
  /// Subsequent submissions are counted as rejected.
  void stop();

  const IngestMetrics& metrics() const { return metrics_; }
  ShardedTimeSeriesStore& store() { return store_; }
  const IngestConfig& config() const { return config_; }
  std::size_t queue_depth(std::size_t shard) const {
    return channels_[shard]->size();
  }

 private:
  void worker(std::size_t shard);

  ShardedTimeSeriesStore& store_;
  IngestConfig config_;
  IngestMetrics metrics_;
  std::vector<std::unique_ptr<transport::Channel<core::SampleBatch>>> channels_;
  std::vector<std::thread> workers_;
  std::atomic<std::int64_t> in_flight_{0};  // enqueued, not yet appended
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace hpcmon::ingest
