// IngestPipeline: a sharded, multi-threaded ingest tier with backpressure.
//
// The queue-decoupled ingestion shape every site in the paper converged on
// (RabbitMQ -> Elasticsearch at NERSC, Sec. IV-C; "sharding, batching,
// async" in the roadmap): producers submit SampleBatches; submit() hash-
// partitions each batch by series into per-shard sub-batches and enqueues
// them on bounded transport::Channels; one worker thread per shard pops,
// coalesces adjacent sub-batches, and appends to its ShardedTimeSeriesStore
// shard. Because a series always maps to the same shard and each shard has
// one worker, per-series ordering is preserved end to end — pipeline results
// are identical to appending the same stream synchronously.
//
// When a queue is full, one of three configurable overload policies applies
// (Table I: transport impact "should be well-documented" — here every
// decision is counted in IngestMetrics):
//   kBlock      producer waits (backpressure; lossless)
//   kDropOldest evict the oldest queued sub-batch to admit the new one
//               (bounded staleness; sheds the oldest load first)
//   kReject     refuse the new sub-batch at the door (protects queued work)
//
// Storm mode (this tier's half of the tentpole): every series carries a
// Priority class (core/priority.hpp) and submit() partitions per shard per
// class, so shedding is priority-aware — drop-oldest evicts bulk first, then
// standard, and critical sub-batches are never dropped or rejected while the
// pipeline is open (they fall back to bounded blocking backpressure; the WAL
// upstream makes them durable besides). A DegradationMode set by the
// resilience controller additionally sheds at the door: SHED_BULK turns bulk
// away, SUMMARIZE downsamples standard per series, QUARANTINE admits only
// critical. Voluntary sheds and involuntary losses are counted per class.
//
// Determinism: the synchronous store path stays the default in
// MonitoringStack; the pipeline is opt-in (ingest_shards > 0). For
// deterministic overload tests, construct without start(): submissions then
// exercise the policies against static full queues with exact counts.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "core/priority.hpp"
#include "core/sample.hpp"
#include "ingest/metrics.hpp"
#include "ingest/sharded_store.hpp"
#include "obs/registry.hpp"
#include "obs/stage.hpp"
#include "transport/channel.hpp"

namespace hpcmon::ingest {

enum class OverloadPolicy : std::uint8_t { kBlock, kDropOldest, kReject };

std::string_view to_string(OverloadPolicy policy);
/// Parse "block" / "drop_oldest" / "reject"; anything else returns `dflt`.
OverloadPolicy policy_from_string(std::string_view name, OverloadPolicy dflt);

/// The unit queued on a shard channel: a sub-batch whose samples all share
/// one priority class (submit() partitions per shard *and* per class), so
/// overload eviction can reason about a queued item's class as a whole.
struct PrioritizedBatch {
  core::Priority priority = core::Priority::kStandard;
  core::SampleBatch batch;
  /// When the producer enqueued it (feeds the queue_wait stage histogram).
  std::chrono::steady_clock::time_point enqueue_time{};
};

struct IngestConfig {
  /// Bounded sub-batches per shard queue.
  std::size_t queue_capacity = 256;
  OverloadPolicy policy = OverloadPolicy::kBlock;
  /// Max queued sub-batches a worker merges into one shard append.
  std::size_t max_coalesce_batches = 16;
  /// Worker wake period while idle (bounds shutdown latency).
  int idle_poll_ms = 20;
  /// Priority lookup for a series (typically MetricRegistry::series_priority
  /// via the owning stack). Unset => every sample is kStandard and the
  /// priority machinery is inert (seed behavior).
  std::function<core::Priority(core::SeriesId)> priority_of;
  /// In SUMMARIZE mode, admit every Nth standard-class sample per series
  /// (downsample-on-ingest); the rest are counted as voluntarily shed.
  std::size_t standard_stride = 4;
  /// Shared obs registry to catalog the tier's instruments in. Unset => the
  /// pipeline attaches them to a private registry (see obs()).
  obs::ObsRegistry* obs = nullptr;
  /// Stage timer for queue_wait / shard_worker / store_append spans; unset
  /// disables span recording.
  obs::StageTimer* stages = nullptr;
};

class IngestPipeline {
 public:
  /// One queue + one worker per shard of `store` (which must outlive the
  /// pipeline). Workers do not run until start().
  IngestPipeline(ShardedTimeSeriesStore& store, IngestConfig config = {});
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Spawn the per-shard worker threads. Idempotent; not restartable after
  /// stop().
  void start();
  bool started() const { return started_; }

  /// Partition `batch` by shard and priority class, apply the current
  /// degradation mode at the door (bulk shed, standard downsample /
  /// quarantine), and enqueue per the overload policy. Critical-class
  /// sub-batches are never dropped or rejected while the pipeline is open:
  /// under kDropOldest/kReject they fall back to eviction of lower-priority
  /// queued work and then to bounded blocking (backpressure). Returns the
  /// number of samples actually enqueued (the rest were shed, dropped, or
  /// rejected and counted). Thread-safe; callable from many producers.
  std::size_t submit(const core::SampleBatch& batch);

  /// Block until every enqueued sub-batch has been appended. Requires
  /// started(); returns immediately otherwise.
  void drain();

  /// drain() with a deadline: returns true once in-flight work hits zero,
  /// false if the deadline expired first (remaining items are abandoned to
  /// the caller's accounting; see MonitoringStack::shutdown). Returns true
  /// immediately when not started.
  bool drain_for(std::chrono::milliseconds deadline);

  /// Close the queues, let workers drain what is already queued, join them.
  /// Subsequent submissions are counted as rejected.
  void stop();

  /// Degradation mode applied by submit() at the door. Set by the
  /// resilience::DegradationController (via the stack's wiring); safe to
  /// call from any thread, takes effect on the next submit.
  void set_mode(core::DegradationMode mode) {
    mode_.store(static_cast<std::uint8_t>(mode), std::memory_order_relaxed);
  }
  core::DegradationMode mode() const {
    return static_cast<core::DegradationMode>(
        mode_.load(std::memory_order_relaxed));
  }

  /// Sub-batches enqueued but not yet appended by a worker.
  std::int64_t in_flight() const {
    return in_flight_.load(std::memory_order_acquire);
  }

  const IngestMetrics& metrics() const { return metrics_; }
  /// The registry this pipeline's instruments are cataloged in — the shared
  /// one from IngestConfig::obs, or the private fallback.
  const obs::ObsRegistry& obs() const { return *obs_; }
  ShardedTimeSeriesStore& store() { return store_; }
  const IngestConfig& config() const { return config_; }
  std::size_t queue_depth(std::size_t shard) const {
    return channels_[shard]->size();
  }

 private:
  void worker(std::size_t shard);
  core::Priority priority_of(core::SeriesId series);
  bool admit_standard(core::SeriesId series);

  ShardedTimeSeriesStore& store_;
  IngestConfig config_;
  IngestMetrics metrics_;
  obs::ObsRegistry own_obs_;       // fallback when config_.obs is unset
  obs::ObsRegistry* obs_ = nullptr;
  std::vector<std::unique_ptr<transport::Channel<PrioritizedBatch>>> channels_;
  std::vector<std::thread> workers_;
  std::atomic<std::int64_t> in_flight_{0};  // enqueued, not yet appended
  std::atomic<std::uint8_t> mode_{0};       // core::DegradationMode
  // Priority lookups cache config_.priority_of results per series id so the
  // hot path avoids the registry mutex: 255 = not yet cached.
  mutable std::shared_mutex pri_mu_;
  std::vector<std::uint8_t> pri_cache_;
  // SUMMARIZE-mode per-series admission counters (only touched in that mode,
  // so a plain mutex is fine).
  std::mutex stride_mu_;
  std::vector<std::uint32_t> stride_counts_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace hpcmon::ingest
