#!/usr/bin/env bash
# Drive the sanitizer presets end to end: configure, build, and test each
# requested preset. The tsan preset runs the `threaded`-, `serve`-,
# `relay`-, and `rollup`-labeled tests (the chaos storm battery carries both
# `chaos` and `threaded`, so every seeded storm scenario runs under
# ThreadSanitizer; the serving tier's reactor/writer-pool/slow-client tests
# ride along; the `relay` label pulls in the two-stack relay battery —
# client/server dedupe, the kill-point resume sweep, and the network_storm
# scenario — so the relay worker thread vs reactor vs ingest interleavings
# are all race-checked; and the `rollup` label pulls in the rollup tree's
# concurrent appender/ticker/reader property hammer against the
# epoch-buffered drain and lazily-materialized snapshots); asan and ubsan
# run the full suite — which includes the `codec`-labeled adversarial
# sweep (store_codec_property_test): the word-at-a-time Gorilla decoder
# against bit-flipped and truncated frames, where an out-of-bounds read or
# shift-UB would otherwise hide. CI re-asserts that label by name
# (`ctest -L codec`) in the instrumented trees.
#
# Usage:
#   scripts/run_sanitizers.sh              # tsan, asan, ubsan in sequence
#   scripts/run_sanitizers.sh tsan         # one preset
#   scripts/run_sanitizers.sh asan ubsan   # any subset, in order
#
# Each preset builds into its own tree (build-<preset>), so runs are
# incremental and independent of the default build/. Exits nonzero on the
# first preset that fails to configure, build, or pass its tests.
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(tsan asan ubsan)
fi

jobs="$(nproc 2>/dev/null || echo 4)"

for preset in "${presets[@]}"; do
  case "$preset" in
    tsan|asan|ubsan) ;;
    *)
      echo "error: unknown preset '$preset' (expected tsan, asan, or ubsan)" >&2
      exit 2
      ;;
  esac

  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$jobs"
  echo "==== [$preset] test ===="
  ctest --preset "$preset" -j "$jobs"
  echo "==== [$preset] OK ===="
done

echo "All requested sanitizer presets passed: ${presets[*]}"
