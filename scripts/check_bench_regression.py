#!/usr/bin/env python3
"""Gate CI on bench regressions: diff a bench's --json metric map against its
committed baseline and fail on a >20% regression in any baselined metric.

Usage:
    scripts/check_bench_regression.py BASELINE.json CURRENT.json [--tolerance 0.20]

The baseline (bench/baselines/*.json) intentionally lists only
HARDWARE-RELATIVE metrics — speedup ratios of two measurements taken in the
same run (keys ending in `_x`). Absolute throughputs (Msamples/s etc.) vary
with the runner and would flap; ratios of same-run measurements do not.

Direction is inferred from the key suffix:
    lower is better:  *_ms, *_us, *_ns, *_s, *_bytes
    higher is better: everything else (the `_x` speedup ratios)

Exit status: 0 when every baselined metric is present and within tolerance,
1 on any regression or missing metric, 2 on usage/parse errors. Improvements
are reported but never fail the gate — refresh the baseline in the same PR
that earns them.
"""

import json
import sys

LOWER_IS_BETTER_SUFFIXES = ("_ms", "_us", "_ns", "_s", "_bytes")


def lower_is_better(key: str) -> bool:
    return key.endswith(LOWER_IS_BETTER_SUFFIXES)


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    tolerance = 0.20
    for a in argv[1:]:
        if a.startswith("--tolerance"):
            tolerance = float(a.split("=", 1)[1] if "=" in a
                              else argv[argv.index(a) + 1])
    if len(args) != 2:
        print(__doc__)
        return 2
    baseline_path, current_path = args
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
        with open(current_path) as f:
            current = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}")
        return 2

    failures = 0
    for key, base in sorted(baseline.items()):
        if key.startswith("shape_checks"):
            continue
        cur = current.get(key)
        if cur is None:
            print(f"FAIL {key}: missing from {current_path} "
                  f"(baseline {base:g})")
            failures += 1
            continue
        if base <= 0:
            print(f"FAIL {key}: non-positive baseline {base:g} "
                  f"(baselines must be positive)")
            failures += 1
            continue
        if lower_is_better(key):
            change = (cur - base) / base  # positive change = regression
        else:
            change = (base - cur) / base
        status = "FAIL" if change > tolerance else "ok  "
        trend = "regressed" if change > 0 else "improved"
        print(f"{status} {key}: baseline {base:g} -> current {cur:g} "
              f"({trend} {abs(change) * 100:.1f}%, tolerance "
              f"{tolerance * 100:.0f}%)")
        if change > tolerance:
            failures += 1

    # A current run that fails its own shape checks is a regression even if
    # every baselined ratio held up.
    shape_failed = current.get("shape_checks_failed", 0)
    if shape_failed:
        print(f"FAIL shape_checks_failed={shape_failed} in {current_path}")
        failures += 1

    if failures:
        print(f"\n{failures} bench regression(s) vs {baseline_path}")
        return 1
    print(f"\nno regressions vs {baseline_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
