// Sec. II.5 (CSCS): pre/post-job GPU health gating.
//
// Policy under test: "no job should start on a node with a problem, and a
// problem should only be encountered by at most one batch job - the job that
// was running when the problem first occurred."
//
// We run the same GPU-failure schedule with gating off and on, and count how
// many jobs encountered a failed GPU. Ungated, every job landing on the bad
// node sees the problem until someone notices; gated, at most the job running
// at failure time sees it.
#include "bench_common.hpp"

#include "response/gate.hpp"

namespace hpcmon::bench {
namespace {

sim::ClusterParams machine() {
  sim::ClusterParams p;
  p.shape.cabinets = 1;
  p.shape.chassis_per_cabinet = 3;
  p.shape.blades_per_chassis = 8;
  p.shape.nodes_per_blade = 4;  // 96 nodes
  p.shape.gpu_node_fraction = 1.0;  // Piz-Daint-style GPU partition
  p.fabric_kind = sim::FabricKind::kDragonfly;
  p.tick = 5 * core::kSecond;
  p.seed = 2024;
  return p;
}

struct RunResult {
  std::size_t jobs_completed = 0;
  std::size_t jobs_saw_problem = 0;
  std::size_t quarantines = 0;
  std::size_t repairs = 0;
};

RunResult run(bool gated) {
  sim::Cluster cluster(machine());
  response::HealthGate gate(cluster, 20 * core::kMinute);
  if (gated) gate.attach(/*pre=*/true, /*post=*/true);
  // Ground truth probe: does the node currently host a failed GPU?
  cluster.scheduler().set_node_problem_probe([&cluster](int node) {
    return cluster.gpus().health(node) == sim::GpuHealth::kFailed;
  });
  // Steady job stream.
  sim::WorkloadParams w;
  w.mean_interarrival = 20 * core::kSecond;
  w.min_nodes = 4;
  w.max_nodes = 16;
  w.median_runtime = 4 * core::kMinute;
  w.mix = {sim::app_compute_bound(), sim::app_network_heavy()};
  cluster.start_workload(w);
  // Deterministic failure schedule: a GPU dies every 30 minutes.
  for (int i = 0; i < 8; ++i) {
    cluster.inject_gpu_failure((10 + 30 * i) * core::kMinute, i * 11 % 96);
  }
  cluster.run_for(4 * core::kHour + 20 * core::kMinute);

  RunResult r;
  for (const auto id : cluster.scheduler().completed_jobs()) {
    const auto* rec = cluster.scheduler().job(id);
    ++r.jobs_completed;
    if (rec->saw_problem) ++r.jobs_saw_problem;
  }
  // Count still-running jobs that saw problems too.
  for (const auto id : cluster.scheduler().running_jobs()) {
    if (cluster.scheduler().job(id)->saw_problem) ++r.jobs_saw_problem;
  }
  r.quarantines = gate.stats().pre_failures + gate.stats().post_failures;
  r.repairs = gate.stats().repairs;
  return r;
}

}  // namespace
}  // namespace hpcmon::bench

int main() {
  using namespace hpcmon;
  using namespace hpcmon::bench;

  header("Sec II.5: pre/post-job GPU health gating (CSCS policy)",
         "Ahlgren et al. 2018, Sec. II.5 (CSCS Piz Daint)");
  std::printf(
      "96 GPU nodes, 8 injected GPU failures over ~4h, identical job stream\n"
      "with gating off vs on. 'Saw problem' = job held a node while its GPU\n"
      "was in the failed state.\n\n");

  const auto ungated = run(false);
  const auto gated = run(true);

  std::printf("mode     jobs_done  jobs_saw_problem  quarantines  repairs\n");
  std::printf("ungated  %-9zu  %-16zu  %-11zu  %zu\n", ungated.jobs_completed,
              ungated.jobs_saw_problem, ungated.quarantines, ungated.repairs);
  std::printf("gated    %-9zu  %-16zu  %-11zu  %zu\n\n", gated.jobs_completed,
              gated.jobs_saw_problem, gated.quarantines, gated.repairs);

  shape_check(ungated.jobs_saw_problem > 8,
              "without gating, failures are encountered by many jobs");
  shape_check(gated.jobs_saw_problem <= 8,
              "with gating, each failure is seen by at most one job "
              "(the one running when it occurred)");
  shape_check(gated.jobs_saw_problem * 3 <= ungated.jobs_saw_problem,
              "gating cuts problem exposure by at least 3x");
  shape_check(gated.quarantines >= 1 && gated.repairs >= 1,
              "gate quarantines bad nodes and repair returns them to service");
  shape_check(gated.jobs_completed >
                  ungated.jobs_completed * 8 / 10,
              "gating does not materially reduce throughput");
  return finish();
}
