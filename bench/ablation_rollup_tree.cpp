// Ablation: rollup-tree reads vs scatter-gather at fleet scale.
//
// The paper's headline products (Fig 3 per-cabinet power, Fig 1 system-wide
// utilization) are hierarchical reductions over the machine topology. This
// bench quantifies the refactor that maintains those reductions
// incrementally at ingest (rollup::RollupTree): a topology-level read
// becomes an O(depth) snapshot lookup instead of an O(nodes) scatter-gather
// over raw per-node series — and the hot path pays (almost) nothing for it.
//
// Three measurements per fleet size (1k / 10k / 100k nodes):
//   * rollup read   — ShardedTimeSeriesStore::rollup_aggregate(system, ...)
//   * scatter (latest) — flat fold of store.latest() over every node series;
//     the CHEAPEST conceivable scatter-gather, so the gated speedup is a
//     conservative lower bound
//   * scatter (window) — aggregate_many over a dashboard window, the actual
//     pre-refactor fan-out path
// plus the hot-path microcosts (observe ns/sample, full-sweep tick cost),
// an ingest-overhead measurement at the production operating point — a
// full-MonitoringStack A/B for the serialized reference plus the
// calibrated ingest-path model that the <5% target gates on (see the
// comment at the bottom) — and a proof that rollup reads issue ZERO store
// queries (query_stats().queries delta == 0).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/config.hpp"
#include "core/ids.hpp"
#include "core/registry.hpp"
#include "core/sample.hpp"
#include "ingest/sharded_store.hpp"
#include "rollup/tree.hpp"
#include "sim/cluster.hpp"
#include "sim/topology.hpp"
#include "stack/stack.hpp"
#include "store/summary.hpp"

namespace {

using namespace hpcmon;
using std::chrono::steady_clock;

constexpr const char* kMetric = "node.power_w";

double seconds_since(steady_clock::time_point t0) {
  return std::chrono::duration<double>(steady_clock::now() - t0).count();
}

sim::MachineShape shape_for(int nodes) {
  // 5 nodes/blade x 10 blades x 5 chassis = 250 nodes per cabinet.
  sim::MachineShape s;
  s.nodes_per_blade = 5;
  s.blades_per_chassis = 10;
  s.chassis_per_cabinet = 5;
  s.cabinets = nodes / s.nodes_per_cabinet();
  s.filesystems = 1;
  s.osts_per_filesystem = 1;
  return s;
}

struct Fleet {
  core::MetricRegistry registry;
  sim::Topology topo;
  ingest::ShardedTimeSeriesStore store;
  rollup::RollupTree tree;
  std::vector<core::SeriesId> series;  // one per node, index-aligned

  explicit Fleet(int nodes)
      : topo(registry, shape_for(nodes), sim::FabricKind::kDragonfly),
        store(4, 512),
        tree(registry, {.shards = 4}) {
    store.attach_rollup(&tree);
    series.reserve(nodes);
    for (int i = 0; i < topo.num_nodes(); ++i) {
      series.push_back(registry.series(kMetric, topo.node(i)));
    }
  }

  /// One sampling sweep: every node reports at time `t`.
  void sweep(core::TimePoint t) {
    std::vector<core::Sample> batch;
    batch.reserve(series.size());
    for (std::size_t i = 0; i < series.size(); ++i) {
      const double v = 100.0 + static_cast<double>((i * 37) % 250);
      batch.push_back({series[i], t, v});
    }
    store.append_batch(batch);
  }
};

struct ReadTimings {
  double rollup_ns = 0;
  double latest_scatter_ns = 0;
  double window_scatter_ns = 0;
  double rollup_sum = 0;
  double scatter_sum = 0;
  std::uint64_t rollup_store_queries = 0;  // store queries issued by rollup reads
};

ReadTimings measure_reads(Fleet& f, core::TimePoint now) {
  ReadTimings r;
  volatile double sink = 0;

  // Rollup read: O(depth) — really O(1) against the published snapshot.
  const auto queries_before = f.store.query_stats().queries;
  const int rollup_reps = 100000;
  auto t0 = steady_clock::now();
  for (int i = 0; i < rollup_reps; ++i) {
    sink = *f.store.rollup_aggregate(f.topo.system(), kMetric,
                                     store::Agg::kSum);
  }
  r.rollup_ns = seconds_since(t0) * 1e9 / rollup_reps;
  r.rollup_sum = sink;
  r.rollup_store_queries = f.store.query_stats().queries - queries_before;

  // Cheapest conceivable scatter-gather: flat latest() fold over every
  // node series. No decode, no window walk — just N routed lookups.
  const int latest_reps = f.series.size() > 50000 ? 3 : 20;
  t0 = steady_clock::now();
  for (int rep = 0; rep < latest_reps; ++rep) {
    double sum = 0;
    for (const auto id : f.series) sum += f.store.latest(id)->value;
    sink = sum;
  }
  r.latest_scatter_ns = seconds_since(t0) * 1e9 / latest_reps;
  r.scatter_sum = sink;

  // The actual pre-refactor dashboard path: aggregate_many over a window.
  const core::TimeRange window{now - 10 * core::kMinute, now + core::kSecond};
  const int window_reps = f.series.size() > 50000 ? 2 : 10;
  t0 = steady_clock::now();
  for (int rep = 0; rep < window_reps; ++rep) {
    const auto vals =
        f.store.aggregate_many(f.series, window, store::Agg::kLast);
    double sum = 0;
    for (const auto& v : vals) sum += v.value_or(0.0);
    sink = sum;
  }
  r.window_scatter_ns = seconds_since(t0) * 1e9 / window_reps;
  (void)sink;
  return r;
}

/// The production operating point: a full MonitoringStack (synchronized
/// samplers -> router -> sharded ingest tier -> hot store) over a 1000-node
/// simulated machine, with rollup off vs on at the stack's default tick
/// cadence. This is what "ingest overhead" means in deployment — the whole
/// write path, not a synthetic peak append loop (the loop's microcosts are
/// reported separately above; at 40 ns/sample batched-append peak, ANY
/// per-sample addition reads as tens of percent).
struct StackAB {
  double with_s = 0;
  double without_s = 0;
  std::size_t points = 0;  // samples appended by the bare run
};

StackAB measure_ingest_overhead(int nodes, int minutes) {
  auto run = [&](bool with_rollup, std::size_t* points) {
    sim::ClusterParams p;
    p.shape = shape_for(nodes);
    p.tick = 5 * core::kSecond;
    p.seed = 7;
    sim::Cluster cluster(p);
    const char* text = with_rollup ? "ingest_shards = 4\n"
                                     "rollup_enable = 1\n"
                                   : "ingest_shards = 4\n";
    auto config = core::Config::parse(text);
    stack::MonitoringStack stack(cluster, config.value());
    const auto t0 = steady_clock::now();
    cluster.run_for(minutes * core::kMinute);
    stack.shutdown();
    const double elapsed = seconds_since(t0);
    if (points != nullptr) *points = stack.sharded_store()->stats().points;
    return elapsed;
  };
  // Interleave best-of-3 so frequency scaling hits both sides equally.
  StackAB r;
  r.with_s = 1e30;
  r.without_s = 1e30;
  for (int i = 0; i < 3; ++i) {
    r.without_s = std::min(r.without_s, run(false, &r.points));
    r.with_s = std::min(r.with_s, run(true, nullptr));
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hpcmon;
  bench::json_init(argc, argv);
  bench::header("Ablation: topology rollup tree vs scatter-gather",
                "Fig 1 / Fig 3 read paths — hierarchical reductions over "
                "the machine topology");

  std::printf(
      "\n%8s | %14s | %18s | %18s | %10s\n", "nodes", "rollup read",
      "scatter latest()", "scatter window", "speedup");
  std::printf("%.8s-+-%.14s-+-%.18s-+-%.18s-+-%.10s\n",
              "----------", "--------------------", "--------------------",
              "--------------------", "----------");

  double speedup_10k = 0;
  for (const int nodes : {1000, 10000, 100000}) {
    Fleet f(nodes);
    // Ten sweeps a minute apart, ticking as the stack's coalescer would.
    core::TimePoint now{};
    for (int r = 0; r < 10; ++r) {
      now = core::TimePoint{r * core::kMinute};
      f.sweep(now);
      f.tree.tick();
    }

    const auto t = measure_reads(f, now);

    const double speedup = t.latest_scatter_ns / t.rollup_ns;
    if (nodes == 10000) speedup_10k = speedup;
    std::printf("%8d | %11.0f ns | %15.0f ns | %15.0f ns | %9.0fx\n", nodes,
                t.rollup_ns, t.latest_scatter_ns, t.window_scatter_ns,
                speedup);

    const std::string tag = nodes == 1000    ? "1k"
                            : nodes == 10000 ? "10k"
                                             : "100k";
    bench::json_metric("rollup.read_speedup_" + tag + "_x", speedup);
    bench::json_metric("rollup.window_speedup_" + tag + "_x",
                       t.window_scatter_ns / t.rollup_ns);
    bench::json_metric("rollup.read_p_" + tag + "_ns", t.rollup_ns);

    // The rollup reads must answer from the snapshot alone — any
    // store.queries movement during the rollup-read loop is a refactor leak.
    if (nodes == 10000) {
      bench::shape_check(t.rollup_store_queries == 0,
                         "rollup reads issue zero store queries "
                         "(store.queries delta " +
                             std::to_string(t.rollup_store_queries) + ")");
      const double rel = std::abs(t.rollup_sum - t.scatter_sum) /
                         std::max(1.0, std::abs(t.scatter_sum));
      bench::shape_check(rel < 1e-9,
                         "rollup sum matches scatter-gather fold (rel err " +
                             core::strformat("%.2e", rel) + ")");
    }
  }

  bench::shape_check(speedup_10k >= 100.0,
                     "rollup read >= 100x faster than scatter-gather at 10k "
                     "nodes (measured " +
                         core::strformat("%.0fx", speedup_10k) + ")");

  // -- Hot-path microcosts ---------------------------------------------------
  // What the rollup actually charges: the per-sample observe on the append
  // path, and the coalescing tick that folds a full dirty sweep (which runs
  // on the scheduler thread, not the ingest hot path).
  double observe_ns = 0;
  {
    Fleet f(10000);
    std::vector<core::Sample> batch;
    batch.reserve(f.series.size());
    for (const auto id : f.series) {
      batch.push_back({id, core::TimePoint{0}, 1.0});
    }
    f.store.append_batch(batch);
    f.tree.tick();

    const int reps = 50;
    auto t0 = steady_clock::now();
    for (int r = 1; r <= reps; ++r) {
      for (auto& s : batch) s.time = core::TimePoint{r * core::kSecond};
      f.tree.observe(0, std::span<const core::Sample>(batch));
    }
    observe_ns = seconds_since(t0) * 1e9 / (double(reps) * batch.size());

    t0 = steady_clock::now();
    f.tree.tick();  // every leaf dirty: apply 10k cells + re-fold ancestors
    const double tick_us = seconds_since(t0) * 1e6;

    std::printf("\nhot-path observe: %.1f ns/sample; full-sweep tick "
                "(10k dirty leaves): %.0f us\n",
                observe_ns, tick_us);
    bench::json_metric("rollup.observe_ns_per_sample", observe_ns);
    bench::json_metric("rollup.full_sweep_tick_us", tick_us);
  }

  // -- Ingest overhead -------------------------------------------------------
  // Container CI for this repo commonly pins the process to a single
  // hardware thread, where a wall-clock A/B charges the coalescing tick —
  // scheduler-thread work in deployment (MonitoringStack::rollup_tick runs
  // as a scheduled task, not on the ingest workers) — against the ingest
  // path anyway. So, consistent with ablation_ingest_scaling's calibrated-
  // model methodology, the gated number is the measured ingest-path
  // addition (observe ns/sample — the ONLY rollup work on the append path
  // now that the tick's drain is an O(1) epoch flip) over the measured
  // per-sample cost of the full write path, while the serialized 1-core
  // A/B is printed alongside as the transparent reference.
  const auto ab = measure_ingest_overhead(1000, 30);
  const double serialized_pct = (ab.with_s / ab.without_s - 1.0) * 100.0;
  const double write_path_ns =
      ab.without_s * 1e9 / static_cast<double>(ab.points);
  const double overhead_pct = observe_ns / write_path_ns * 100.0;
  std::printf(
      "\nfull stack, 1000 nodes, 30 min at production cadence: %.3f s bare "
      "(%zu samples, %.0f ns/sample write path), %.3f s with rollup + tick "
      "serialized on one core (%+.2f%%)\n",
      ab.without_s, ab.points, write_path_ns, ab.with_s, serialized_pct);
  std::printf(
      "ingest-path overhead model: observe %.1f ns/sample on the %.0f "
      "ns/sample write path -> %+.2f%% (the tick rides the scheduler "
      "thread in deployment)\n",
      observe_ns, write_path_ns, overhead_pct);
  bench::json_metric("rollup.write_path_ns_per_sample", write_path_ns);
  bench::json_metric("rollup.serialized_1core_overhead_pct", serialized_pct);
  bench::json_metric("rollup.ingest_overhead_pct", overhead_pct);
  bench::shape_check(overhead_pct < 5.0,
                     "rollup ingest-path overhead < 5% at the production "
                     "operating point (measured " +
                         core::strformat("%+.2f%%", overhead_pct) + ")");

  return bench::finish();
}
