// Ablation: static log scans vs template-novelty detection (Sec. III-B).
//
// "In production most log analysis involves detection of well-known log
// lines. ... new or infrequent events may be missed until manual observation
// of events leads to identification of relevant log lines to include in the
// scan."
//
// We run a production stream, train the novelty detector on the first hours,
// then inject a *never-before-seen* failure signature (a new software
// version's message). The static SEC-style rule set — written before the new
// message existed — must miss it; the novelty detector must flag it, without
// drowning in the routine stream.
#include "bench_common.hpp"

#include "analysis/novelty.hpp"
#include "analysis/rules.hpp"

namespace hpcmon::bench {
namespace {

sim::ClusterParams machine() {
  sim::ClusterParams p;
  p.shape.cabinets = 2;
  p.shape.chassis_per_cabinet = 2;
  p.shape.blades_per_chassis = 4;
  p.shape.nodes_per_blade = 4;
  p.fabric_kind = sim::FabricKind::kDragonfly;
  p.tick = 10 * core::kSecond;
  p.seed = 404;
  return p;
}

}  // namespace
}  // namespace hpcmon::bench

int main(int argc, char** argv) {
  hpcmon::bench::json_init(argc, argv);
  using namespace hpcmon;
  using namespace hpcmon::bench;

  header("Ablation: known-line scanning vs log-template novelty detection",
         "Ahlgren et al. 2018, Sec. III-B (log analysis)");

  MonitoredCluster mc(machine());
  sim::WorkloadParams w;
  w.mean_interarrival = 40 * core::kSecond;
  w.max_nodes = 16;
  mc.cluster.start_workload(w);

  // The unknown unknown: after a (simulated) software update, a new failure
  // signature starts appearing on a few nodes.
  const std::string new_signature =
      "dvs: asynchronous reply queue overrun, dropping request";
  for (int i = 0; i < 5; ++i) {
    const auto t = 5 * core::kHour + i * 7 * core::kMinute;
    mc.cluster.events().schedule_at(
        t, [&mc, i, new_signature](core::TimePoint now) {
          core::LogEvent e;
          e.time = now;
          e.local_time = now;
          e.component = mc.cluster.topology().node(3 + i);
          e.facility = core::LogFacility::kFilesystem;
          e.severity = core::Severity::kError;
          e.message = new_signature + " id " + std::to_string(1000 + i);
          mc.cluster.emit_log(std::move(e));
        });
  }
  mc.cluster.run_for(8 * core::kHour);

  // Replay the stored log through both analyzers.
  analysis::RuleEngine rules;
  for (auto& r : analysis::standard_platform_rules()) rules.add_rule(std::move(r));
  analysis::NoveltyParams np;
  np.training_until = 4 * core::kHour;  // learn the routine stream first
  analysis::NoveltyDetector novelty(np);

  std::size_t rule_hits_on_new = 0;
  std::vector<analysis::NoveltyEvent> novel;
  std::size_t total_events = 0;
  store::LogQuery all;
  all.range = {0, mc.cluster.now()};
  for (const auto& e : mc.logs.query(all)) {
    ++total_events;
    for (const auto& m : rules.process(e)) {
      if (m.detail.find("dvs:") != std::string::npos) ++rule_hits_on_new;
    }
    for (auto& n : novelty.process(e)) novel.push_back(std::move(n));
  }

  std::printf("log events replayed:      %zu\n", total_events);
  std::printf("templates learned:        %zu\n", novelty.known_templates());
  std::printf("static-rule hits on the new signature: %zu\n", rule_hits_on_new);
  std::printf("novelty reports after training: %zu\n", novel.size());
  bool found_new = false;
  for (const auto& n : novel) {
    std::printf("  [%s] %s\n", core::format_time(n.time).c_str(),
                n.tmpl.c_str());
    if (n.tmpl.find("dvs:") != std::string::npos) found_new = true;
  }
  std::printf("\n");

  shape_check(rule_hits_on_new == 0,
              "the pre-existing rule set misses the never-seen signature "
              "(the paper's gap)");
  shape_check(found_new,
              "the novelty detector surfaces the new signature without a "
              "hand-written rule");
  shape_check(novel.size() <= 10,
              "novelty reporting stays reviewable (one report per new "
              "template, not per line)");
  const double compression = static_cast<double>(total_events) /
                             static_cast<double>(novelty.known_templates());
  std::printf("template compression: %.0fx (%zu events -> %zu templates)\n",
              compression, total_events, novelty.known_templates());
  json_metric("novelty.compression_x", compression);
  json_metric("novelty.known_templates",
              static_cast<double>(novelty.known_templates()));
  shape_check(compression > 20.0,
              "template abstraction compresses the stream by >20x");
  return finish();
}
