// Fig 4 (NCSA): filesystem aggregate I/O over time; drill-down at a spike to
// per-node values and the job responsible.
//
// Paper caption: "high values of system aggregate I/O metrics (top) drives
// further investigation into the nodes, and hence, the job responsible for
// the I/O." We run a mixed workload with one checkpoint-heavy job, plot the
// filesystem aggregate, pick the spike, drill to the per-node breakdown, and
// attribute it to the owning job via the job store.
#include "bench_common.hpp"

#include "analysis/streaming.hpp"
#include "viz/chart.hpp"
#include "viz/drilldown.hpp"

namespace hpcmon::bench {
namespace {

sim::ClusterParams machine() {
  sim::ClusterParams p;
  p.shape.cabinets = 2;
  p.shape.chassis_per_cabinet = 2;
  p.shape.blades_per_chassis = 8;
  p.shape.nodes_per_blade = 4;  // 128 nodes
  p.shape.osts_per_filesystem = 8;
  p.fabric_kind = sim::FabricKind::kDragonfly;
  p.tick = 5 * core::kSecond;
  p.seed = 7;
  return p;
}

}  // namespace
}  // namespace hpcmon::bench

int main() {
  using namespace hpcmon;
  using namespace hpcmon::bench;

  header("Fig 4: aggregate I/O spike -> per-node drill-down -> owning job",
         "Ahlgren et al. 2018, Fig. 4 (NCSA Blue Waters)");

  MonitoredCluster mc(machine());
  // Quiet background: compute-bound jobs only.
  sim::WorkloadParams w;
  w.mean_interarrival = core::kMinute;
  w.max_nodes = 16;
  w.median_runtime = 10 * core::kMinute;
  w.mix = {sim::app_compute_bound()};
  mc.cluster.start_workload(w);
  // The culprit: an 16-node checkpoint-heavy job.
  sim::JobRequest io;
  io.num_nodes = 16;
  io.nominal_runtime = 12 * core::kMinute;
  io.profile = sim::app_io_checkpoint();
  mc.cluster.submit_at(10 * core::kMinute, io);
  mc.cluster.run_for(30 * core::kMinute);

  // Top panel: filesystem aggregate write rate from OST counters (what the
  // NCSA dashboard plots), derived via counter->rate conversion.
  auto& reg = mc.cluster.registry();
  const core::TimeRange all{0, mc.cluster.now()};
  std::vector<core::TimedValue> aggregate;
  {
    std::vector<std::vector<core::TimedValue>> per_ost;
    for (int o = 0; o < mc.cluster.topology().osts_per_fs(); ++o) {
      const auto sid =
          reg.series("fs.ost.write_bytes", mc.cluster.topology().ost(0, o));
      per_ost.push_back(mc.tsdb.query_range(sid, all));
    }
    // Sum per-OST rates at each sweep.
    if (!per_ost.empty() && !per_ost[0].empty()) {
      std::vector<analysis::RateConverter> rc(per_ost.size());
      for (std::size_t i = 0; i < per_ost[0].size(); ++i) {
        double total = 0.0;
        bool any = false;
        for (std::size_t o = 0; o < per_ost.size(); ++o) {
          if (i < per_ost[o].size()) {
            if (auto r = rc[o].update(per_ost[o][i].time, per_ost[o][i].value)) {
              total += *r;
              any = true;
            }
          }
        }
        if (any) aggregate.push_back({per_ost[0][i].time, total / 1e6});
      }
    }
  }
  viz::ChartOptions opt;
  opt.title = "fs0 aggregate write rate (MB/s) - top panel";
  opt.height = 10;
  std::printf("%s\n", viz::render_ascii({{"fs0 writes", aggregate}}, opt).c_str());

  // Find the spike.
  core::TimedValue peak{0, 0.0};
  for (const auto& p : aggregate) {
    if (p.value > peak.value) peak = p;
  }
  std::printf("spike: %.0f MB/s at %s\n\n", peak.value,
              core::format_time(peak.time).c_str());

  // Drill down: per-node write rate at the spike instant.
  std::vector<core::ComponentId> nodes;
  for (int i = 0; i < mc.cluster.topology().num_nodes(); ++i) {
    nodes.push_back(mc.cluster.topology().node(i));
  }
  viz::DrillDown drill(mc.tsdb, reg, mc.jobs);
  const auto result = drill.investigate(
      "node.write_mbps", nodes, peak.time, 2 * core::kMinute,
      [&mc](core::ComponentId c) {
        return mc.cluster.topology().node_index(c);
      });

  std::printf("top contributors at the spike (middle panel):\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(6, result.breakdown.size());
       ++i) {
    const auto& cv = result.breakdown[i];
    std::printf("  %-14s %8.0f MB/s\n", cv.name.c_str(), cv.value);
  }
  if (result.responsible_job) {
    std::printf("\nresponsible job: #%llu app=%s nodes=%zu (%.0f%% of the "
                "aggregate)\n\n",
                static_cast<unsigned long long>(
                    core::raw(result.responsible_job->id)),
                result.responsible_job->app_name.c_str(),
                result.responsible_job->nodes.size(),
                result.job_share * 100.0);
  } else {
    std::printf("\nresponsible job: (none found)\n\n");
  }

  shape_check(peak.value > 5000.0,
              "aggregate plot shows a pronounced I/O spike (>5 GB/s)");
  shape_check(result.responsible_job.has_value() &&
                  result.responsible_job->app_name == "io_checkpoint",
              "drill-down attributes the spike to the checkpoint job");
  shape_check(result.job_share > 0.85,
              "the attributed job accounts for >85% of the spike");
  shape_check(!result.breakdown.empty() &&
                  result.breakdown[0].value >
                      result.breakdown[result.breakdown.size() / 2].value * 5,
              "per-node breakdown separates culprits from bystanders");
  return finish();
}
