// Table I: "Needs and Requirements for Monitoring" — exercised end-to-end.
//
// Each requirement row from the paper's Table I is mapped to the hpcmon API
// that satisfies it and exercised on a live monitored cluster. The output is
// the reproduction of Table I: requirement -> evidence -> PASS/FAIL.
#include "bench_common.hpp"

#include "analysis/correlate.hpp"
#include "analysis/rules.hpp"
#include "collect/probes.hpp"
#include "response/actions.hpp"
#include "response/alerts.hpp"
#include "store/retention.hpp"
#include "transport/bus.hpp"
#include "viz/dashboard.hpp"
#include "viz/query.hpp"

namespace hpcmon::bench {
namespace {

void row(const char* section, const char* requirement, bool ok,
         const std::string& evidence) {
  std::printf("%-12s | %-52s | %s\n", section, requirement,
              (std::string(ok ? "PASS" : "FAIL") + " - " + evidence).c_str());
  shape_check(ok, std::string(section) + ": " + requirement);
}

sim::ClusterParams machine() {
  sim::ClusterParams p;
  p.shape.cabinets = 2;
  p.shape.chassis_per_cabinet = 2;
  p.shape.blades_per_chassis = 4;
  p.shape.nodes_per_blade = 4;
  p.shape.gpu_node_fraction = 0.25;
  p.fabric_kind = sim::FabricKind::kDragonfly;
  p.tick = 5 * core::kSecond;
  p.seed = 123;
  return p;
}

}  // namespace
}  // namespace hpcmon::bench

int main() {
  using namespace hpcmon;
  using namespace hpcmon::bench;

  header("Table I: needs and requirements for monitoring — capability matrix",
         "Ahlgren et al. 2018, Table I");

  MonitoredCluster mc(machine(), 30 * core::kSecond);
  collect::ProbeConfig pc;
  pc.probe_nodes = {0, 4};
  mc.collection.add_sampler(
      std::make_unique<collect::ProbeSuite>(mc.cluster, pc, core::Rng(9)),
      2 * core::kMinute, collect::store_sink(mc.tsdb));
  sim::WorkloadParams w;
  w.mean_interarrival = 45 * core::kSecond;
  w.max_nodes = 16;
  mc.cluster.start_workload(w);
  mc.cluster.inject_ost_slowdown(20 * core::kMinute, 0, 1, 5.0,
                                 10 * core::kMinute);
  mc.cluster.inject_link_down(22 * core::kMinute, 0, 10 * core::kMinute);
  mc.cluster.run_for(45 * core::kMinute);

  auto& reg = mc.cluster.registry();
  const auto now = mc.cluster.now();
  std::printf("%-12s | %-52s | result\n", "section", "requirement");
  std::printf("%s\n", std::string(100, '-').c_str());

  // ---- Architecture ---------------------------------------------------------
  {
    const auto& rs = mc.router.stats();
    row("Architecture", "raw data at maximum fidelity, documented interface",
        rs.frames > 50 && rs.dropped == 0,
        core::strformat("%llu frames routed losslessly, binary codec documented",
                        static_cast<unsigned long long>(rs.frames)));
  }
  {
    // Multiple consumers: add a second subscriber + a topic bus fan-out.
    transport::Bus bus;
    int admin = 0;
    int user = 0;
    bus.subscribe("samples.*",
                  [&](const std::string&, const transport::Payload&) { ++admin; });
    bus.subscribe("samples.power",
                  [&](const std::string&, const transport::Payload&) { ++user; });
    core::SampleBatch b;
    b.samples.push_back({core::SeriesId{0}, now, 1.0});
    bus.publish("samples.power", b);
    row("Architecture", "data and results to multiple consumers",
        admin == 1 && user == 1,
        "topic bus delivered one batch to two independent consumers");
  }
  {
    // Integrate non-platform data: register a weather-station metric and
    // store it alongside platform data.
    const auto ext = reg.register_component(
        {"weather.station", core::ComponentKind::kFacility,
         mc.cluster.topology().system()});
    const auto sid = reg.series(
        reg.register_metric({"external.outdoor_temp_c", "degC",
                             "site weather-station outdoor temperature",
                             false}),
        ext);
    const bool ok = mc.tsdb.append(sid, now, 31.5);
    row("Architecture", "integrate data beyond the platform",
        ok && mc.tsdb.latest(sid).has_value(),
        "weather-station series stored next to platform telemetry");
  }
  {
    // Flexible data paths: re-route a sampler's output at runtime by adding
    // a forwarding edge to a second router.
    transport::EventRouter downstream;
    std::size_t forwarded = 0;
    downstream.subscribe_raw(
        [&](const transport::Frame&) { ++forwarded; });
    mc.router.forward_to(downstream);
    mc.cluster.run_for(2 * core::kMinute);
    row("Architecture", "flexible, reconfigurable data paths",
        forwarded > 0,
        core::strformat("forwarding edge added live; %zu frames followed it",
                        forwarded));
  }

  // ---- Data sources ---------------------------------------------------------
  {
    const auto dict = reg.describe_all();
    const bool has_all =
        dict.find("node.cpu_util") != std::string::npos &&
        dict.find("hsn.link.stalls") != std::string::npos &&
        dict.find("fs.ost.latency_ms") != std::string::npos &&
        dict.find("power.cabinet_w") != std::string::npos &&
        dict.find("gpu.health") != std::string::npos &&
        dict.find("facility.corrosion_ppb") != std::string::npos &&
        dict.find("probe.dgemm_seconds") != std::string::npos &&
        dict.find("sched.queue_depth") != std::string::npos;
    row("DataSources", "all subsystems exposed: text, numeric, test results",
        has_all, core::strformat("%zu documented metric families over %zu "
                                 "components",
                                 reg.metric_count(), reg.component_count()));
  }
  {
    const bool no_undocumented =
        reg.describe_all().find("(undocumented)") == std::string::npos;
    row("DataSources", "meaning of all raw data provided", no_undocumented,
        "every registered metric carries units and a description");
  }

  // ---- Data storage and formats ----------------------------------------------
  store::TieredStore tiered(
      store::RetentionPolicy{.hot_window = 10 * core::kMinute,
                             .warm_window = core::kDay,
                             .warm_bucket = 2 * core::kMinute,
                             .warm_agg = store::Agg::kMean},
      /*chunk_points=*/16);
  {
    // Populate from the hot store's power series, then age it out.
    const auto sid = reg.series("power.system_w", mc.cluster.topology().system());
    for (const auto& p : mc.tsdb.query_range(sid, {0, now})) {
      tiered.append(sid, p.time, p.value);
    }
    tiered.enforce(now + core::kDay / 2);
    const auto full = tiered.query_full(sid, {0, now});
    const auto ds = tiered.query_range(sid, {0, now});
    row("Storage", "keep all data; historical with current",
        full.size() >= mc.tsdb.query_range(sid, {0, now}).size() && !ds.empty(),
        core::strformat("archive reload returned %zu raw points after aging",
                        full.size()));
    const auto path = std::string("/tmp/hpcmon_capability_archive.bin");
    const bool saved = tiered.archive().save_to_file(path).is_ok();
    const auto loaded = store::Archive::load_from_file(path);
    std::remove(path.c_str());
    row("Storage", "hierarchical tiers with locate-and-reload",
        saved && loaded.is_ok() && loaded.value().blob_count() > 0,
        "cold tier serialized to a file and reloaded");
  }
  {
    // Analysis results stored with raw data.
    const auto derived = reg.series(
        reg.register_metric({"derived.power_system_mean_w", "W",
                             "hourly mean of power.system_w (analysis result)",
                             false}),
        mc.cluster.topology().system());
    const bool ok = mc.tsdb.append(derived, now, 12345.0);
    row("Storage", "analysis results stored with raw data", ok,
        "derived metric appended to the same store");
  }

  // ---- Analysis and visualization ---------------------------------------------
  {
    // Concurrent conditions on disparate components: the OST slowdown and
    // the link-down fault overlap in time.
    std::vector<analysis::ConditionInterval> conds;
    for (const auto& f : mc.cluster.fault_log()) {
      const auto comp = reg.find_component(f.target);
      conds.push_back({comp.value_or(core::kNoComponent),
                       {f.start, f.start + f.duration},
                       f.kind});
    }
    const auto concurrent = analysis::find_concurrent(conds, 2);
    row("Analysis", "concurrent conditions on disparate components",
        !concurrent.empty(),
        concurrent.empty()
            ? "none found"
            : core::strformat("found %zu overlap group(s), e.g. %s + %s",
                              concurrent.size(),
                              concurrent[0].labels[0].c_str(),
                              concurrent[0].labels[1].c_str()));
  }
  {
    // Arbitrary extractions/computations at the store.
    std::vector<core::ComponentId> nodes;
    for (int i = 0; i < mc.cluster.topology().num_nodes(); ++i) {
      nodes.push_back(mc.cluster.topology().node(i));
    }
    const auto frac = viz::fraction_in_state(
        mc.tsdb, reg, "node.cpu_util", nodes, {0, now},
        [](double v) { return v > 0.5; });
    row("Analysis", "store supports arbitrary extraction/computation",
        !frac.empty(), "percent-of-nodes-busy computed over the store");
  }
  {
    // Live dashboards + high-dimensional handling via aggregation.
    viz::Dashboard dash("capability");
    std::vector<core::ComponentId> cabs;
    for (int c = 0; c < mc.cluster.topology().num_cabinets(); ++c) {
      cabs.push_back(mc.cluster.topology().cabinet(c));
    }
    dash.add_panel("cabinet power", [&]() {
      std::vector<viz::ChartSeries> out;
      for (const auto cab : cabs) {
        viz::ChartSeries s;
        s.label = reg.component(cab).name;
        s.points = mc.tsdb.query_range(
            reg.series("power.cabinet_w", cab), {0, now});
        out.push_back(std::move(s));
      }
      return out;
    });
    const auto rendered = dash.render();
    row("Analysis", "easy development of live data dashboards",
        rendered.find("cabinet power") != std::string::npos &&
            !dash.panel_csv(0).empty(),
        "dashboard panel rendered with CSV download");
  }

  // ---- Response ----------------------------------------------------------------
  {
    response::AlertManager alerts;
    response::ActionDispatcher actions;
    int notified = 0;
    actions.bind("*", response::AlertSeverity::kWarning, "notify",
                 [&](const response::Alert&) { ++notified; });
    alerts.add_sink([&](const response::Alert& a) { actions.dispatch(a); });
    analysis::RuleEngine rules;
    for (auto& r : analysis::standard_platform_rules()) {
      rules.add_rule(std::move(r));
    }
    std::size_t fired = 0;
    store::LogQuery q;
    q.range = {0, now};
    for (const auto& e : mc.logs.query(q)) {
      for (const auto& m : rules.process(e)) {
        ++fired;
        alerts.raise({m.time, response::AlertSeverity::kWarning, m.rule_name,
                      m.component, m.detail});
      }
    }
    row("Response", "configurable reporting/alerting at arbitrary points",
        fired > 0 && notified > 0,
        core::strformat("%zu rule matches -> %llu alerts -> %d actions",
                        fired,
                        static_cast<unsigned long long>(alerts.delivered_total()),
                        notified));
    row("Response", "results exposed to system software",
        [&] {
          // Expose an analysis result to the scheduler: quarantine node 1.
          mc.cluster.scheduler().set_node_available(1, false);
          const bool off = !mc.cluster.scheduler().node_available(1);
          mc.cluster.scheduler().set_node_available(1, true);
          return off;
        }(),
        "scheduler consumed a monitoring-driven availability decision");
  }

  std::printf("\n");
  return finish();
}
