// Ablation: query-engine overhaul — chunk summaries, streaming cursors,
// shared-lock concurrency, and the decode cache vs the old read path
// (global mutex, decompress-everything-then-filter).
//
// The paper picks time-series engines for "superior data compression and
// query performance" (Sec. IV-C); dashboards and per-job reports then hammer
// the store with range aggregates while ingest keeps writing. This bench
// quantifies the three read-path wins:
//   1. stepped aggregation: summary-covered chunks answered O(1);
//   2. the decode cache: repeated dashboard windows skip Gorilla decode;
//   3. shared/striped locking: readers overlap instead of serializing.
//
// Method. Container CI for this repo commonly pins the process to one
// hardware thread, so (consistent with ablation_ingest_scaling) reader
// scaling is reported from a CALIBRATED MAKESPAN MODEL over REAL measured
// per-query costs:
//   makespan(R) = max( serial lock-held work , total query work / R )
// The old engine held the one store mutex for the ENTIRE query (decode
// included), so its serial term IS the total work — flat at any R. The new
// engine only pins locks during the snapshot (decode happens on shared_ptr
// refs outside), so its serial term is the snapshot cost. A real-threaded
// run is also executed as a correctness reference.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/rng.hpp"
#include "ingest/sharded_store.hpp"
#include "store/cursor.hpp"

#include "../tests/reference_codec.hpp"  // original bit-at-a-time codec

namespace hpcmon::bench {
namespace {

using core::SeriesId;
using core::TimedValue;
using core::TimePoint;
using core::TimeRange;
using std::chrono::steady_clock;

constexpr std::uint32_t kSeries = 8;
constexpr int kPointsPerSeries = 40000;
constexpr std::size_t kChunkPoints = 256;  // ~156 sealed chunks per series
constexpr int kQueryReps = 40;

double seconds_since(steady_clock::time_point t0) {
  return std::chrono::duration<double>(steady_clock::now() - t0).count();
}

void fill(store::TimeSeriesStore& s) {
  core::Rng rng(4242);
  for (std::uint32_t id = 0; id < kSeries; ++id) {
    TimePoint t = 0;
    double level = rng.uniform(100.0, 300.0);
    for (int i = 0; i < kPointsPerSeries; ++i) {
      t += core::kSecond;
      level += rng.normal(0.0, 1.0);
      s.append(SeriesId{id}, t, level);
    }
  }
}

// The old engine's aggregate: materialize the whole range, then fold.
std::optional<double> old_aggregate(const store::TimeSeriesStore& s,
                                    SeriesId id, const TimeRange& range,
                                    store::Agg agg) {
  return store::aggregate_points(s.query_range(id, range), agg);
}

}  // namespace
}  // namespace hpcmon::bench

int main(int argc, char** argv) {
  hpcmon::bench::json_init(argc, argv);
  using namespace hpcmon;
  using namespace hpcmon::bench;

  header("Ablation: query-engine overhaul (summaries + cursors + cache + "
         "shared locks)",
         "Sec. IV-C storage requirements: query performance at dashboard "
         "rates while ingest continues");

  // Two identical datasets: `engine` uses every new fast path; `baseline`
  // has the decode cache disabled and is only queried through the
  // materialize-then-fold path, approximating the pre-overhaul engine.
  store::TimeSeriesStore engine(kChunkPoints, /*cache_chunks=*/256);
  store::TimeSeriesStore baseline(kChunkPoints, /*cache_chunks=*/0);
  fill(engine);
  fill(baseline);
  const TimePoint end = (kPointsPerSeries + 1) * core::kSecond;
  const TimeRange full{0, end};
  const auto st = engine.stats();
  std::printf("\nWorkload: %u series x %d points, chunk_points=%zu "
              "(%zu sealed chunks, %.1f MB raw -> %.1f MB compressed)\n",
              kSeries, kPointsPerSeries, kChunkPoints, st.sealed_chunks,
              st.points * 16.0 / 1e6, st.compressed_bytes / 1e6);

  // -- 1. Stepped aggregation vs full decode ---------------------------------
  double t_old = 0.0, t_new = 0.0;
  double sink = 0.0;
  {
    auto t0 = steady_clock::now();
    for (int r = 0; r < kQueryReps; ++r) {
      for (std::uint32_t id = 0; id < kSeries; ++id) {
        sink += *old_aggregate(baseline, SeriesId{id}, full, store::Agg::kMean);
      }
    }
    t_old = seconds_since(t0);
    t0 = steady_clock::now();
    for (int r = 0; r < kQueryReps; ++r) {
      for (std::uint32_t id = 0; id < kSeries; ++id) {
        sink -= *engine.aggregate(SeriesId{id}, full, store::Agg::kMean);
      }
    }
    t_new = seconds_since(t0);
  }
  const double agg_speedup = t_old / t_new;
  std::printf("\nFull-range mean over %d x %u queries:\n", kQueryReps, kSeries);
  std::printf("  old engine (decode all, then fold): %8.1f ms\n", t_old * 1e3);
  std::printf("  new engine (summary-covered chunks): %7.1f ms  (%.1fx)\n",
              t_new * 1e3, agg_speedup);
  std::printf("  (answer drift from reassociation: %.3g)\n", sink);
  const auto qs = engine.query_stats();
  std::printf(
      "  store.queries=%llu store.summary_chunks=%llu "
      "store.cursor_chunks=%llu store.cache_hits=%llu\n",
      static_cast<unsigned long long>(qs.queries),
      static_cast<unsigned long long>(qs.summary_chunks),
      static_cast<unsigned long long>(qs.cursor_chunks),
      static_cast<unsigned long long>(qs.cache_hits));
  json_metric("query.agg_speedup_x", agg_speedup);
  shape_check(agg_speedup >= 5.0,
              core::strformat("summary-answered range aggregate is >= 5x "
                              "faster than full decode (%.1fx)",
                              agg_speedup));
  shape_check(qs.summary_chunks > 0 && qs.summary_chunks >= 100 * qs.cursor_chunks,
              "full-range aggregates are answered almost entirely from "
              "summaries (boundary chunks only on the cursor path)");

  // -- 2. Decode cache: repeated dashboard window ----------------------------
  {
    const TimeRange window{end - 3600 * core::kSecond, end};  // last hour
    store::TimeSeriesStore cold_store(kChunkPoints, /*cache_chunks=*/0);
    fill(cold_store);
    auto t0 = steady_clock::now();
    std::size_t n = 0;
    for (int r = 0; r < kQueryReps; ++r) {
      n += cold_store.query_range(SeriesId{0}, window).size();
    }
    const double t_cold = seconds_since(t0);
    (void)engine.query_range(SeriesId{0}, window);  // warm the cache
    const auto hits_before = engine.query_stats().cache_hits;
    t0 = steady_clock::now();
    for (int r = 0; r < kQueryReps; ++r) {
      n -= engine.query_range(SeriesId{0}, window).size();
    }
    const double t_warm = seconds_since(t0);
    const auto hits = engine.query_stats().cache_hits - hits_before;
    std::printf("\nRepeated 1-hour window query (x%d): uncached %6.1f ms, "
                "cached %6.1f ms (%.1fx), %llu cache hits, sizes cancel to "
                "%zu\n",
                kQueryReps, t_cold * 1e3, t_warm * 1e3, t_cold / t_warm,
                static_cast<unsigned long long>(hits), n);
    json_metric("query.decode_cache_speedup_x", t_cold / t_warm);
    shape_check(t_warm < t_cold,
                "decode cache makes the repeated dashboard window cheaper "
                "than decoding every time");
    shape_check(hits >= static_cast<std::uint64_t>(kQueryReps),
                "every repeated-window query after the first is served from "
                "the decode cache");
  }

  // -- 3. scan(): streaming with early exit ----------------------------------
  {
    auto t0 = steady_clock::now();
    std::size_t n = 0;
    for (int r = 0; r < kQueryReps; ++r) {
      n += baseline.query_range(SeriesId{0}, full).size();  // materialize all
    }
    const double t_mat = seconds_since(t0);
    t0 = steady_clock::now();
    std::size_t visited = 0;
    for (int r = 0; r < kQueryReps; ++r) {
      visited += baseline.scan(SeriesId{0}, full, [&](const TimedValue& p) {
        return p.time < 100 * core::kSecond;  // first ~100 points suffice
      });
    }
    const double t_scan = seconds_since(t0);
    std::printf("\nFirst-100-points probe (x%d): materialize-all %6.1f ms "
                "(%zu pts), scan+early-exit %6.2f ms (%.0fx, visited %zu)\n",
                kQueryReps, t_mat * 1e3, n, t_scan * 1e3, t_mat / t_scan,
                visited);
    json_metric("query.scan_vs_materialize_x", t_mat / t_scan);
    shape_check(t_scan * 10.0 < t_mat,
                "scan() with early exit beats materializing the range by "
                ">= 10x when the visitor stops early");
  }

  // -- 4. Reader scaling: calibrated makespan model --------------------------
  {
    // Real per-query cost of a decode-heavy query (cache off so every rep
    // does the full cursor work — the worst case for lock-held time in the
    // old engine).
    const TimeRange window{end / 2 + 17, end};  // boundary-heavy half range
    auto t0 = steady_clock::now();
    double s2 = 0.0;
    for (int r = 0; r < kQueryReps; ++r) {
      for (std::uint32_t id = 0; id < kSeries; ++id) {
        s2 += *old_aggregate(baseline, SeriesId{id}, window, store::Agg::kMax);
      }
    }
    const int kQueries = kQueryReps * static_cast<int>(kSeries);
    const double per_query = seconds_since(t0) / kQueries;
    // Lock-held proxy for the new engine: a snapshot-only query (summary
    // path, nothing decoded) measures the map+stripe critical section plus
    // the O(chunks) ref-copy — an upper bound on what a reader serializes.
    t0 = steady_clock::now();
    for (int r = 0; r < kQueryReps; ++r) {
      for (std::uint32_t id = 0; id < kSeries; ++id) {
        s2 -= *engine.aggregate(SeriesId{id}, full, store::Agg::kCount);
      }
    }
    const double per_snapshot = seconds_since(t0) / kQueries;
    std::printf("\nReader-scaling model (real costs: %.1f us/query total, "
                "%.2f us lock-held proxy; drift %.3g):\n",
                per_query * 1e6, per_snapshot * 1e6, s2);
    std::printf("  makespan(R) = max(serial, total/R) over %d queries\n",
                kQueries);
    std::printf("  %-28s", "design\\readers");
    const int readers[] = {1, 2, 4, 8};
    for (int r : readers) std::printf("  R=%-8d", r);
    std::printf("  (kqueries/s)\n");
    const double total_work = per_query * kQueries;
    double old_r4 = 0.0, new_r4 = 0.0, new_r1 = 0.0;
    std::printf("  %-28s", "old (global mutex)");
    for (int r : readers) {
      // The old engine's mutex is held for the whole query: serial == total.
      const double mk = total_work;
      const double kqps = kQueries / mk / 1e3;
      if (r == 4) old_r4 = kqps;
      std::printf("  %-10.1f", kqps);
    }
    std::printf("\n  %-28s", "new (shared + striped)");
    for (int r : readers) {
      const double mk = std::max(per_snapshot * kQueries, total_work / r);
      const double kqps = kQueries / mk / 1e3;
      if (r == 1) new_r1 = kqps;
      if (r == 4) new_r4 = kqps;
      std::printf("  %-10.1f", kqps);
    }
    std::printf("\n");
    json_metric("query.new_engine_r1_kqps", new_r1);
    json_metric("query.new_engine_r4_kqps", new_r4);
    json_metric("query.old_engine_r4_kqps", old_r4);
    shape_check(new_r4 >= 2.0 * new_r1,
                core::strformat("new engine's modeled 4-reader throughput "
                                "scales >= 2x over 1 reader (%.1fx)",
                                new_r4 / new_r1));
    shape_check(new_r4 >= 2.0 * old_r4,
                core::strformat("at 4 readers the shared-lock engine models "
                                ">= 2x the global-mutex engine (%.1fx)",
                                new_r4 / old_r4));

    // Real-threaded reference: 4 readers hammer the engine concurrently
    // while a writer appends a fresh series. Validates correctness under
    // contention; wall-clock speedup needs a multi-core host.
    std::atomic<std::uint64_t> answered{0};
    t0 = steady_clock::now();
    std::vector<std::thread> pool;
    for (int r = 0; r < 4; ++r) {
      pool.emplace_back([&, r] {
        for (int q = 0; q < kQueryReps; ++q) {
          const auto v = engine.aggregate(
              SeriesId{static_cast<std::uint32_t>((r + q) % kSeries)}, window,
              store::Agg::kMax);
          answered.fetch_add(v.has_value(), std::memory_order_relaxed);
        }
      });
    }
    TimePoint wt = 0;
    for (int i = 0; i < 5000; ++i) {
      engine.append(SeriesId{kSeries}, wt += core::kSecond, 1.0 * i);
    }
    for (auto& t : pool) t.join();
    std::printf("  reference (real 4 reader threads + 1 writer): %.1f ms "
                "wall, %llu/%d queries answered, writer appended 5000\n",
                seconds_since(t0) * 1e3,
                static_cast<unsigned long long>(answered.load()),
                4 * kQueryReps);
    shape_check(answered.load() == 4 * kQueryReps,
                "all concurrent-reader queries answered while the writer "
                "made progress");
  }

  // -- 5. Sharded scatter-gather fan-out -------------------------------------
  {
    ingest::ShardedTimeSeriesStore sharded(4, kChunkPoints);
    core::Rng rng(7);
    std::vector<SeriesId> ids;
    for (std::uint32_t s = 0; s < 64; ++s) {
      ids.push_back(SeriesId{s});
      TimePoint t = 0;
      for (int i = 0; i < 4000; ++i) {
        sharded.append(SeriesId{s}, t += core::kSecond, rng.uniform(0., 100.));
      }
    }
    const TimeRange r{0, 4001 * core::kSecond};
    const auto t0 = steady_clock::now();
    const auto results = sharded.aggregate_many(ids, r, store::Agg::kMean);
    const double t_many = seconds_since(t0);
    std::size_t ok = 0;
    for (const auto& v : results) ok += v.has_value();
    std::printf("\naggregate_many over %zu series x 4 shards: %.2f ms, "
                "%zu answered\n",
                ids.size(), t_many * 1e3, ok);
    shape_check(ok == ids.size(),
                "scatter-gather fan-out answers every series in one call");
  }

  // -- 6. Hot-path codec: word-at-a-time vs the original bit-at-a-time -------
  {
    // One big chunk of jittered-cadence random-walk data: every dod class 1
    // and XOR window path gets exercised, like real telemetry.
    std::vector<TimedValue> pts;
    core::Rng rng(99);
    TimePoint t = 0;
    double level = 200.0;
    pts.reserve(kPointsPerSeries);
    for (int i = 0; i < kPointsPerSeries; ++i) {
      t += core::kSecond +
           static_cast<core::Duration>(rng.uniform(0.0, 2000.0));
      level += rng.normal(0.0, 1.0);
      pts.push_back({t, level});
    }
    constexpr int kCodecReps = 25;
    const auto chunk = store::Chunk::compress(pts);
    shape_check(chunk.payload() == refcodec::ref_encode_payload(pts),
                "word-at-a-time encoder emits a byte-identical payload to the "
                "original bit-at-a-time codec");

    auto t0 = steady_clock::now();
    std::size_t bytes = 0;
    for (int r = 0; r < kCodecReps; ++r) {
      bytes += refcodec::ref_encode_payload(pts).size();
    }
    const double t_enc_ref = seconds_since(t0);
    t0 = steady_clock::now();
    for (int r = 0; r < kCodecReps; ++r) {
      bytes -= store::Chunk::compress(pts).payload().size();
    }
    const double t_enc_new = seconds_since(t0);

    t0 = steady_clock::now();
    std::size_t decoded = 0;
    for (int r = 0; r < kCodecReps; ++r) {
      decoded +=
          refcodec::ref_decode_payload(chunk.payload(), chunk.count()).size();
    }
    const double t_dec_ref = seconds_since(t0);
    std::vector<TimedValue> out;
    t0 = steady_clock::now();
    for (int r = 0; r < kCodecReps; ++r) {
      out.clear();
      decoded -= store::decode_all(chunk, out);
    }
    const double t_dec_new = seconds_since(t0);

    const double enc_x = t_enc_ref / t_enc_new;
    const double dec_x = t_dec_ref / t_dec_new;
    const double dec_msps =
        kCodecReps * static_cast<double>(pts.size()) / t_dec_new / 1e6;
    std::printf("\nHot-path codec, %d points x %d reps (byte drift %zu):\n",
                kPointsPerSeries, kCodecReps, bytes + decoded);
    std::printf("  encode: bit-at-a-time %7.1f ms, word-at-a-time %7.1f ms "
                "(%.1fx)\n",
                t_enc_ref * 1e3, t_enc_new * 1e3, enc_x);
    std::printf("  decode: bit-at-a-time %7.1f ms, word-at-a-time %7.1f ms "
                "(%.1fx, %.1f Msamples/s)\n",
                t_dec_ref * 1e3, t_dec_new * 1e3, dec_x, dec_msps);
    json_metric("query.codec_encode_speedup_x", enc_x);
    json_metric("query.codec_decode_speedup_x", dec_x);
    json_metric("query.full_decode_msamples_per_s", dec_msps);
    shape_check(dec_x >= 2.0,
                core::strformat("batch decode_all is >= 2x the bit-at-a-time "
                                "decoder on the full-decode path (%.1fx)",
                                dec_x));
    shape_check(enc_x >= 1.5,
                core::strformat("word-at-a-time encode is >= 1.5x the "
                                "bit-at-a-time encoder (%.1fx)",
                                enc_x));
  }

  return finish();
}
