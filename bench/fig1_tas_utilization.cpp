// Fig 1 (NCSA): mean HSN injection-bandwidth utilization before vs. after
// Topologically-Aware Scheduling (TAS).
//
// The paper's figure shows two eras of the same machine: mean injection
// bandwidth utilization (blue line, % of maximum) is "significantly lower
// over the pre-TAS time period (left) than when TAS was being utilized
// (right)" — compact placement reduces path overlap and congestion, so
// applications actually get their bandwidth. We run the identical workload
// stream under random placement (pre-TAS era) and topology-aware placement
// (TAS era) and compare the delivered mean injection utilization.
#include "bench_common.hpp"

#include "viz/chart.hpp"
#include "viz/query.hpp"

namespace hpcmon::bench {
namespace {

sim::ClusterParams machine(sim::PlacementPolicy policy) {
  sim::ClusterParams p;
  p.shape.cabinets = 2;
  p.shape.chassis_per_cabinet = 3;
  p.shape.blades_per_chassis = 8;
  p.shape.nodes_per_blade = 4;  // 192 nodes, Gemini-style torus
  p.fabric_kind = sim::FabricKind::kTorus3D;
  p.placement = policy;
  p.tick = 2 * core::kSecond;
  p.seed = 1234;  // identical workload stream in both eras
  return p;
}

sim::WorkloadParams workload() {
  sim::WorkloadParams w;
  w.mean_interarrival = 15 * core::kSecond;
  w.min_nodes = 8;
  w.max_nodes = 64;
  w.median_nodes = 24.0;
  w.median_runtime = 8 * core::kMinute;
  // Communication-heavy mix: the traffic TAS was introduced to protect.
  w.mix = {sim::app_network_heavy(), sim::app_network_heavy(),
           sim::app_compute_bound(), sim::app_io_checkpoint()};
  return w;
}

struct EraResult {
  std::vector<core::TimedValue> mean_util;
  double overall_mean = 0.0;
  double mean_span = 0.0;
  std::size_t jobs_completed = 0;
  double total_stalls = 0.0;  // machine-wide cumulative link stall counter
};

EraResult run_era(sim::PlacementPolicy policy) {
  MonitoredCluster mc(machine(policy));
  mc.cluster.start_workload(workload());
  mc.cluster.run_for(2 * core::kHour);

  std::vector<core::ComponentId> nodes;
  for (int i = 0; i < mc.cluster.topology().num_nodes(); ++i) {
    nodes.push_back(mc.cluster.topology().node(i));
  }
  EraResult r;
  // Skip the 15-minute warmup while the machine fills.
  r.mean_util = viz::aggregate_across(
      mc.tsdb, mc.cluster.registry(), "hsn.node.injection_util", nodes,
      {15 * core::kMinute, mc.cluster.now()}, store::Agg::kMean);
  double sum = 0.0;
  for (const auto& p : r.mean_util) sum += p.value;
  r.overall_mean = r.mean_util.empty()
                       ? 0.0
                       : sum / static_cast<double>(r.mean_util.size());
  r.mean_span = mc.cluster.scheduler().mean_placement_span();
  r.jobs_completed = mc.cluster.scheduler().completed_jobs().size();
  for (int l = 0; l < mc.cluster.topology().num_links(); ++l) {
    r.total_stalls += mc.cluster.fabric().link_state(l).stalls;
  }
  return r;
}

}  // namespace
}  // namespace hpcmon::bench

int main() {
  using namespace hpcmon;
  using namespace hpcmon::bench;

  header("Fig 1: mean HSN injection bandwidth utilization, pre-TAS vs TAS",
         "Ahlgren et al. 2018, Fig. 1 (NCSA Blue Waters, [2])");
  std::printf(
      "Machine: 192-node 3D torus. Identical 2h communication-heavy job\n"
      "stream; placement policy is the only difference between eras.\n\n");

  const auto pre = run_era(sim::PlacementPolicy::kRandom);
  const auto tas = run_era(sim::PlacementPolicy::kTopoAware);

  viz::ChartOptions opt;
  opt.title = "mean injection utilization (fraction of NIC capacity)";
  opt.height = 12;
  std::printf("%s\n",
              viz::render_ascii({{"pre-TAS (random placement)", pre.mean_util},
                                 {"TAS (topology-aware)", tas.mean_util}},
                                opt)
                  .c_str());

  std::printf(
      "era        mean_injection_util  mean_placement_span  jobs_done  "
      "total_link_stalls\n");
  std::printf("pre-TAS    %.4f               %8.1f            %-9zu  %.3g\n",
              pre.overall_mean, pre.mean_span, pre.jobs_completed,
              pre.total_stalls);
  std::printf("TAS        %.4f               %8.1f            %-9zu  %.3g\n",
              tas.overall_mean, tas.mean_span, tas.jobs_completed,
              tas.total_stalls);
  std::printf("TAS / pre-TAS utilization ratio: %.2fx\n\n",
              tas.overall_mean / std::max(1e-9, pre.overall_mean));

  shape_check(tas.overall_mean > pre.overall_mean * 1.05,
              "mean injection utilization is significantly higher in the TAS "
              "era (paper: pre-TAS 'significantly lower')");
  shape_check(tas.mean_span < pre.mean_span,
              "TAS placements are more compact (smaller node-index span)");
  shape_check(tas.total_stalls < pre.total_stalls * 0.8,
              "machine-wide link stalls drop under TAS (less shared-link "
              "contention)");
  return finish();
}
