// Fig 3 (KAUST): whole-system and per-cabinet power during a job with a load
// imbalance bug.
//
// Paper: "Around 17-22 minutes, power usage variation of up to 3 times was
// observed between different cabinets and full system power draw was almost
// 1.9 times lower during this period of variable cabinet usage."
//
// We run a machine-spanning job whose middle phase leaves only ~30% of nodes
// active, sample per-cabinet power at one-minute cadence, and run the
// imbalance detector. Shape targets: cabinet max/min ratio ~3x, system draw
// drop ~1.9x, detection window aligned with the imbalanced phase.
#include "bench_common.hpp"

#include "analysis/power_profile.hpp"
#include "viz/chart.hpp"
#include "viz/query.hpp"

namespace hpcmon::bench {
namespace {

sim::ClusterParams machine() {
  sim::ClusterParams p;
  p.shape.cabinets = 4;
  p.shape.chassis_per_cabinet = 3;
  p.shape.blades_per_chassis = 8;
  p.shape.nodes_per_blade = 4;  // 96 nodes/cabinet, 384 total
  p.fabric_kind = sim::FabricKind::kDragonfly;
  p.power.noise_w = 2.0;
  p.tick = 5 * core::kSecond;
  p.seed = 42;
  return p;
}

}  // namespace
}  // namespace hpcmon::bench

int main() {
  using namespace hpcmon;
  using namespace hpcmon::bench;

  header("Fig 3: per-cabinet power exposes load imbalance",
         "Ahlgren et al. 2018, Fig. 3 (KAUST Shaheen2)");

  MonitoredCluster mc(machine());
  const int total_nodes = mc.cluster.topology().num_nodes();
  sim::JobRequest job;
  job.num_nodes = total_nodes;  // full-machine run, as in the KAUST story
  job.nominal_runtime = 40 * core::kMinute;
  job.profile = sim::app_imbalanced();  // middle phase: 30% of nodes active
  mc.cluster.submit_at(2 * core::kMinute, job);
  mc.cluster.run_for(55 * core::kMinute);

  // Per-cabinet power series (synchronized 1-minute sweeps).
  auto& reg = mc.cluster.registry();
  std::vector<std::vector<core::TimedValue>> cabinets;
  std::vector<viz::ChartSeries> chart;
  const core::TimeRange all{0, mc.cluster.now()};
  for (int c = 0; c < mc.cluster.topology().num_cabinets(); ++c) {
    const auto sid =
        reg.series("power.cabinet_w", mc.cluster.topology().cabinet(c));
    cabinets.push_back(mc.tsdb.query_range(sid, all));
    chart.push_back({core::strformat("cabinet c%d-0", c), cabinets.back()});
  }
  const auto system_sid =
      reg.series("power.system_w", mc.cluster.topology().system());
  const auto system_power = mc.tsdb.query_range(system_sid, all);

  viz::ChartOptions opt;
  opt.title = "system power (W)";
  opt.height = 10;
  std::printf("%s\n",
              viz::render_ascii({{"system", system_power}}, opt).c_str());
  opt.title = "per-cabinet power (W)";
  std::printf("%s\n", viz::render_ascii(chart, opt).c_str());

  analysis::ImbalanceParams params;
  params.ratio_threshold = 2.0;
  const auto windows = analysis::detect_imbalance(cabinets, params);
  std::printf("detected imbalance windows:\n");
  for (const auto& w : windows) {
    std::printf("  %s .. %s  cabinet max/min ratio %.2fx, system draw %.2fx lower\n",
                core::format_time(w.range.begin).c_str(),
                core::format_time(w.range.end).c_str(), w.max_ratio,
                w.draw_drop);
  }
  if (windows.empty()) std::printf("  (none)\n");
  std::printf("\n");

  // Ground truth: the imbalanced phase is 50% of the job's *work*; wall-clock
  // boundaries shift as other phases stretch under I/O contention, so check
  // containment within the job and an approximately half-runtime duration.
  const auto rec = mc.jobs.jobs_overlapping(all);
  core::TimePoint job_begin = 0;
  core::TimePoint job_end = 0;
  for (const auto& j : rec) {
    if (j.app_name == "imbalanced") {
      job_begin = j.start_time;
      job_end = j.end_time < 0 ? mc.cluster.now() : j.end_time;
    }
  }

  shape_check(windows.size() == 1, "exactly one imbalance window detected");
  if (!windows.empty()) {
    const auto& w = windows[0];
    shape_check(w.max_ratio > 2.3 && w.max_ratio < 4.0,
                core::strformat("cabinet power variation ~3x (measured %.2fx; "
                                "paper: 'up to 3 times')",
                                w.max_ratio));
    shape_check(w.draw_drop > 1.5 && w.draw_drop < 2.3,
                core::strformat("system draw ~1.9x lower during the window "
                                "(measured %.2fx)",
                                w.draw_drop));
    const auto slack = 2 * core::kMinute;
    const double frac = static_cast<double>(w.range.length()) /
                        static_cast<double>(std::max<core::Duration>(
                            1, job_end - job_begin));
    shape_check(w.range.begin >= job_begin - slack &&
                    w.range.end <= job_end + slack && frac > 0.3 && frac < 0.7,
                core::strformat("detected window lies inside the job and "
                                "covers ~half its runtime (%.0f%%)",
                                frac * 100.0));
  }
  return finish();
}
