// Ablation: storm mode — priority-aware shedding + degradation controller
// vs the class-blind baseline, under an identical bulk-flood storm.
//
// The paper's recurring war story (Secs. III-IV) is a monitoring stack
// engineered for fair weather: the first full-system event floods the
// pipeline and the data operators need most — the critical health signal —
// is lost along with the bulk noise, because shedding is class-blind. This
// bench pours the same storm through three ingest configurations:
//
//   baseline    no priorities, no controller (the seed pipeline):
//               drop-oldest eviction is class-blind, so sweep sub-batches
//               carrying critical series are evicted like any other
//   priority    series priorities only: eviction spares critical at the
//               door, but nothing reduces inflow, so standard/bulk churn
//   storm-mode  priorities + DegradationController closing the loop from
//               the pipeline's own health metrics (the full tentpole)
//
// The measured quantity is store completeness per class after the run —
// what fraction of each class's offered samples can be queried back — plus
// the per-class shed/loss ledger and, for storm-mode, the controller's mode
// trace. The claims: the baseline loses critical samples; both
// priority-aware rows lose ZERO critical samples; storm-mode sheds bulk
// hardest (voluntarily, at the door) and returns to NORMAL after the storm.
#include <algorithm>
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/priority.hpp"
#include "ingest/pipeline.hpp"
#include "ingest/sharded_store.hpp"
#include "resilience/degradation.hpp"

namespace hpcmon::bench {
namespace {

using core::Priority;
using core::SampleBatch;
using core::SeriesId;

constexpr std::uint32_t kCritical = 8;     // ids [0, 8)
constexpr std::uint32_t kStandard = 64;    // ids [8, 72)
constexpr std::uint32_t kBulk = 512;       // ids [72, 584)
constexpr std::uint32_t kSeries = kCritical + kStandard + kBulk;
constexpr int kSweeps = 1000;
constexpr int kStormStart = 300;
constexpr int kStormEnd = 700;
constexpr int kFloodPerSweep = 16;  // extra bulk-only batches per storm sweep
constexpr std::size_t kShards = 2;
constexpr std::size_t kQueueCap = 8;  // tiny on purpose: the storm must bite

Priority class_of(SeriesId id) {
  const auto v = static_cast<std::uint32_t>(id);
  if (v < kCritical) return Priority::kCritical;
  if (v < kCritical + kStandard) return Priority::kStandard;
  return Priority::kBulk;
}

struct RunResult {
  ingest::IngestSnapshot snap;
  std::array<double, core::kPriorityClasses> stored_frac{};
  /// offered - queryable, per class. This is the config-independent loss
  /// measure: the baseline has no priority hook, so its by-class drop
  /// ledger attributes every loss to the standard class, but the store
  /// does not lie about which series are missing points.
  std::array<std::uint64_t, core::kPriorityClasses> lost_from_store{};
  std::string mode_trace;
  int transitions = 0;
  int max_mode = 0;
  core::DegradationMode final_mode = core::DegradationMode::kNormal;
};

// Pour the storm through one pipeline configuration. `with_priority` wires
// the class map into the door; `with_controller` closes the degradation
// loop from the pipeline's own metrics, exactly as MonitoringStack does.
RunResult run(bool with_priority, bool with_controller) {
  ingest::ShardedTimeSeriesStore store(kShards);
  ingest::IngestConfig cfg;
  cfg.queue_capacity = kQueueCap;
  cfg.policy = ingest::OverloadPolicy::kDropOldest;
  if (with_priority) cfg.priority_of = class_of;
  ingest::IngestPipeline pipe(store, cfg);

  resilience::DegradationController controller;
  RunResult r;
  if (with_controller) {
    controller.on_change([&](core::DegradationMode m) {
      pipe.set_mode(m);
      r.max_mode = std::max(r.max_mode, static_cast<int>(m));
      if (++r.transitions <= 8) {  // enough trace to see the shape
        r.mode_trace += r.mode_trace.empty() ? "" : " -> ";
        r.mode_trace += std::string(core::to_string(m));
      }
    });
  }

  pipe.start();
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    const core::TimePoint t = (sweep + 1) * core::kSecond;
    SampleBatch b;
    b.sweep_time = t;
    for (std::uint32_t s = 0; s < kSeries; ++s) {
      b.samples.push_back({SeriesId{s}, t, static_cast<double>(sweep)});
    }
    pipe.submit(b);
    if (sweep >= kStormStart && sweep < kStormEnd) {
      for (int f = 0; f < kFloodPerSweep; ++f) {
        SampleBatch flood;
        flood.sweep_time = t;
        for (std::uint32_t s = kCritical + kStandard; s < kSeries; ++s) {
          flood.samples.push_back(
              {SeriesId{s}, t + f + 1, static_cast<double>(f)});
        }
        pipe.submit(flood);
      }
    }
    if (with_controller) {
      // The stack's gather_health, at pipeline scope: live queue fill plus
      // the cumulative loss/shed counters (the controller uses the deltas).
      resilience::HealthSignals hs;
      std::size_t depth = 0;
      for (std::size_t i = 0; i < kShards; ++i) {
        depth = std::max(depth, pipe.queue_depth(i));
      }
      hs.queue_fill =
          static_cast<double>(depth) / static_cast<double>(kQueueCap);
      const auto s = pipe.metrics().snapshot();
      hs.lost_samples = s.lost_samples();
      hs.shed_samples = s.shed_samples();
      controller.evaluate(t, hs);
    }
  }
  pipe.drain();
  pipe.stop();

  r.snap = pipe.metrics().snapshot();
  r.final_mode = controller.mode();
  // Store completeness per class: queried-back points / offered points.
  std::array<std::uint64_t, core::kPriorityClasses> offered{};
  std::array<std::uint64_t, core::kPriorityClasses> stored{};
  const core::TimeRange all{0, (kSweeps + 2) * core::kSecond};
  for (std::uint32_t s = 0; s < kSeries; ++s) {
    const auto cls = static_cast<std::size_t>(class_of(SeriesId{s}));
    std::uint64_t want = kSweeps;
    if (cls == static_cast<std::size_t>(Priority::kBulk)) {
      want += static_cast<std::uint64_t>(kStormEnd - kStormStart) *
              kFloodPerSweep;
    }
    offered[cls] += want;
    stored[cls] += store.query_range(SeriesId{s}, all).size();
  }
  for (std::size_t c = 0; c < core::kPriorityClasses; ++c) {
    r.stored_frac[c] = offered[c] == 0 ? 1.0
                                       : static_cast<double>(stored[c]) /
                                             static_cast<double>(offered[c]);
    r.lost_from_store[c] = offered[c] - std::min(offered[c], stored[c]);
  }
  return r;
}

void print_row(const char* label, const RunResult& r) {
  constexpr auto kCrit = static_cast<std::size_t>(Priority::kCritical);
  constexpr auto kStd = static_cast<std::size_t>(Priority::kStandard);
  constexpr auto kBlk = static_cast<std::size_t>(Priority::kBulk);
  std::printf(
      "  %-10s stored: crit %6.2f%%  std %6.2f%%  bulk %6.2f%%   "
      "lost: crit %llu / std %llu / bulk %llu   shed: std %llu / bulk %llu\n",
      label, 100.0 * r.stored_frac[kCrit], 100.0 * r.stored_frac[kStd],
      100.0 * r.stored_frac[kBlk],
      static_cast<unsigned long long>(r.snap.dropped_by_class[kCrit] +
                                      r.snap.rejected_by_class[kCrit]),
      static_cast<unsigned long long>(r.snap.dropped_by_class[kStd] +
                                      r.snap.rejected_by_class[kStd]),
      static_cast<unsigned long long>(r.snap.dropped_by_class[kBlk] +
                                      r.snap.rejected_by_class[kBlk]),
      static_cast<unsigned long long>(r.snap.shed_by_class[kStd]),
      static_cast<unsigned long long>(r.snap.shed_by_class[kBlk]));
}

}  // namespace
}  // namespace hpcmon::bench

int main(int argc, char** argv) {
  hpcmon::bench::json_init(argc, argv);
  using namespace hpcmon::bench;
  using hpcmon::core::Priority;
  header("Ablation: storm mode — priority-aware degradation vs class-blind "
         "shedding",
         "Secs. III-IV (storms take out fair-weather monitoring); Table I "
         "(documented transport impact)");

  std::printf(
      "\nWorkload: %u critical / %u standard / %u bulk series, %d sweeps;\n"
      "bulk flood x%d during sweeps [%d, %d); %zu shards, queue cap %zu,\n"
      "drop_oldest. Identical storm for every row.\n\n",
      kCritical, kStandard, kBulk, kSweeps, kFloodPerSweep, kStormStart,
      kStormEnd, kShards, kQueueCap);

  const auto baseline = run(false, false);
  const auto priority = run(true, false);
  const auto storm = run(true, true);

  print_row("baseline", baseline);
  print_row("priority", priority);
  print_row("storm-mode", storm);
  std::printf(
      "\n  storm-mode controller: NORMAL -> %s%s\n"
      "  (%d transitions over the run — the bounded shed-hold probe "
      "oscillates slowly while the storm persists; max level %d, final "
      "%s)\n",
      storm.mode_trace.c_str(), storm.transitions > 8 ? " -> ..." : "",
      storm.transitions, storm.max_mode,
      std::string(hpcmon::core::to_string(storm.final_mode)).c_str());

  constexpr auto kCrit = static_cast<std::size_t>(Priority::kCritical);
  constexpr auto kStd = static_cast<std::size_t>(Priority::kStandard);
  constexpr auto kBlk = static_cast<std::size_t>(Priority::kBulk);

  // Loss is judged from the store (offered minus queryable): the baseline
  // has no priority hook, so its by-class drop ledger cannot see which
  // classes it hurt — the store can.
  const auto crit_lost = [](const RunResult& r) {
    return r.lost_from_store[kCrit];
  };
  shape_check(crit_lost(baseline) > 0,
              "class-blind baseline loses critical samples in the storm");
  shape_check(crit_lost(priority) == 0 && priority.stored_frac[kCrit] == 1.0,
              "priority-aware door loses ZERO critical samples");
  shape_check(crit_lost(storm) == 0 && storm.stored_frac[kCrit] == 1.0,
              "storm mode (priority + controller) loses ZERO critical "
              "samples");
  shape_check(storm.max_mode >= 1,
              "the controller engaged during the storm (left NORMAL)");
  shape_check(storm.final_mode == hpcmon::core::DegradationMode::kNormal,
              "the controller returned to NORMAL after the storm");
  const double storm_bulk_shed_frac =
      static_cast<double>(storm.snap.shed_by_class[kBlk]) /
      static_cast<double>(storm.snap.submitted_by_class[kBlk] +
                          storm.snap.shed_by_class[kBlk] + 1);
  const double storm_std_shed_frac =
      static_cast<double>(storm.snap.shed_by_class[kStd]) /
      static_cast<double>(storm.snap.submitted_by_class[kStd] +
                          storm.snap.shed_by_class[kStd] + 1);
  json_metric("storm.crit_lost_baseline",
              static_cast<double>(crit_lost(baseline)));
  json_metric("storm.bulk_shed_frac", storm_bulk_shed_frac);
  json_metric("storm.std_shed_frac", storm_std_shed_frac);
  shape_check(storm_bulk_shed_frac >= storm_std_shed_frac,
              "degradation sheds bulk at least as hard as standard");
  shape_check(storm.snap.shed_by_class[kCrit] == 0,
              "degradation never sheds critical at the door");

  return finish();
}
