// Ablation: serving-tier fan-out — the network front door under a fleet of
// concurrent consumers.
//
// The paper's recommendation is that monitoring data be continuously
// available to every consumer (dashboards, per-job reports, site tooling),
// not trapped in the collector. That only holds if the serving tier keeps
// its latency tail flat while >= 100 clients hammer it AND a live
// subscription fan-out rides the same reactor. This bench measures both:
//   1. request latency: 100+ concurrent clients issuing point queries,
//      aggregates, and pings against one server; reports p50/p99/max and
//      aggregate request throughput;
//   2. subscription fan-out: 100+ subscribers each matched to every series
//      while the "ingest thread" publishes sweep batches; reports delivered
//      delta samples/second and verifies every subscriber converged to the
//      final value of every series (the snapshot-then-deltas contract).
//
// `--json out.json` writes the flat metric map (bench_common.hpp) so CI can
// archive the serving-tier perf trajectory per PR.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/registry.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "store/tsdb.hpp"

namespace hpcmon::bench {
namespace {

constexpr int kClients = 112;  // >= 100 concurrent connections
constexpr int kRequestsPerClient = 40;
constexpr int kSeries = 16;
constexpr int kPointsPerSeries = 2000;
constexpr int kFanoutBatches = 60;

using Clock = std::chrono::steady_clock;

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

}  // namespace
}  // namespace hpcmon::bench

int main(int argc, char** argv) {
  using namespace hpcmon;
  using namespace hpcmon::bench;
  json_init(argc, argv);
  header("Ablation: serving-tier fan-out (hpcmon::serve)",
         "continuous availability of monitoring data to consumers "
         "(Sec. IV recommendations)");

  core::MetricRegistry registry;
  const auto node = registry.register_component(
      {"n0", core::ComponentKind::kNode, core::kNoComponent});
  const auto metric = registry.register_metric(
      {"node.power_w", "W", "", false, core::Priority::kCritical});
  std::vector<core::SeriesId> series;
  store::TimeSeriesStore store;
  for (int i = 0; i < kSeries; ++i) {
    const auto comp = registry.register_component(
        {"n" + std::to_string(i + 1), core::ComponentKind::kNode, node});
    const auto s = registry.series(metric, comp);
    series.push_back(s);
    for (int t = 0; t < kPointsPerSeries; ++t) {
      store.append(s, t * 100, 100.0 + (t % 50));
    }
  }

  serve::ServeConfig sc;
  sc.writer_threads = 4;
  serve::ServeHooks hooks;
  serve::bind_query_hooks(hooks, store);
  hooks.registry = &registry;
  serve::ServeServer server(sc, std::move(hooks));
  if (!server.start()) {
    std::printf("server failed to start: %s\n", server.error().c_str());
    return 1;
  }
  std::printf("server on 127.0.0.1:%u, %d clients\n\n", server.port(),
              kClients);

  // -- Phase 1: concurrent request latency ----------------------------------
  std::printf("phase 1: %d clients x %d requests (query_range + aggregate + "
              "ping)\n",
              kClients, kRequestsPerClient);
  std::vector<double> latencies_us;
  std::mutex lat_mu;
  std::atomic<int> request_failures{0};
  const auto t0 = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        serve::ServeClient client;
        if (!client.connect(server.port())) {
          request_failures.fetch_add(kRequestsPerClient);
          return;
        }
        const auto s = series[static_cast<std::size_t>(c) % series.size()];
        std::vector<double> local;
        local.reserve(kRequestsPerClient);
        for (int r = 0; r < kRequestsPerClient; ++r) {
          const auto rt0 = Clock::now();
          bool ok = false;
          switch (r % 3) {
            case 0:
              ok = client.query_range(s, {0, 20000}).is_ok();
              break;
            case 1:
              ok = client.aggregate(s, {0, 200000}, store::Agg::kMax).is_ok();
              break;
            default:
              ok = client.ping();
              break;
          }
          if (!ok) request_failures.fetch_add(1);
          local.push_back(
              std::chrono::duration<double, std::micro>(Clock::now() - rt0)
                  .count());
        }
        const std::lock_guard<std::mutex> lock(lat_mu);
        latencies_us.insert(latencies_us.end(), local.begin(), local.end());
      });
    }
    for (auto& th : threads) th.join();
  }
  const double query_wall = std::chrono::duration<double>(Clock::now() - t0).count();
  const double total_requests = static_cast<double>(kClients) * kRequestsPerClient;
  const double rps = total_requests / query_wall;
  const double p50 = percentile(latencies_us, 0.50);
  const double p99 = percentile(latencies_us, 0.99);
  const double pmax = latencies_us.empty() ? 0.0 : latencies_us.back();
  std::printf("  wall %.2fs  throughput %.0f req/s\n", query_wall, rps);
  std::printf("  latency us: p50 %.0f  p99 %.0f  max %.0f\n\n", p50, p99, pmax);
  json_metric("serve.clients", kClients);
  json_metric("serve.request_throughput_rps", rps);
  json_metric("serve.request_p50_us", p50);
  json_metric("serve.request_p99_us", p99);
  json_metric("serve.request_max_us", pmax);

  shape_check(request_failures.load() == 0,
              core::strformat("all %.0f requests from %d concurrent clients "
                              "answered correctly",
                              total_requests, kClients));
  shape_check(p99 < 250000.0,
              core::strformat("p99 request latency stays under 250ms under "
                              "%d-way concurrency (%.0fus)",
                              kClients, p99));

  // -- Phase 2: subscription fan-out ----------------------------------------
  std::printf("phase 2: %d subscribers x %d series, %d published batches\n",
              kClients, kSeries, kFanoutBatches);
  std::vector<std::unique_ptr<serve::ServeClient>> subs;
  std::atomic<int> sub_failures{0};
  for (int c = 0; c < kClients; ++c) {
    auto client = std::make_unique<serve::ServeClient>();
    if (!client->connect(server.port()) ||
        !client->subscribe("node.#").is_ok() ||
        !client->poll_push(2000).has_value()) {  // the snapshot
      sub_failures.fetch_add(1);
    }
    subs.push_back(std::move(client));
  }
  shape_check(sub_failures.load() == 0,
              "every subscriber connected and received its snapshot");

  std::atomic<std::uint64_t> delivered{0};
  std::atomic<int> unconverged{0};
  const auto f0 = Clock::now();
  std::thread publisher([&] {
    for (int b = 1; b <= kFanoutBatches; ++b) {
      core::SampleBatch batch;
      batch.sweep_time = 1000000 + b * 100;
      for (const auto s : series) {
        batch.samples.push_back({s, 1000000 + b * 100,
                                 static_cast<double>(b)});
      }
      server.publish_batch(batch);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  {
    std::vector<std::thread> drains;
    drains.reserve(subs.size());
    for (auto& sub : subs) {
      drains.emplace_back([&, client = sub.get()] {
        std::map<core::SeriesId, double> last;
        const auto deadline = Clock::now() + std::chrono::seconds(20);
        while (Clock::now() < deadline) {
          auto push = client->poll_push(200);
          if (!push.has_value()) {
            bool done = last.size() == series.size();
            for (const auto& [sid, v] : last) {
              done = done && v == static_cast<double>(kFanoutBatches);
            }
            if (done) break;
            continue;
          }
          delivered.fetch_add(push->batch.samples.size());
          for (const auto& smp : push->batch.samples) {
            last[smp.series] = smp.value;
          }
        }
        for (const auto s : series) {
          const auto it = last.find(s);
          if (it == last.end() ||
              it->second != static_cast<double>(kFanoutBatches)) {
            unconverged.fetch_add(1);
            break;
          }
        }
      });
    }
    for (auto& th : drains) th.join();
  }
  publisher.join();
  const double fan_wall = std::chrono::duration<double>(Clock::now() - f0).count();
  const double fan_sps = static_cast<double>(delivered.load()) / fan_wall;
  std::printf("  delivered %llu delta samples in %.2fs (%.0f samples/s "
              "across %d subscribers)\n\n",
              static_cast<unsigned long long>(delivered.load()), fan_wall,
              fan_sps, kClients);
  json_metric("serve.fanout_subscribers", kClients);
  json_metric("serve.fanout_delivered_samples",
              static_cast<double>(delivered.load()));
  json_metric("serve.fanout_wall_s", fan_wall);
  json_metric("serve.fanout_samples_per_s", fan_sps);

  shape_check(unconverged.load() == 0,
              core::strformat("all %d subscribers converged to the final "
                              "value of every series (zero critical loss)",
                              kClients));
  shape_check(fan_sps > 0.0, "fan-out delivered a nonzero delta stream");

  const auto stats = server.stats();
  json_metric("serve.bad_frames", static_cast<double>(stats.bad_frames));
  json_metric("serve.request_errors",
              static_cast<double>(stats.request_errors));
  shape_check(stats.bad_frames == 0 && stats.request_errors == 0,
              "no protocol violations or request errors across the run");

  server.stop();
  return finish();
}
