// Sec. II.9 (SNL): congestion levels and regions from synchronized HSN
// counter collection.
//
// "functional combinations of High Speed Network (HSN) performance counters,
// collected periodically (1 - 60 second intervals) and synchronously across
// a whole system, to determine congestion levels, congestion regions, and
// impact on application performance."
//
// We sample link stall counters before/during/after an aggressor traffic
// storm, derive stall rates, and check the analyzer grades the level and
// localizes the region on the routers the aggressor actually uses — on both
// the dragonfly and torus fabrics ("work under way to apply their approach
// more generally").
#include "bench_common.hpp"

#include "analysis/congestion.hpp"
#include "analysis/streaming.hpp"

namespace hpcmon::bench {
namespace {

sim::ClusterParams machine(sim::FabricKind kind) {
  sim::ClusterParams p;
  p.shape.cabinets = 2;
  p.shape.chassis_per_cabinet = 2;
  p.shape.blades_per_chassis = 6;
  p.shape.nodes_per_blade = 4;  // 96 nodes
  p.fabric_kind = kind;
  p.tick = 5 * core::kSecond;
  p.seed = 5;
  return p;
}

struct PhaseReport {
  analysis::CongestionReport before;
  analysis::CongestionReport during;
  analysis::CongestionReport after;
  std::vector<int> truth_links;  // links on the aggressor's routes
};

PhaseReport run(sim::FabricKind kind) {
  sim::Cluster cluster(machine(kind));
  // Light background so "before" isn't perfectly silent.
  sim::WorkloadParams w;
  w.mean_interarrival = 2 * core::kMinute;
  w.max_nodes = 8;
  w.mix = {sim::app_compute_bound()};
  cluster.start_workload(w);

  // Stall-rate derivation from counters, exactly as a collector would.
  const int n_links = cluster.topology().num_links();
  std::vector<analysis::RateConverter> rate(n_links);
  auto snapshot = [&]() {
    std::vector<double> stalls(n_links, 0.0);
    for (int l = 0; l < n_links; ++l) {
      if (auto r = rate[l].update(cluster.now(),
                                  cluster.fabric().link_state(l).stalls)) {
        stalls[l] = *r / 1e6;  // stall-rate units (see Fabric::tick)
      }
    }
    return stalls;
  };

  cluster.run_for(10 * core::kMinute);
  snapshot();  // prime the rate converters
  cluster.run_for(core::kMinute);
  PhaseReport report;
  report.before = analysis::analyze_congestion(cluster.topology(), snapshot());

  // Aggressor: a 24-node all-to-all-ish blaster confined to low node ids.
  std::vector<sim::Flow> storm;
  for (int i = 0; i < 24; ++i) {
    storm.push_back({i, (i + 8) % 24, 5.0});
    storm.push_back({i, (i + 16) % 24, 5.0});
  }
  cluster.fabric().set_job_flows(core::JobId{77777}, storm);
  // Ground truth: every link on any storm route.
  for (const auto& f : storm) {
    for (const int li : cluster.fabric().route(f.src_node, f.dst_node)) {
      report.truth_links.push_back(li);
    }
  }
  std::sort(report.truth_links.begin(), report.truth_links.end());
  report.truth_links.erase(
      std::unique(report.truth_links.begin(), report.truth_links.end()),
      report.truth_links.end());

  cluster.run_for(core::kMinute);
  snapshot();
  cluster.run_for(core::kMinute);
  report.during = analysis::analyze_congestion(cluster.topology(), snapshot());

  cluster.fabric().clear_job_flows(core::JobId{77777});
  cluster.run_for(core::kMinute);
  snapshot();
  cluster.run_for(core::kMinute);
  report.after = analysis::analyze_congestion(cluster.topology(), snapshot());
  return report;
}

void evaluate(const char* fabric_name, const PhaseReport& r) {
  std::printf("[%s]\n", fabric_name);
  std::printf("  phase   level    congested_frac  regions  max_stall\n");
  auto row = [](const char* phase, const analysis::CongestionReport& rep) {
    std::printf("  %-7s %-8s %.3f           %-7zu  %.2f\n", phase,
                std::string(analysis::to_string(rep.level)).c_str(),
                rep.congested_link_fraction, rep.regions.size(), rep.max_stall);
  };
  row("before", r.before);
  row("during", r.during);
  row("after", r.after);

  // Region localization: congested links found inside the ground truth set.
  std::size_t hits = 0;
  std::size_t detected = 0;
  for (const auto& region : r.during.regions) {
    for (const int li : region.links) {
      ++detected;
      if (std::binary_search(r.truth_links.begin(), r.truth_links.end(), li)) {
        ++hits;
      }
    }
  }
  const double precision =
      detected == 0 ? 0.0 : static_cast<double>(hits) / detected;
  std::printf("  region precision vs aggressor routes: %.2f (%zu/%zu links)\n\n",
              precision, hits, detected);

  shape_check(r.before.level == analysis::CongestionLevel::kNone ||
                  r.before.level == analysis::CongestionLevel::kLow,
              std::string(fabric_name) + ": quiet fabric grades none/low");
  shape_check(r.during.level >= analysis::CongestionLevel::kMedium,
              std::string(fabric_name) +
                  ": storm raises machine congestion level to medium+");
  shape_check(!r.during.regions.empty() && precision >= 0.9,
              std::string(fabric_name) +
                  ": detected region localizes to the aggressor's routes");
  shape_check(r.after.level <= analysis::CongestionLevel::kLow,
              std::string(fabric_name) + ": level recovers after the storm");
}

}  // namespace
}  // namespace hpcmon::bench

int main() {
  using namespace hpcmon;
  using namespace hpcmon::bench;

  header("Sec II.9: HSN congestion levels and regions from link counters",
         "Ahlgren et al. 2018, Sec. II.9 (SNL, [5][12])");
  evaluate("dragonfly", run(sim::FabricKind::kDragonfly));
  evaluate("torus3d", run(sim::FabricKind::kTorus3D));
  return finish();
}
