// Ablation: relay resilience — goodput and recovery latency vs socket
// fault rate.
//
// The relay tier's claim (DESIGN.md "Relay tier") is that at-least-once
// delivery with exactly-once apply costs little when the network is clean
// and degrades gracefully — not catastrophically, and never by losing
// acknowledged data — when it is not. This bench measures that claim:
//
//   1. Goodput sweep: the same fixed workload (240 batches x 256 samples)
//      is relayed to an upstream ServeServer under increasing composed
//      socket-fault rates (short writes/reads, stalls, resets, torn
//      frames on ONE monotone op stream spanning both peers). Reported
//      per level: acked samples/s, resends, reconnects — plus the
//      hardware-relative retention ratios (faulted goodput / clean
//      goodput, `*_x`) that the CI regression gate tracks.
//   2. Recovery latency: from a scripted connection reset to the next
//      acknowledged append, sampled over repeated kills in steady state
//      (backoff floor 1 ms, so the number tracks the relay's reconnect
//      machinery rather than a configured sleep).
//
// Shape checks encode the contract, not absolute speed: every level
// converges with zero acknowledged loss and zero rejected batches, the
// upstream store is sample-exact vs the submitted workload, retention
// under the severe profile stays above a floor, and median recovery is
// bounded.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/sample.hpp"
#include "relay/client.hpp"
#include "resilience/fault.hpp"
#include "serve/server.hpp"
#include "store/tsdb.hpp"

namespace hpcmon::bench {
namespace {

constexpr int kBatches = 240;
constexpr int kSeriesCount = 8;
constexpr int kSamplesPerSeries = 32;  // 256 samples per batch
constexpr std::size_t kSamplesPerBatch =
    static_cast<std::size_t>(kSeriesCount) * kSamplesPerSeries;

struct Upstream {
  store::TimeSeriesStore store;
  std::unique_ptr<serve::ServeServer> server;

  explicit Upstream(core::SocketFaultInjector* faults) {
    serve::ServeConfig sc;
    sc.socket_faults = faults;
    serve::ServeHooks hooks;
    hooks.relay_apply = [this](const core::SampleBatch& b, core::Priority) {
      return store.append_batch(b.samples);
    };
    server = std::make_unique<serve::ServeServer>(sc, std::move(hooks));
  }

  std::size_t stored_samples() {
    std::size_t total = 0;
    for (int s = 0; s < kSeriesCount; ++s) {
      total += store
                   .query_range(core::SeriesId{static_cast<std::uint32_t>(s)},
                                {0, kBatches * 1000 + core::kHour})
                   .size();
    }
    return total;
  }
};

core::SampleBatch make_batch(int b) {
  core::SampleBatch batch;
  batch.sweep_time = b * 1000;
  for (int s = 0; s < kSeriesCount; ++s) {
    for (int i = 0; i < kSamplesPerSeries; ++i) {
      batch.samples.push_back({core::SeriesId{static_cast<std::uint32_t>(s)},
                               b * 1000 + i * 10,
                               static_cast<double>(b) + s * 0.1 + i * 0.001});
    }
  }
  return batch;
}

struct FaultLevel {
  const char* name;
  resilience::FaultSpec spec;
};

std::vector<FaultLevel> fault_levels() {
  std::vector<FaultLevel> levels;
  levels.push_back({"clean", {}});
  resilience::FaultSpec light;
  light.sock_short_write_p = 0.02;
  light.sock_short_read_p = 0.02;
  light.sock_stall_p = 0.002;
  levels.push_back({"light", light});
  resilience::FaultSpec moderate;
  moderate.sock_short_write_p = 0.05;
  moderate.sock_short_read_p = 0.05;
  moderate.sock_stall_p = 0.005;
  moderate.sock_reset_p = 0.005;
  moderate.sock_torn_frame_p = 0.002;
  levels.push_back({"moderate", moderate});
  resilience::FaultSpec severe;
  severe.sock_short_write_p = 0.10;
  severe.sock_short_read_p = 0.10;
  severe.sock_stall_p = 0.01;
  severe.sock_reset_p = 0.01;
  severe.sock_torn_frame_p = 0.005;
  levels.push_back({"severe", severe});
  return levels;
}

struct SweepResult {
  bool converged = false;
  double goodput_sps = 0;
  relay::RelayStats stats;
  std::size_t stored = 0;
};

SweepResult run_level(const FaultLevel& level) {
  resilience::FaultPlan plan(0xBE7A0000u);
  plan.set_spec(level.spec);
  Upstream up(&plan);
  if (!up.server->start()) {
    std::printf("upstream failed to start: %s\n", up.server->error().c_str());
    return {};
  }
  relay::RelayConfig rc;
  rc.upstream_port = up.server->port();
  rc.batch_samples = kSamplesPerBatch;
  rc.queue_cap = kBatches + 8;  // whole workload fits; nothing is shed
  rc.backoff_ms = 1;
  rc.backoff_max_ms = 20;
  rc.ack_timeout_ms = 400;
  rc.socket_faults = &plan;
  relay::RelayClient client(rc);
  SweepResult r;
  if (!client.start()) return r;
  const auto t0 = std::chrono::steady_clock::now();
  for (int b = 0; b < kBatches; ++b) client.submit(make_batch(b));
  r.converged = client.drain_for(60000);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  client.stop();
  r.stats = client.stats();
  r.goodput_sps =
      secs > 0 ? static_cast<double>(r.stats.acked_samples) / secs : 0;
  r.stored = up.stored_samples();
  return r;
}

void goodput_sweep() {
  std::printf("\n-- Goodput vs composed socket-fault rate --\n");
  std::printf("%-10s %14s %9s %9s %9s %8s %10s\n", "level", "goodput(sps)",
              "resent", "connects", "timeouts", "stored", "converged");
  double clean_goodput = 0;
  std::vector<std::pair<std::string, double>> retention;
  for (const auto& level : fault_levels()) {
    const auto r = run_level(level);
    std::printf("%-10s %14.0f %9llu %9llu %9llu %8zu %10s\n", level.name,
                r.goodput_sps,
                static_cast<unsigned long long>(r.stats.resent_batches),
                static_cast<unsigned long long>(r.stats.connects),
                static_cast<unsigned long long>(r.stats.ack_timeouts),
                r.stored, r.converged ? "yes" : "NO");
    const std::string tag = level.name;
    json_metric("relay.goodput_sps_" + tag, r.goodput_sps);
    json_metric("relay.resent_batches_" + tag,
                static_cast<double>(r.stats.resent_batches));
    json_metric("relay.connects_" + tag,
                static_cast<double>(r.stats.connects));
    shape_check(r.converged, tag + ": every batch acked within the deadline");
    shape_check(r.stored == kBatches * kSamplesPerBatch,
                tag + ": upstream store is sample-exact (" +
                    std::to_string(r.stored) + " of " +
                    std::to_string(kBatches * kSamplesPerBatch) + ")");
    shape_check(r.stats.rejected_batches == 0,
                tag + ": zero rejected batches");
    shape_check(r.stats.shed_batches == 0, tag + ": zero shed batches");
    if (tag == "clean") {
      clean_goodput = r.goodput_sps;
      shape_check(r.stats.resent_batches == 0,
                  "clean: no resends on a fault-free wire");
    } else if (clean_goodput > 0) {
      retention.emplace_back(tag, r.goodput_sps / clean_goodput);
    }
  }
  std::printf("\n-- Goodput retention (faulted / clean, gated ratios) --\n");
  for (const auto& [tag, ratio] : retention) {
    std::printf("  %-10s %.3fx\n", tag.c_str(), ratio);
    json_metric("relay.goodput_retention_" + tag + "_x", ratio);
  }
  if (!retention.empty()) {
    shape_check(retention.back().second > 0.05,
                "severe: goodput degrades gracefully (>5% retained), not to "
                "zero");
  }
}

void recovery_latency() {
  std::printf("\n-- Recovery latency: scripted reset -> next acked append --\n");
  resilience::FaultPlan plan(0xBE7A0001u);
  Upstream up(&plan);
  if (!up.server->start()) {
    shape_check(false, "recovery upstream started");
    return;
  }
  relay::RelayConfig rc;
  rc.upstream_port = up.server->port();
  rc.backoff_ms = 1;
  rc.backoff_max_ms = 20;
  rc.ack_timeout_ms = 400;
  rc.socket_faults = &plan;
  relay::RelayClient client(rc);
  if (!client.start()) {
    shape_check(false, "recovery client started");
    return;
  }
  // Reach steady state first so each trial measures reconnect machinery,
  // not first-connect setup.
  client.submit(make_batch(0));
  const bool warm = client.drain_for(5000);
  shape_check(warm, "recovery: steady state reached before the kill loop");

  constexpr int kTrials = 24;
  std::vector<double> recovery_ms;
  bool all_converged = true;
  for (int t = 0; t < kTrials; ++t) {
    // Script a reset on the very next socket op (the append send below),
    // then time fault -> reconnect -> hello -> resend -> ack.
    resilience::FaultSpec spec;
    spec.sock_reset_at = plan.socket_ops() + 1;
    plan.set_spec(spec);
    const auto t0 = std::chrono::steady_clock::now();
    client.submit(make_batch(t + 1));
    const bool ok = client.drain_for(5000);
    all_converged = all_converged && ok;
    recovery_ms.push_back(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count());
    plan.set_spec({});
  }
  std::sort(recovery_ms.begin(), recovery_ms.end());
  const double p50 = recovery_ms[recovery_ms.size() / 2];
  const double worst = recovery_ms.back();
  std::printf("  trials=%d  p50=%.2f ms  max=%.2f ms\n", kTrials, p50, worst);
  json_metric("relay.recovery_p50_ms", p50);
  json_metric("relay.recovery_max_ms", worst);
  shape_check(all_converged, "recovery: every kill trial re-acked");
  shape_check(p50 < 500.0, "recovery: median reset->re-ack under 500 ms");
  shape_check(client.stats().rejected_batches == 0,
              "recovery: zero rejected batches across all kills");
  const auto reconnects = client.stats().connects;
  client.stop();
  shape_check(reconnects >= static_cast<std::uint64_t>(kTrials),
              "recovery: every scripted reset actually forced a reconnect");
  shape_check(up.stored_samples() ==
                  static_cast<std::size_t>(kTrials + 1) * kSamplesPerBatch,
              "recovery: upstream store is sample-exact after all kills");
}

}  // namespace
}  // namespace hpcmon::bench

int main(int argc, char** argv) {
  using namespace hpcmon::bench;
  json_init(argc, argv);
  header("Ablation: relay resilience — goodput & recovery vs fault rate",
         "Secs. III-IV (transport resilience); DESIGN.md \"Relay tier\"");
  std::printf("workload: %d batches x %zu samples, one append in flight, "
              "composed faults on one monotone socket-op stream\n",
              kBatches, kSamplesPerBatch);
  goodput_sweep();
  recovery_latency();
  return finish();
}
