// Ablation: tiered retention — a year of telemetry in bounded disk.
//
// The paper's Table I wants raw data kept briefly and coarser resolutions
// kept for months, and Sec. IV-C's year-scale dashboards need those coarse
// tiers to stay queryable. This bench runs the same year-long workload
// (16 series, 10-minute cadence, 365 simulated days, one compaction pass
// per day) through two retention policies:
//   tiered — the resolution ladder (raw 2d -> 1h 14d -> 6h 90d -> 1d 400d,
//            per-priority retention: critical outlives standard outlives
//            bulk at every rung), and
//   naive  — keep every raw sample for the whole year.
// The claims to check: the ladder bounds disk (a large factor below naive,
// and near-flat growth once the ladder reaches steady state), year-scale
// dashboard windows stay answerable (coverage + latency measured on the
// merged TierSpanView), and per-class retention actually triages (critical
// history spans the year, bulk dies young).
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "bench_common.hpp"
#include "core/rng.hpp"
#include "store/compactor.hpp"
#include "store/tier.hpp"
#include "store/tsdb.hpp"

namespace hpcmon::bench {
namespace {

using core::kHour;
using core::kMinute;
using core::SeriesId;
using core::TimePoint;
using core::TimeRange;
using std::chrono::steady_clock;

constexpr core::Duration kDay = 24 * kHour;
constexpr core::Duration kCadence = 10 * kMinute;
constexpr int kDays = 365;
constexpr int kStepsPerDay = 144;  // 24h / 10min
constexpr std::uint32_t kNumSeries = 16;

// 4 critical, 8 standard, 4 bulk — the triage mix a real site runs.
core::Priority priority_of(SeriesId id) {
  const auto s = core::raw(id);
  if (s < 4) return core::Priority::kCritical;
  if (s < 12) return core::Priority::kStandard;
  return core::Priority::kBulk;
}

store::TierPolicy tiered_policy() {
  using store::Agg;
  using store::TierSpec;
  store::TierPolicy p;
  TierSpec raw;
  raw.resolution = 0;
  raw.agg = Agg::kLast;
  raw.keep = {2 * kDay, 2 * kDay, 1 * kDay};
  TierSpec hourly;
  hourly.resolution = kHour;
  hourly.agg = Agg::kMean;
  hourly.keep = {14 * kDay, 7 * kDay, 2 * kDay};
  TierSpec sixhour;
  sixhour.resolution = 6 * kHour;
  sixhour.agg = Agg::kMean;
  sixhour.keep = {90 * kDay, 30 * kDay, 7 * kDay};
  TierSpec daily;
  daily.resolution = kDay;
  daily.agg = Agg::kMean;
  daily.keep = {400 * kDay, 400 * kDay, 30 * kDay};
  p.tiers = {raw, hourly, sixhour, daily};
  return p;
}

store::TierPolicy naive_policy() {
  store::TierPolicy p;
  store::TierSpec raw;
  raw.resolution = 0;
  raw.agg = store::Agg::kLast;
  raw.keep = {400 * kDay, 400 * kDay, 400 * kDay};
  p.tiers = {raw};
  return p;
}

double ms_since(steady_clock::time_point t0) {
  return std::chrono::duration<double>(steady_clock::now() - t0).count() *
         1e3;
}

struct RunResult {
  std::uint64_t disk_end = 0;
  std::size_t files = 0;
  double q6h_ms = 0;
  double q30d_ms = 0;
  double q365d_ms = 0;
  double crit_coverage_days = 0;
  double bulk_coverage_days = 0;
  std::size_t year_dashboard_points = 0;
};

RunResult run_year(const store::TierPolicy& policy, const std::string& dir) {
  std::filesystem::remove_all(dir);
  store::TimeSeriesStore hot(kStepsPerDay);  // one chunk per series-day
  store::TierStore::Options o;
  o.dir = dir;
  o.policy = policy;
  store::TierStore tiers(std::move(o));
  if (!tiers.open().is_ok()) std::abort();
  store::CompactorOptions co;
  co.hot_window = kDay;
  co.priority_of = priority_of;
  store::Compactor compactor({&hot}, &tiers, std::move(co));

  core::Rng rng(2024);
  std::vector<double> walk(kNumSeries, 50.0);
  for (int day = 0; day < kDays; ++day) {
    for (int step = 0; step < kStepsPerDay; ++step) {
      const TimePoint t = day * kDay + step * kCadence;
      for (std::uint32_t s = 0; s < kNumSeries; ++s) {
        walk[s] += rng.uniform(-1.0, 1.0);
        hot.append(SeriesId{s}, t, walk[s]);
      }
    }
    // The supervised daily pass: age yesterday out of the hot store and
    // march everything else down the ladder.
    if (!compactor.run_pass((day + 1) * kDay + kHour).is_ok()) std::abort();
  }

  RunResult r;
  r.disk_end = tiers.disk_bytes();
  r.files = tiers.file_count();

  const TimePoint now = kDays * kDay;
  const store::TierSpanView<store::TimeSeriesStore> span(&tiers, &hot);
  const SeriesId crit{0};
  const SeriesId bulk{kNumSeries - 1};

  // Dashboard windows: the operator's 6-hour live view, the 30-day
  // capacity view, the year-scale trend view. Median-free simple mean over
  // repeated queries; each query walks the merged span.
  auto time_queries = [&](core::Duration window, int reps) {
    const TimeRange range{now - window, now};
    const auto t0 = steady_clock::now();
    std::size_t sink = 0;
    for (int i = 0; i < reps; ++i) {
      sink += span.query_range(crit, range).size();
      span.aggregate(crit, range, store::Agg::kMean);
    }
    if (sink == 0) std::abort();  // a dashboard window returned nothing
    return ms_since(t0) / reps;
  };
  r.q6h_ms = time_queries(6 * kHour, 50);
  r.q30d_ms = time_queries(30 * kDay, 20);
  r.q365d_ms = time_queries(365 * kDay, 10);

  const TimeRange year{0, now + kHour};
  const auto crit_pts = span.query_range(crit, year);
  const auto bulk_pts = span.query_range(bulk, year);
  if (!crit_pts.empty()) {
    r.crit_coverage_days =
        double(crit_pts.back().time - crit_pts.front().time) / double(kDay);
  }
  if (!bulk_pts.empty()) {
    r.bulk_coverage_days =
        double(bulk_pts.back().time - bulk_pts.front().time) / double(kDay);
  }
  r.year_dashboard_points =
      span.downsample(crit, year, kDay, store::Agg::kMean).size();
  return r;
}

/// Disk bytes at day 200 measured by a separate shorter run (same seed and
/// workload prefix — the simulation is deterministic), so the growth shape
/// of the full run can be checked without instrumenting the year loop.
std::uint64_t disk_at_day(const store::TierPolicy& policy,
                          const std::string& dir, int days) {
  std::filesystem::remove_all(dir);
  store::TimeSeriesStore hot(kStepsPerDay);
  store::TierStore::Options o;
  o.dir = dir;
  o.policy = policy;
  store::TierStore tiers(std::move(o));
  if (!tiers.open().is_ok()) std::abort();
  store::CompactorOptions co;
  co.hot_window = kDay;
  co.priority_of = priority_of;
  store::Compactor compactor({&hot}, &tiers, std::move(co));
  core::Rng rng(2024);
  std::vector<double> walk(kNumSeries, 50.0);
  for (int day = 0; day < days; ++day) {
    for (int step = 0; step < kStepsPerDay; ++step) {
      const TimePoint t = day * kDay + step * kCadence;
      for (std::uint32_t s = 0; s < kNumSeries; ++s) {
        walk[s] += rng.uniform(-1.0, 1.0);
        hot.append(SeriesId{s}, t, walk[s]);
      }
    }
    if (!compactor.run_pass((day + 1) * kDay + kHour).is_ok()) std::abort();
  }
  return tiers.disk_bytes();
}

}  // namespace
}  // namespace hpcmon::bench

int main(int argc, char** argv) {
  using namespace hpcmon::bench;
  json_init(argc, argv);
  header("Tiered retention: a year of telemetry in bounded disk",
         "Table I hierarchical retention + Sec. IV-C year-scale dashboards");

  std::printf(
      "\nworkload: %u series (4 critical / 8 standard / 4 bulk), "
      "10-min cadence, %d days, daily compaction\n",
      kNumSeries, kDays);

  const auto tiered = run_year(tiered_policy(), "/tmp/hpcmon_bench_tiered");
  const auto naive = run_year(naive_policy(), "/tmp/hpcmon_bench_naive");
  const auto tiered_200 =
      disk_at_day(tiered_policy(), "/tmp/hpcmon_bench_tiered200", 200);
  const auto naive_200 =
      disk_at_day(naive_policy(), "/tmp/hpcmon_bench_naive200", 200);

  const double ratio = double(naive.disk_end) / double(tiered.disk_end);
  // Steady-state growth slope (bytes/day over days 200-365): the finite
  // rungs have all turned over by day 200, so what remains is the 1d tier's
  // by-design year-scale accumulation — it must be a small fraction of
  // naive raw growth.
  const double tiered_slope =
      double(tiered.disk_end - tiered_200) / (365.0 - 200.0);
  const double naive_slope =
      double(naive.disk_end - naive_200) / (365.0 - 200.0);

  std::printf("\n%-34s %14s %14s\n", "", "tiered", "naive-raw");
  std::printf("%-34s %14llu %14llu\n", "disk bytes after 365d",
              static_cast<unsigned long long>(tiered.disk_end),
              static_cast<unsigned long long>(naive.disk_end));
  std::printf("%-34s %14zu %14zu\n", "tier files", tiered.files,
              naive.files);
  std::printf("%-34s %14.3f %14.3f\n", "6h dashboard window (ms)",
              tiered.q6h_ms, naive.q6h_ms);
  std::printf("%-34s %14.3f %14.3f\n", "30d dashboard window (ms)",
              tiered.q30d_ms, naive.q30d_ms);
  std::printf("%-34s %14.3f %14.3f\n", "365d dashboard window (ms)",
              tiered.q365d_ms, naive.q365d_ms);
  std::printf("%-34s %14.1f %14.1f\n", "critical history coverage (days)",
              tiered.crit_coverage_days, naive.crit_coverage_days);
  std::printf("%-34s %14.1f %14.1f\n", "bulk history coverage (days)",
              tiered.bulk_coverage_days, naive.bulk_coverage_days);
  std::printf("%-34s %14zu %14zu\n", "1d-bucket points in year view",
              tiered.year_dashboard_points, naive.year_dashboard_points);
  std::printf("\nsteady-state growth (days 200-365): tiered %.0f B/day, "
              "naive %.0f B/day\n",
              tiered_slope, naive_slope);

  shape_check(ratio >= 4.0,
              hpcmon::core::strformat("ladder bounds disk: naive raw uses %.1fx the "
                              "bytes of tiered retention (>= 4x)",
                              ratio));
  shape_check(tiered_slope <= naive_slope * 0.25,
              hpcmon::core::strformat("steady-state growth is bounded: %.0f B/day "
                              "vs naive %.0f B/day (<= 25%%)",
                              tiered_slope, naive_slope));
  shape_check(tiered.crit_coverage_days >= 360.0,
              hpcmon::core::strformat("critical history spans the year under the "
                              "ladder (%.1f days)",
                              tiered.crit_coverage_days));
  shape_check(tiered.bulk_coverage_days <= 45.0,
              hpcmon::core::strformat("bulk history dies young per Table I triage "
                              "(%.1f days)",
                              tiered.bulk_coverage_days));
  shape_check(tiered.year_dashboard_points >= 300,
              hpcmon::core::strformat("year-scale dashboard stays answerable: %zu "
                              "1d-bucket points",
                              tiered.year_dashboard_points));
  shape_check(tiered.q365d_ms <= naive.q365d_ms * 1.5,
              hpcmon::core::strformat("year window over the ladder (%.2fms) is not "
                              "slower than scanning raw (%.2fms x1.5)",
                              tiered.q365d_ms, naive.q365d_ms));

  json_metric("tiered.disk_bytes_365d", double(tiered.disk_end));
  json_metric("tiered.disk_bytes_200d", double(tiered_200));
  json_metric("tiered.files", double(tiered.files));
  json_metric("tiered.query_6h_ms", tiered.q6h_ms);
  json_metric("tiered.query_30d_ms", tiered.q30d_ms);
  json_metric("tiered.query_365d_ms", tiered.q365d_ms);
  json_metric("tiered.crit_coverage_days", tiered.crit_coverage_days);
  json_metric("tiered.bulk_coverage_days", tiered.bulk_coverage_days);
  json_metric("naive.disk_bytes_365d", double(naive.disk_end));
  json_metric("naive.query_365d_ms", naive.q365d_ms);
  json_metric("disk_ratio_naive_over_tiered", ratio);
  return finish();
}
