// Ablation: sharded ingest scaling — hpcmon::ingest vs the single-mutex
// TimeSeriesStore.
//
// The paper's scale numbers (Sec. II: Trinity ~19k nodes, target "1 Hz or
// faster full-system collection") make the ingest path the first bottleneck:
// one global store mutex serializes every producer. This bench quantifies
// what shard partitioning buys.
//
// Method. Container CI for this repo commonly pins the process to a single
// hardware thread (std::thread::hardware_concurrency() == 1), where a
// wall-clock "8 producer threads" run measures the scheduler, not the
// design. So, consistent with the repo's simulation-substitution
// methodology, the primary numbers come from a CALIBRATED MAKESPAN MODEL:
//   * every per-shard append cost and per-producer submit cost is REAL work,
//     measured with steady_clock on this machine;
//   * the modeled concurrent makespan is the classic bottleneck bound
//       makespan(S, P) = max( max_shard busy(S) , producer_work / P )
//     i.e. the slowest shard worker or the partitioned producer pool,
//     whichever saturates first. A single-mutex store is the S = 1 column:
//     all appends serialize behind one lock regardless of P.
// A real-threaded pipeline run is also executed and printed as a reference
// (it validates correctness and losslessness; its wall-clock speedup is only
// meaningful on multi-core hosts).
#include <array>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/rng.hpp"
#include "ingest/pipeline.hpp"
#include "ingest/sharded_store.hpp"

namespace hpcmon::bench {
namespace {

using core::Sample;
using core::SampleBatch;
using core::SeriesId;
using std::chrono::steady_clock;

constexpr std::uint32_t kSeries = 256;
constexpr int kSweeps = 1500;
constexpr std::size_t kChunkPoints = 512;

double seconds_since(steady_clock::time_point t0) {
  return std::chrono::duration<double>(steady_clock::now() - t0).count();
}

// Deterministic sweep workload: every sweep carries one sample per series.
std::vector<SampleBatch> make_sweeps() {
  std::vector<SampleBatch> sweeps;
  core::Rng rng(42);
  sweeps.reserve(kSweeps);
  for (int p = 0; p < kSweeps; ++p) {
    SampleBatch b;
    b.sweep_time = (p + 1) * core::kSecond;
    b.samples.reserve(kSeries);
    for (std::uint32_t s = 0; s < kSeries; ++s) {
      b.samples.push_back(
          {SeriesId{s}, b.sweep_time, 40.0 + rng.uniform(0.0, 20.0)});
    }
    sweeps.push_back(std::move(b));
  }
  return sweeps;
}

// Real per-shard append busy time: route the whole workload through a
// ShardedTimeSeriesStore's hash and time each shard's appends separately.
// Returns per-shard busy seconds (the S = 1 case is the single-mutex total).
std::vector<double> measure_shard_busy(const std::vector<SampleBatch>& sweeps,
                                       std::size_t shards) {
  ingest::ShardedTimeSeriesStore store(shards, kChunkPoints);
  // Partition in sweep order so per-series timestamps stay increasing.
  std::vector<std::vector<Sample>> streams(store.shard_count());
  for (const auto& b : sweeps) {
    for (const auto& s : b.samples) {
      streams[store.shard_of(s.series)].push_back(s);
    }
  }
  std::vector<double> busy(store.shard_count(), 0.0);
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const auto t0 = steady_clock::now();
    store.shard(i).append_batch(streams[i]);
    busy[i] = seconds_since(t0);
  }
  return busy;
}

// Real producer-side cost (partition + bounded-queue push), measured by
// submitting every sweep into a pipeline whose workers are not running and
// whose queues are large enough to never push back.
double measure_producer_work(const std::vector<SampleBatch>& sweeps) {
  ingest::ShardedTimeSeriesStore store(4, kChunkPoints);
  ingest::IngestPipeline pipe(
      store, {.queue_capacity = sweeps.size() + 1,
              .policy = ingest::OverloadPolicy::kReject});
  const auto t0 = steady_clock::now();
  for (const auto& b : sweeps) pipe.submit(b);
  return seconds_since(t0);
}

struct Modeled {
  double makespan_s = 0.0;
  double msamples_per_s = 0.0;
};

Modeled model(const std::vector<double>& busy, double producer_work,
              int producers, std::size_t total_samples) {
  double worst_shard = 0.0;
  for (double b : busy) worst_shard = std::max(worst_shard, b);
  Modeled m;
  m.makespan_s = std::max(worst_shard, producer_work / producers);
  m.msamples_per_s = total_samples / m.makespan_s / 1e6;
  return m;
}

}  // namespace
}  // namespace hpcmon::bench

int main(int argc, char** argv) {
  hpcmon::bench::json_init(argc, argv);
  using namespace hpcmon;
  using namespace hpcmon::bench;

  header("Ablation: sharded ingest scaling (hpcmon::ingest)",
         "Sec. II scale targets (full-system 1 Hz collection) + Table I "
         "transport-impact accounting");

  const auto sweeps = make_sweeps();
  const std::size_t total = static_cast<std::size_t>(kSweeps) * kSeries;
  std::printf(
      "\nWorkload: %d sweeps x %u series = %zu samples, chunk_points=%zu\n",
      kSweeps, kSeries, total, kChunkPoints);
  std::printf("hardware_concurrency=%u%s\n",
              std::thread::hardware_concurrency(),
              std::thread::hardware_concurrency() <= 2
                  ? "  (modeled makespan is the primary number; wall-clock "
                    "threading cannot speed up on this host)"
                  : "");

  // -- Calibration: real append + producer costs -----------------------------
  const double producer_work = measure_producer_work(sweeps);
  std::printf("\nCalibrated costs (real work, steady_clock):\n");
  std::printf("  producer partition+push total: %8.1f ms\n",
              producer_work * 1e3);
  const std::size_t shard_counts[] = {1, 2, 4, 8};
  std::vector<std::vector<double>> busy_by_cfg;
  for (const auto s : shard_counts) {
    auto busy = measure_shard_busy(sweeps, s);
    double sum = 0.0;
    double worst = 0.0;
    for (double b : busy) {
      sum += b;
      worst = std::max(worst, b);
    }
    std::printf("  %zu-shard append busy: total %8.1f ms, worst shard %8.1f ms\n",
                s, sum * 1e3, worst * 1e3);
    busy_by_cfg.push_back(std::move(busy));
  }

  // -- Modeled throughput matrix ---------------------------------------------
  std::printf("\nModeled ingest throughput, Msamples/s "
              "(makespan = max(worst shard, producer_work/P)):\n");
  std::printf("  %-10s", "shards\\P");
  const int producer_counts[] = {1, 2, 4, 8};
  for (int p : producer_counts) std::printf("  P=%-8d", p);
  std::printf("\n");
  double single_mutex_p8 = 0.0;
  double four_shard_p8 = 0.0;
  double eight_shard_p8 = 0.0;
  for (std::size_t i = 0; i < busy_by_cfg.size(); ++i) {
    std::printf("  %-10zu", shard_counts[i]);
    for (int p : producer_counts) {
      const auto m = model(busy_by_cfg[i], producer_work, p, total);
      std::printf("  %-10.2f", m.msamples_per_s);
      if (p == 8) {
        if (shard_counts[i] == 1) single_mutex_p8 = m.msamples_per_s;
        if (shard_counts[i] == 4) four_shard_p8 = m.msamples_per_s;
        if (shard_counts[i] == 8) eight_shard_p8 = m.msamples_per_s;
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\n8 producers: 1 shard (single mutex) %.2f -> 4 shards %.2f "
      "(%.2fx) -> 8 shards %.2f (%.2fx)\n",
      single_mutex_p8, four_shard_p8, four_shard_p8 / single_mutex_p8,
      eight_shard_p8, eight_shard_p8 / single_mutex_p8);

  json_metric("ingest.single_mutex_p8_msps", single_mutex_p8);
  json_metric("ingest.four_shard_p8_msps", four_shard_p8);
  json_metric("ingest.eight_shard_p8_msps", eight_shard_p8);
  // Hardware-relative ratios for the CI regression gate (absolute Msps vary
  // by runner; ratios of same-run measurements do not).
  json_metric("ingest.four_shard_scaling_x", four_shard_p8 / single_mutex_p8);
  json_metric("ingest.eight_shard_scaling_x",
              eight_shard_p8 / single_mutex_p8);
  shape_check(four_shard_p8 >= 3.0 * single_mutex_p8,
              core::strformat(
                  "4-shard store @ 8 producers sustains >= 3x the "
                  "single-mutex store's modeled ingest throughput (%.2fx)",
                  four_shard_p8 / single_mutex_p8));
  shape_check(eight_shard_p8 >= four_shard_p8 * 0.9,
              "adding shards past the producer bound never hurts (8-shard "
              ">= ~4-shard)");

  // -- Samples/sec/core by shard count and priority class --------------------
  // Per-core throughput from the same real busy-time measurements: how many
  // samples one core's worth of shard-worker busy time encodes. Classes are
  // assigned like the stack's default policy (a sparse critical set, a bulk
  // tail, standard in between); each series has exactly one class, so
  // per-class streams keep per-series timestamps increasing.
  {
    const auto class_of = [](std::uint32_t s) {
      if (s % 16 == 0) return core::Priority::kCritical;
      if (s % 4 == 0) return core::Priority::kBulk;
      return core::Priority::kStandard;
    };
    const char* class_name[core::kPriorityClasses] = {"critical", "standard",
                                                      "bulk"};
    std::printf("\nEncode throughput per core, Ksamples/s/core "
                "(real append busy time, by class):\n");
    std::printf("  %-10s", "shards");
    for (const auto* n : class_name) std::printf("  %-10s", n);
    std::printf("  %-10s\n", "all");
    double s4_all_sps_core = 0.0;
    for (const auto s : shard_counts) {
      ingest::ShardedTimeSeriesStore store(s, kChunkPoints);
      // Partition per (shard, class) in sweep order.
      std::vector<std::array<std::vector<Sample>, core::kPriorityClasses>>
          streams(store.shard_count());
      std::array<std::size_t, core::kPriorityClasses> cls_samples{};
      for (const auto& b : sweeps) {
        for (const auto& smp : b.samples) {
          const auto cls = static_cast<std::size_t>(class_of(
              core::raw(smp.series)));
          streams[store.shard_of(smp.series)][cls].push_back(smp);
          ++cls_samples[cls];
        }
      }
      std::array<double, core::kPriorityClasses> cls_busy{};
      for (std::size_t i = 0; i < streams.size(); ++i) {
        for (std::size_t c = 0; c < core::kPriorityClasses; ++c) {
          if (streams[i][c].empty()) continue;
          const auto t0 = steady_clock::now();
          store.shard(i).append_batch(streams[i][c]);
          cls_busy[c] += seconds_since(t0);
        }
      }
      double all_busy = 0.0;
      std::printf("  %-10zu", s);
      for (std::size_t c = 0; c < core::kPriorityClasses; ++c) {
        all_busy += cls_busy[c];
        const double sps = cls_samples[c] / cls_busy[c];
        std::printf("  %-10.0f", sps / 1e3);
        json_metric(core::strformat("ingest.sps_core_s%zu_%s", s,
                                    class_name[c]),
                    sps);
      }
      const double all_sps = total / all_busy;
      std::printf("  %-10.0f\n", all_sps / 1e3);
      json_metric(core::strformat("ingest.sps_core_s%zu_all", s), all_sps);
      if (s == 4) s4_all_sps_core = all_sps;
    }
    shape_check(s4_all_sps_core >= 1e6,
                core::strformat("batched ingest encodes >= 1M samples/s per "
                                "core at 4 shards (%.2fM)",
                                s4_all_sps_core / 1e6));
  }

  // -- append_run: one lock per series-run vs one lock per sample ------------
  {
    // Series-major runs (the replay/backfill shape): each series' 1500
    // samples arrive as one time-ordered run.
    std::vector<std::vector<Sample>> runs(kSeries);
    for (std::uint32_t s = 0; s < kSeries; ++s) runs[s].reserve(kSweeps);
    for (const auto& b : sweeps) {
      for (const auto& smp : b.samples) {
        runs[core::raw(smp.series)].push_back(smp);
      }
    }
    store::TimeSeriesStore per_sample(kChunkPoints);
    auto t0 = steady_clock::now();
    std::size_t acc_one = 0;
    for (std::uint32_t s = 0; s < kSeries; ++s) {
      for (const auto& smp : runs[s]) {
        acc_one += per_sample.append(smp.series, smp.time, smp.value);
      }
    }
    const double t_one = seconds_since(t0);
    store::TimeSeriesStore per_run(kChunkPoints);
    t0 = steady_clock::now();
    std::size_t acc_run = 0;
    for (std::uint32_t s = 0; s < kSeries; ++s) {
      acc_run += per_run.append_run(SeriesId{s}, runs[s]);
    }
    const double t_run = seconds_since(t0);
    const double run_x = t_one / t_run;
    std::printf("\nappend_run (%u series x %d samples): per-sample %6.1f ms, "
                "per-run %6.1f ms (%.2fx), accepted %zu/%zu\n",
                kSeries, kSweeps, t_one * 1e3, t_run * 1e3, run_x, acc_run,
                acc_one);
    json_metric("ingest.append_run_speedup_x", run_x);
    shape_check(acc_run == acc_one && acc_run == total,
                "append_run accepts exactly the per-sample append set");
    shape_check(run_x >= 1.2,
                core::strformat("one stripe-lock per run beats one per sample "
                                "(%.2fx)",
                                run_x));
  }

  // -- Real-threaded reference run -------------------------------------------
  {
    ingest::ShardedTimeSeriesStore store(4, kChunkPoints);
    ingest::IngestPipeline pipe(store, {.queue_capacity = 64,
                                        .policy =
                                            ingest::OverloadPolicy::kBlock});
    pipe.start();
    const auto t0 = steady_clock::now();
    std::vector<std::thread> producers;
    for (std::uint32_t p = 0; p < 8; ++p) {
      producers.emplace_back([&, p] {
        for (const auto& sweep : sweeps) {
          SampleBatch mine;
          mine.sweep_time = sweep.sweep_time;
          for (const auto& s : sweep.samples) {
            if (core::raw(s.series) % 8 == p) mine.samples.push_back(s);
          }
          pipe.submit(mine);
        }
      });
    }
    for (auto& t : producers) t.join();
    pipe.drain();
    const double wall = seconds_since(t0);
    const auto m = pipe.metrics().snapshot();
    std::printf(
        "\nReference (real threads, 8 producers, 4 shards, kBlock): "
        "%.1f ms wall, %.2f Msamples/s\n  accepted=%llu appends=%llu "
        "mean_batch=%.1f blocked=%llu\n",
        wall * 1e3, total / wall / 1e6,
        static_cast<unsigned long long>(m.accepted_samples),
        static_cast<unsigned long long>(m.appends), m.mean_batch_samples(),
        static_cast<unsigned long long>(m.blocked_pushes));
    shape_check(m.accepted_samples == total,
                "threaded kBlock run is lossless: every sample accepted");
    shape_check(m.dropped_samples == 0 && m.rejected_samples == 0,
                "threaded kBlock run drops/rejects nothing");

    // Differential: the pipeline's sharded store answers queries exactly
    // like a single store fed the same sweeps synchronously.
    store::TimeSeriesStore reference(kChunkPoints);
    for (const auto& b : sweeps) reference.append_batch(b.samples);
    bool identical = true;
    for (std::uint32_t s = 0; s < kSeries && identical; ++s) {
      identical = reference.query_range(SeriesId{s}, {0, core::kDay}) ==
                  store.query_range(SeriesId{s}, {0, core::kDay});
    }
    shape_check(identical,
                "sharded+threaded ingest is query-identical to the "
                "single-store synchronous path (all 256 series)");
  }

  // -- Deterministic overload accounting -------------------------------------
  // Workers intentionally not started: queue occupancy is then static, so
  // every policy decision is exactly predictable and the counters must match
  // to the unit.
  {
    ingest::ShardedTimeSeriesStore store(1, kChunkPoints);
    ingest::IngestPipeline pipe(store, {.queue_capacity = 4,
                                        .policy =
                                            ingest::OverloadPolicy::kReject});
    for (int k = 0; k < 9; ++k) {
      SampleBatch b;
      b.sweep_time = (k + 1) * core::kSecond;
      b.samples.push_back({SeriesId{0}, b.sweep_time, 1.0});
      pipe.submit(b);
    }
    const auto m = pipe.metrics().snapshot();
    shape_check(m.enqueued_batches == 4 && m.rejected_batches == 5 &&
                    m.rejected_samples == 5,
                "kReject with capacity 4 and 9 submits rejects exactly 5 "
                "(counters exact)");
  }
  {
    ingest::ShardedTimeSeriesStore store(1, kChunkPoints);
    ingest::IngestPipeline pipe(
        store, {.queue_capacity = 4,
                .policy = ingest::OverloadPolicy::kDropOldest});
    for (int k = 0; k < 9; ++k) {
      SampleBatch b;
      b.sweep_time = (k + 1) * core::kSecond;
      b.samples.push_back({SeriesId{0}, b.sweep_time, 1.0});
      pipe.submit(b);
    }
    const auto m = pipe.metrics().snapshot();
    shape_check(m.enqueued_batches == 9 && m.dropped_batches == 5 &&
                    m.dropped_samples == 5,
                "kDropOldest with capacity 4 and 9 submits drops exactly the "
                "5 oldest (counters exact)");
  }

  return finish();
}
