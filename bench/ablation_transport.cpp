// Ablation: binary event transport vs text translation (Sec. IV-A).
//
// The paper's ERD case: vendor telemetry moves in binary, operations staff
// get a lossy text translation, and tools that want full fidelity must
// decode the binary themselves. We measure encode/decode throughput of the
// documented binary codec against the syslog-style text path, verify the
// binary path is lossless while the text path drops fields, and measure
// router fan-out cost.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/rng.hpp"
#include "core/strings.hpp"
#include "transport/codec.hpp"
#include "transport/event_router.hpp"

namespace hpcmon::bench {
namespace {

using core::LogEvent;

core::MetricRegistry& registry() {
  static core::MetricRegistry reg;
  static const bool initialized = [] {
    for (int i = 0; i < 64; ++i) {
      reg.register_component({core::strformat("c0-0c0s%dn%d", i / 4, i % 4),
                              core::ComponentKind::kNode, core::kNoComponent});
    }
    return true;
  }();
  (void)initialized;
  return reg;
}

std::vector<LogEvent> make_events(int n) {
  std::vector<LogEvent> events;
  core::Rng rng(7);
  static const char* kMessages[] = {
      "HSN link CRC retry count 3",
      "GPU double bit error count 1",
      "lustre: connection to MDS lost; mount inactive",
      "systemd: session opened for user operator",
      "MDS request queue saturated: 93%",
  };
  for (int i = 0; i < n; ++i) {
    LogEvent e;
    e.time = i * core::kSecond;
    e.local_time = e.time + rng.uniform_int(-5000, 5000);
    e.component = core::ComponentId{
        static_cast<std::uint32_t>(rng.uniform_int(0, 63))};
    e.facility = static_cast<core::LogFacility>(rng.uniform_int(0, 7));
    e.severity = static_cast<core::Severity>(rng.uniform_int(0, 7));
    e.job = core::JobId{static_cast<std::uint64_t>(rng.uniform_int(1, 500))};
    e.message = kMessages[rng.uniform_int(0, 4)];
    events.push_back(std::move(e));
  }
  return events;
}

const std::vector<LogEvent>& events() {
  static const auto evs = make_events(2000);
  return evs;
}

void BM_Binary_EncodeDecode(benchmark::State& state) {
  for (auto _ : state) {
    const auto frame = transport::encode_logs(events());
    auto decoded = transport::decode_logs(frame);
    benchmark::DoNotOptimize(decoded.value().size());
  }
  state.SetItemsProcessed(state.iterations() * events().size());
}
BENCHMARK(BM_Binary_EncodeDecode);

void BM_Text_FormatParse(benchmark::State& state) {
  for (auto _ : state) {
    std::size_t parsed = 0;
    for (const auto& e : events()) {
      const auto line = transport::format_text(e, registry());
      if (transport::parse_text(line, registry())) ++parsed;
    }
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations() * events().size());
}
BENCHMARK(BM_Text_FormatParse);

void BM_Router_FanOut4(benchmark::State& state) {
  transport::EventRouter router;
  std::size_t delivered = 0;
  for (int i = 0; i < 4; ++i) {
    router.subscribe(transport::FrameType::kLogs,
                     [&delivered](const transport::Frame&) { ++delivered; });
  }
  const auto frame = transport::encode_logs(events());
  for (auto _ : state) {
    router.publish(frame);
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations() * events().size());
}
BENCHMARK(BM_Router_FanOut4);

int summary() {
  std::printf("\n---- transport ablation summary (Sec. IV-A) ----\n");
  // Fidelity comparison.
  const auto& evs = events();
  const auto frame = transport::encode_logs(evs);
  const auto binary_back = transport::decode_logs(frame);
  bool binary_lossless = binary_back.is_ok() && binary_back.value() == evs;

  std::size_t text_job_kept = 0;
  std::size_t text_local_kept = 0;
  std::size_t text_parsed = 0;
  std::size_t text_bytes = 0;
  for (const auto& e : evs) {
    const auto line = transport::format_text(e, registry());
    text_bytes += line.size();
    const auto back = transport::parse_text(line, registry());
    if (!back) continue;
    ++text_parsed;
    if (back->job == e.job) ++text_job_kept;
    if (back->local_time == e.local_time) ++text_local_kept;
  }
  std::printf("events:                  %zu\n", evs.size());
  std::printf("binary frame bytes:      %zu (%.1f/event)\n",
              frame.byte_size(),
              static_cast<double>(frame.byte_size()) / evs.size());
  std::printf("text stream bytes:       %zu (%.1f/event)\n", text_bytes,
              static_cast<double>(text_bytes) / evs.size());
  std::printf("binary lossless:         %s\n",
              binary_lossless ? "yes" : "NO");
  std::printf("text parse success:      %zu/%zu\n", text_parsed, evs.size());
  std::printf("text kept job id:        %zu/%zu (attribution lost)\n",
              text_job_kept, evs.size());
  std::printf("text kept local stamp:   %zu/%zu (drift diagnosis lost)\n",
              text_local_kept, evs.size());

  // Relative speed: quick self-timed comparison (the google-benchmark rows
  // above give the precise numbers).
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 50; ++i) {
    auto d = transport::decode_logs(transport::encode_logs(evs));
    benchmark::DoNotOptimize(d.value().size());
  }
  const auto t1 = std::chrono::steady_clock::now();
  std::size_t sink = 0;
  for (int i = 0; i < 50; ++i) {
    for (const auto& e : evs) {
      auto p = transport::parse_text(transport::format_text(e, registry()),
                                     registry());
      sink += p ? 1 : 0;
    }
  }
  const auto t2 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(sink);
  const double binary_s = std::chrono::duration<double>(t1 - t0).count();
  const double text_s = std::chrono::duration<double>(t2 - t1).count();
  std::printf("binary round-trip:       %.3f s\n", binary_s);
  std::printf("text round-trip:         %.3f s\n", text_s);
  std::printf("binary speedup:          %.1fx\n", text_s / binary_s);

  int failures = 0;
  auto check = [&](bool ok, const char* claim) {
    std::printf("SHAPE CHECK [%s] %s\n", ok ? "PASS" : "FAIL", claim);
    if (!ok) ++failures;
  };
  check(binary_lossless, "binary path round-trips every field losslessly");
  check(text_job_kept < evs.size() / 10,
        "text translation loses job attribution (the paper's 'less usable "
        "forms of data')");
  check(text_s / binary_s >= 3.0,
        "binary codec >=3x faster than text format+parse");
  return failures;
}

}  // namespace
}  // namespace hpcmon::bench

int main(int argc, char** argv) {
  // `--json out.json` is the repo-wide bench flag; translate it to google
  // benchmark's own JSON reporter so every ablation_* binary speaks it.
  std::vector<std::string> rewritten(argv, argv + argc);
  for (std::size_t i = 1; i < rewritten.size(); ++i) {
    if (rewritten[i] == "--json" && i + 1 < rewritten.size()) {
      rewritten[i] = "--benchmark_out=" + rewritten[i + 1];
      rewritten[i + 1] = "--benchmark_out_format=json";
    } else if (rewritten[i].rfind("--json=", 0) == 0) {
      rewritten[i] = "--benchmark_out=" + rewritten[i].substr(7);
      rewritten.insert(rewritten.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                       "--benchmark_out_format=json");
    }
  }
  std::vector<char*> args;
  for (auto& a : rewritten) args.push_back(a.data());
  int args_n = static_cast<int>(args.size());
  benchmark::Initialize(&args_n, args.data());
  benchmark::RunSpecifiedBenchmarks();
  return hpcmon::bench::summary();
}
