// Fig 5 (NCSA): per-job multi-metric timeseries with node aggregation, plot
// and raw-data (CSV) download.
//
// Paper caption: "Timeseries visualizations of multiple metrics can provide
// insights into underperforming applications. Summing and averaging over
// nodes enables condensation of high dimensional data ... NCSA enables user
// access to plots, with the ability to download the image and also the raw
// data for further investigation."
#include "bench_common.hpp"

#include "viz/dashboard.hpp"
#include "viz/query.hpp"

namespace hpcmon::bench {
namespace {

sim::ClusterParams machine() {
  sim::ClusterParams p;
  p.shape.cabinets = 2;
  p.shape.chassis_per_cabinet = 2;
  p.shape.blades_per_chassis = 8;
  p.shape.nodes_per_blade = 4;
  p.fabric_kind = sim::FabricKind::kDragonfly;
  p.tick = 5 * core::kSecond;
  p.seed = 3;
  return p;
}

}  // namespace
}  // namespace hpcmon::bench

int main() {
  using namespace hpcmon;
  using namespace hpcmon::bench;

  header("Fig 5: per-job multi-metric timeseries + CSV download",
         "Ahlgren et al. 2018, Fig. 5 (NCSA Blue Waters)");

  MonitoredCluster mc(machine(), 30 * core::kSecond);
  sim::WorkloadParams w;
  w.mean_interarrival = 90 * core::kSecond;
  w.max_nodes = 16;
  w.mix = {sim::app_compute_bound(), sim::app_network_heavy()};
  mc.cluster.start_workload(w);
  // The job under investigation: a checkpointing app with bursty phases.
  sim::JobRequest target;
  target.num_nodes = 12;
  target.nominal_runtime = 15 * core::kMinute;
  target.profile = sim::app_io_checkpoint();
  mc.cluster.submit_at(5 * core::kMinute, target);
  mc.cluster.run_for(30 * core::kMinute);

  // Locate the target job and its allocation/timeframe in the job store
  // ("per-job analysis requires storing and extraction of job allocations
  // and timeframes").
  store::JobMeta job;
  for (const auto& j : mc.jobs.jobs_overlapping({0, mc.cluster.now()})) {
    if (j.app_name == "io_checkpoint") job = j;
  }
  if (job.id == core::kNoJob) {
    shape_check(false, "target job found in job store");
    return finish();
  }
  const core::TimeRange window{job.start_time,
                               job.end_time < 0 ? mc.cluster.now()
                                                : job.end_time};
  std::vector<core::ComponentId> job_nodes;
  for (const int n : job.nodes) {
    job_nodes.push_back(mc.cluster.topology().node(n));
  }

  auto& reg = mc.cluster.registry();
  // Per-job panels: sums and means over the job's nodes only.
  viz::Dashboard dash(core::strformat(
      "job %llu (%s) on %zu nodes",
      static_cast<unsigned long long>(core::raw(job.id)),
      job.app_name.c_str(), job.nodes.size()));
  auto panel = [&](const char* title, const char* metric, store::Agg agg) {
    dash.add_panel(title, [&, title, metric, agg]() {
      viz::ChartSeries s;
      s.label = title;
      s.points = viz::aggregate_across(mc.tsdb, reg, metric, job_nodes,
                                       window, agg);
      return std::vector<viz::ChartSeries>{s};
    });
  };
  panel("sum node write MB/s", "node.write_mbps", store::Agg::kSum);
  panel("sum node read MB/s", "node.read_mbps", store::Agg::kSum);
  panel("mean node cpu util", "node.cpu_util", store::Agg::kMean);
  panel("sum node power W", "power.node_w", store::Agg::kSum);
  panel("mean injection util", "hsn.node.injection_util", store::Agg::kMean);

  std::printf("%s\n", dash.render().c_str());

  // The "download" paths: SVG image + raw CSV.
  const auto svg = dash.render_panel_svg(0);
  const auto csv = dash.panel_csv(0);
  std::printf("CSV download preview (first 5 lines):\n");
  int lines = 0;
  for (const auto line : core::split(csv, '\n')) {
    if (lines++ == 5) break;
    std::printf("  %.*s\n", static_cast<int>(line.size()), line.data());
  }
  std::printf("\n");

  // Shape checks.
  const auto writes = viz::aggregate_across(mc.tsdb, reg, "node.write_mbps",
                                            job_nodes, window, store::Agg::kSum);
  const auto cpu = viz::aggregate_across(mc.tsdb, reg, "node.cpu_util",
                                         job_nodes, window, store::Agg::kMean);
  shape_check(dash.panel_count() == 5,
              "five per-job panels rendered (multi-metric view)");
  double wmax = 0.0;
  double wmin = 1e18;
  for (const auto& p : writes) {
    wmax = std::max(wmax, p.value);
    wmin = std::min(wmin, p.value);
  }
  shape_check(!writes.empty() && wmax > 10.0 * std::max(1.0, wmin),
              "write panel shows the checkpoint bursts (bursty, not flat)");
  bool cpu_sane = !cpu.empty();
  for (const auto& p : cpu) {
    if (p.value < 0.0 || p.value > 1.0) cpu_sane = false;
  }
  shape_check(cpu_sane, "mean cpu utilization stays within [0,1]");
  shape_check(svg.find("<svg") != std::string::npos &&
                  svg.find("<polyline") != std::string::npos,
              "plot image (SVG) downloadable");
  shape_check(csv.find("time_s,") == 0 && csv.find('\n') != std::string::npos,
              "raw data (CSV) downloadable with shared time column");
  return finish();
}
