// Shared wiring for the figure-reproduction benches: a monitored cluster
// (simulator + collection + transport + stores), shape-check helpers, and
// consistent report formatting.
//
// Every bench prints (1) the workload/parameters it ran, (2) the series or
// table the paper's figure shows, (3) explicit SHAPE CHECK lines comparing
// the measured shape against the paper's qualitative claim. Absolute numbers
// are not expected to match the authors' machines (the substrate is a
// simulator); the checks encode who wins / direction / rough factor.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "collect/collection.hpp"
#include "collect/samplers.hpp"
#include "core/strings.hpp"
#include "sim/cluster.hpp"
#include "store/jobstore.hpp"
#include "store/logstore.hpp"
#include "store/tsdb.hpp"
#include "transport/codec.hpp"
#include "transport/event_router.hpp"

namespace hpcmon::bench {

/// A cluster with the full monitoring pipeline attached: synchronized
/// samplers -> EventRouter (binary frames) -> TSDB + LogStore + JobStore.
struct MonitoredCluster {
  sim::Cluster cluster;
  transport::EventRouter router;
  store::TimeSeriesStore tsdb;
  store::LogStore logs;
  store::JobStore jobs;
  collect::CollectionService collection{cluster};

  explicit MonitoredCluster(const sim::ClusterParams& params,
                            core::Duration sample_interval = core::kMinute)
      : cluster(params) {
    for (auto& sampler : collect::make_all_samplers(cluster)) {
      collection.add_sampler(std::move(sampler), sample_interval,
                             collect::router_sample_sink(router));
    }
    collection.add_log_collector(sample_interval,
                                 collect::router_log_sink(router));
    router.subscribe(transport::FrameType::kSamples,
                     [this](const transport::Frame& f) {
                       auto batch = transport::decode_samples(f);
                       if (batch.is_ok()) tsdb.append_batch(batch.value().samples);
                     });
    router.subscribe(transport::FrameType::kLogs,
                     [this](const transport::Frame& f) {
                       auto events = transport::decode_logs(f);
                       if (events.is_ok()) {
                         logs.append_batch(std::move(events).take());
                       }
                     });
    cluster.scheduler().set_on_start(
        [this](const sim::JobRecord& rec) { jobs.record_start(meta(rec)); });
    cluster.scheduler().set_on_end(
        [this](const sim::JobRecord& rec) { jobs.record_end(meta(rec)); });
  }

  static store::JobMeta meta(const sim::JobRecord& rec) {
    store::JobMeta m;
    m.id = rec.id;
    m.app_name = rec.request.profile.name;
    m.nodes = rec.nodes;
    m.submit_time = rec.submit_time;
    m.start_time = rec.start_time;
    m.end_time = rec.end_time;
    m.failed = rec.state == sim::JobState::kFailed;
    return m;
  }

  core::SeriesId series(std::string_view metric, core::ComponentId comp) {
    return cluster.registry().series(metric, comp);
  }
};

inline int g_failures = 0;
inline int g_checks = 0;
inline std::string g_json_path;
inline std::vector<std::pair<std::string, double>> g_json_metrics;

/// Parse `--json <path>` / `--json=<path>`. Call first thing in main(); every
/// bench then writes a flat metric map to <path> from finish() so CI can
/// archive the perf trajectory as BENCH_*.json artifacts.
inline void json_init(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      g_json_path = argv[i + 1];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      g_json_path = argv[i] + 7;
    }
  }
}

/// Record one numeric result for the --json metric map. Keys are flat
/// dotted identifiers ("ingest.throughput_4_shards"); last write wins is NOT
/// applied — duplicates are emitted in order, so pick unique keys.
inline void json_metric(const std::string& key, double value) {
  g_json_metrics.emplace_back(key, value);
}

/// Print a PASS/FAIL shape-check line; tracks failures for the exit code.
inline void shape_check(bool ok, const std::string& claim) {
  std::printf("SHAPE CHECK [%s] %s\n", ok ? "PASS" : "FAIL", claim.c_str());
  ++g_checks;
  if (!ok) ++g_failures;
}

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline int finish() {
  if (!g_json_path.empty()) {
    std::FILE* f = std::fopen(g_json_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("cannot open %s for writing\n", g_json_path.c_str());
      ++g_failures;
    } else {
      std::fprintf(f, "{\n");
      for (const auto& [key, value] : g_json_metrics) {
        if (std::isfinite(value)) {
          std::fprintf(f, "  \"%s\": %.17g,\n", key.c_str(), value);
        } else {
          std::fprintf(f, "  \"%s\": null,\n", key.c_str());
        }
      }
      std::fprintf(f, "  \"shape_checks_total\": %d,\n", g_checks);
      std::fprintf(f, "  \"shape_checks_failed\": %d\n}\n", g_failures);
      std::fclose(f);
      std::printf("wrote %s\n", g_json_path.c_str());
    }
  }
  if (g_failures > 0) {
    std::printf("\n%d shape check(s) FAILED\n", g_failures);
    return 1;
  }
  std::printf("\nAll shape checks passed.\n");
  return 0;
}

}  // namespace hpcmon::bench
