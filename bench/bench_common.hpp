// Shared wiring for the figure-reproduction benches: a monitored cluster
// (simulator + collection + transport + stores), shape-check helpers, and
// consistent report formatting.
//
// Every bench prints (1) the workload/parameters it ran, (2) the series or
// table the paper's figure shows, (3) explicit SHAPE CHECK lines comparing
// the measured shape against the paper's qualitative claim. Absolute numbers
// are not expected to match the authors' machines (the substrate is a
// simulator); the checks encode who wins / direction / rough factor.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "collect/collection.hpp"
#include "collect/samplers.hpp"
#include "core/strings.hpp"
#include "sim/cluster.hpp"
#include "store/jobstore.hpp"
#include "store/logstore.hpp"
#include "store/tsdb.hpp"
#include "transport/codec.hpp"
#include "transport/event_router.hpp"

namespace hpcmon::bench {

/// A cluster with the full monitoring pipeline attached: synchronized
/// samplers -> EventRouter (binary frames) -> TSDB + LogStore + JobStore.
struct MonitoredCluster {
  sim::Cluster cluster;
  transport::EventRouter router;
  store::TimeSeriesStore tsdb;
  store::LogStore logs;
  store::JobStore jobs;
  collect::CollectionService collection{cluster};

  explicit MonitoredCluster(const sim::ClusterParams& params,
                            core::Duration sample_interval = core::kMinute)
      : cluster(params) {
    for (auto& sampler : collect::make_all_samplers(cluster)) {
      collection.add_sampler(std::move(sampler), sample_interval,
                             collect::router_sample_sink(router));
    }
    collection.add_log_collector(sample_interval,
                                 collect::router_log_sink(router));
    router.subscribe(transport::FrameType::kSamples,
                     [this](const transport::Frame& f) {
                       auto batch = transport::decode_samples(f);
                       if (batch.is_ok()) tsdb.append_batch(batch.value().samples);
                     });
    router.subscribe(transport::FrameType::kLogs,
                     [this](const transport::Frame& f) {
                       auto events = transport::decode_logs(f);
                       if (events.is_ok()) {
                         logs.append_batch(std::move(events).take());
                       }
                     });
    cluster.scheduler().set_on_start(
        [this](const sim::JobRecord& rec) { jobs.record_start(meta(rec)); });
    cluster.scheduler().set_on_end(
        [this](const sim::JobRecord& rec) { jobs.record_end(meta(rec)); });
  }

  static store::JobMeta meta(const sim::JobRecord& rec) {
    store::JobMeta m;
    m.id = rec.id;
    m.app_name = rec.request.profile.name;
    m.nodes = rec.nodes;
    m.submit_time = rec.submit_time;
    m.start_time = rec.start_time;
    m.end_time = rec.end_time;
    m.failed = rec.state == sim::JobState::kFailed;
    return m;
  }

  core::SeriesId series(std::string_view metric, core::ComponentId comp) {
    return cluster.registry().series(metric, comp);
  }
};

inline int g_failures = 0;

/// Print a PASS/FAIL shape-check line; tracks failures for the exit code.
inline void shape_check(bool ok, const std::string& claim) {
  std::printf("SHAPE CHECK [%s] %s\n", ok ? "PASS" : "FAIL", claim.c_str());
  if (!ok) ++g_failures;
}

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline int finish() {
  if (g_failures > 0) {
    std::printf("\n%d shape check(s) FAILED\n", g_failures);
    return 1;
  }
  std::printf("\nAll shape checks passed.\n");
  return 0;
}

}  // namespace hpcmon::bench
