// Sec. II.8 (ALCF): trend analysis on component error rates.
//
// "ALCF currently performs trend analysis, using this data, on component
// error rates (e.g., High Speed Network (HSN) link Bit Error Rates (BER))
// ... Based on these trends, ALCF personnel can flag and diagnose unusual
// behaviors on component and subsystem levels."
//
// An aging link's BER multiplier is ramped in steps over 3 days while the
// machine runs a steady workload. The monitoring pipeline converts the
// bit-error counter into a rate, fits a trailing-window trend per link, and
// must (a) flag the aging link with a confident positive slope, (b) keep
// every healthy link unflagged, and (c) forecast the service threshold
// crossing usefully early.
#include "bench_common.hpp"

#include "analysis/streaming.hpp"
#include "analysis/trend.hpp"

namespace hpcmon::bench {
namespace {

sim::ClusterParams machine() {
  sim::ClusterParams p;
  p.shape.cabinets = 2;
  p.shape.chassis_per_cabinet = 2;
  p.shape.blades_per_chassis = 4;
  p.shape.nodes_per_blade = 4;  // 64 nodes
  p.fabric_kind = sim::FabricKind::kTorus3D;
  p.fabric.base_ber = 1e-10;  // observable baseline error process
  p.tick = 30 * core::kSecond;
  p.seed = 6;
  return p;
}

}  // namespace
}  // namespace hpcmon::bench

int main(int argc, char** argv) {
  hpcmon::bench::json_init(argc, argv);
  using namespace hpcmon;
  using namespace hpcmon::bench;

  header("Ablation: BER trend analysis flags an aging link",
         "Ahlgren et al. 2018, Sec. II.8 (ALCF Theta)");

  MonitoredCluster mc(machine(), 10 * core::kMinute);
  sim::WorkloadParams w;
  w.mean_interarrival = 90 * core::kSecond;
  w.max_nodes = 24;
  w.mix = {sim::app_network_heavy(), sim::app_compute_bound()};
  mc.cluster.start_workload(w);

  // Aging process on link 0: BER multiplier doubles every 6 hours.
  const int aging_link = 0;
  for (int step = 0; step < 12; ++step) {
    const double multiplier = std::pow(2.0, step + 1);
    mc.cluster.inject_link_ber(step * 6 * core::kHour, aging_link, multiplier,
                               6 * core::kHour);
  }
  std::printf("Running 72 simulated hours; link 0 BER doubles every 6h...\n\n");
  mc.cluster.run_for(72 * core::kHour);

  // Per-link trend over the error-rate series (errors/hour).
  auto& reg = mc.cluster.registry();
  const core::TimeRange all{0, mc.cluster.now()};
  // Exponential aging is linear in log space: trend log10(errors/h + 1).
  // Ground truth slope is log10(2)/6h ~ 0.05 decades/hour.
  int flagged = 0;
  int healthy_flagged = 0;
  analysis::TrendFit aging_fit;
  std::optional<core::TimePoint> forecast;
  double aging_final_log = 0.0;
  const double kSlopeFlag = 0.01;  // decades/hour
  for (int l = 0; l < mc.cluster.topology().num_links(); ++l) {
    const auto sid = reg.series("hsn.link.bit_errors",
                                mc.cluster.topology().link(l).component);
    analysis::RateConverter rc;
    analysis::TrendAnalyzer trend(48 * core::kHour);
    for (const auto& p : mc.tsdb.query_range(sid, all)) {
      if (auto r = rc.update(p.time, p.value)) {
        const double log_rate = std::log10(*r * 3600.0 + 1.0);
        trend.add(p.time, log_rate);
        if (l == aging_link) aging_final_log = log_rate;
      }
    }
    const auto fit = trend.fit();
    const bool flag = fit && fit->slope_per_hour > kSlopeFlag && fit->r2 > 0.6;
    if (flag) ++flagged;
    if (flag && l != aging_link) ++healthy_flagged;
    if (l == aging_link && fit) {
      aging_fit = *fit;
      // Forecast when the error rate grows another ~30x (1.5 decades).
      forecast = trend.forecast_crossing(aging_final_log + 1.5);
    }
  }

  std::printf("links analyzed:     %d\n", mc.cluster.topology().num_links());
  std::printf("links flagged:      %d (healthy flagged: %d)\n", flagged,
              healthy_flagged);
  std::printf("aging link fit:     slope %.4f decades/hour (truth ~0.050), "
              "r2 %.2f\n",
              aging_fit.slope_per_hour, aging_fit.r2);
  if (forecast) {
    std::printf("forecast +1.5-decade crossing: %s (now: %s)\n",
                core::format_time(*forecast).c_str(),
                core::format_time(mc.cluster.now()).c_str());
  }
  std::printf("\n");

  json_metric("trend.slope_per_hour", aging_fit.slope_per_hour);
  json_metric("trend.fit_r2", aging_fit.r2);
  shape_check(flagged >= 1 && healthy_flagged == 0,
              "exactly the aging link is flagged by the trend analysis");
  shape_check(aging_fit.slope_per_hour > 0.02 &&
                  aging_fit.slope_per_hour < 0.10 && aging_fit.r2 > 0.6,
              "aging link's fitted slope matches the injected doubling rate");
  shape_check(forecast.has_value() && *forecast > mc.cluster.now(),
              "threshold-crossing forecast gives advance warning");
  return finish();
}
