// Ablation: cost of the self-observability plane on the hot append path.
//
// Table I demands the monitoring system's own overhead "be well-documented";
// the paper's broader theme is that sites refuse monitoring they cannot
// price. hpcmon::obs claims its instruments are cheap enough to leave on
// everywhere: per-batch updates are a handful of relaxed atomics plus two
// steady_clock reads for the stage span. This bench proves the price two
// ways:
//
//   (a) the same append workload runs through a template hot path
//       instantiated once with the real obs:: instruments and once with
//       obs::noop:: (API-compatible empty bodies, so the instrumentation
//       compiles out entirely) — the instrumented arm must stay within 5%;
//   (b) the per-stage latency table an operator actually sees (p50/p95/p99
//       per pipeline stage) is printed from the same run, demonstrating
//       what the 5% buys.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/rng.hpp"
#include "obs/instruments.hpp"
#include "obs/registry.hpp"
#include "obs/stage.hpp"
#include "store/tsdb.hpp"

namespace hpcmon::bench {
namespace {

using core::Sample;
using core::SampleBatch;
using core::SeriesId;
using std::chrono::steady_clock;

constexpr std::uint32_t kSeries = 256;
constexpr int kSweeps = 2000;
constexpr std::size_t kChunkPoints = 512;
constexpr int kTrials = 5;

std::vector<SampleBatch> make_sweeps() {
  std::vector<SampleBatch> sweeps;
  core::Rng rng(42);
  sweeps.reserve(kSweeps);
  for (int p = 0; p < kSweeps; ++p) {
    SampleBatch b;
    b.sweep_time = (p + 1) * core::kSecond;
    b.samples.reserve(kSeries);
    for (std::uint32_t s = 0; s < kSeries; ++s) {
      b.samples.push_back(
          {SeriesId{s}, b.sweep_time, 40.0 + rng.uniform(0.0, 20.0)});
    }
    sweeps.push_back(std::move(b));
  }
  return sweeps;
}

/// The hot path under test, with the instrument set as a template
/// parameter: exactly what an instrumented ingest worker does per batch —
/// time the append, then bump a counter, a sample tally, a depth
/// high-water mark, and the latency histogram. Instantiated with
/// obs::noop::* every instrument call is an empty inline body and the
/// span's clock reads vanish with it.
template <typename CounterT, typename GaugeT, typename HistT,
          bool kTimeStages>
double run_append_loop(const std::vector<SampleBatch>& sweeps,
                       obs::HistogramSnapshot* stage_hist_out = nullptr) {
  store::TimeSeriesStore store(kChunkPoints);
  CounterT batches, samples;
  GaugeT batch_hwm;
  HistT append_us;
  const auto t0 = steady_clock::now();
  for (const auto& b : sweeps) {
    steady_clock::time_point s0{};
    if constexpr (kTimeStages) s0 = steady_clock::now();
    store.append_batch(b.samples);
    if constexpr (kTimeStages) {
      append_us.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              steady_clock::now() - s0)
              .count()));
    }
    batches.add();
    samples.add(b.size());
    batch_hwm.update_max(static_cast<double>(b.size()));
  }
  const double secs =
      std::chrono::duration<double>(steady_clock::now() - t0).count();
  if constexpr (kTimeStages) {
    if (stage_hist_out != nullptr) *stage_hist_out = append_us.snapshot();
  }
  return secs;
}

/// Best-of-N wall time: the minimum is the least noise-contaminated
/// estimate of the loop's intrinsic cost.
template <typename F>
double best_of(F&& run) {
  double best = run();
  for (int i = 1; i < kTrials; ++i) best = std::min(best, run());
  return best;
}

void print_stage_row(const char* name, const obs::HistogramSnapshot& h) {
  if (h.count == 0) {
    std::printf("  %-16s %10s\n", name, "-");
    return;
  }
  std::printf("  %-16s %8llu  %8.1f  %8.1f  %8.1f  %8llu\n", name,
              static_cast<unsigned long long>(h.count), h.quantile(0.50),
              h.quantile(0.95), h.quantile(0.99),
              static_cast<unsigned long long>(h.max));
}

}  // namespace
}  // namespace hpcmon::bench

int main(int argc, char** argv) {
  hpcmon::bench::json_init(argc, argv);
  using namespace hpcmon::bench;
  namespace obs = hpcmon::obs;
  header("Ablation: self-observability overhead on the append path",
         "Table I — transport/monitoring overhead must be well-documented");

  const auto sweeps = make_sweeps();
  const std::size_t total_samples =
      static_cast<std::size_t>(kSweeps) * kSeries;
  std::printf("workload: %d sweeps x %u series = %zu samples, best of %d\n\n",
              kSweeps, kSeries, total_samples, kTrials);

  // Warm-up absorbs first-touch costs, then measure both arms interleaved
  // (best-of-N each) so neither systematically inherits a cold cache.
  run_append_loop<obs::noop::Counter, obs::noop::Gauge, obs::noop::Histogram,
                  false>(sweeps);
  const double noop = best_of([&] {
    return run_append_loop<obs::noop::Counter, obs::noop::Gauge,
                           obs::noop::Histogram, false>(sweeps);
  });
  obs::HistogramSnapshot append_hist;
  const double instrumented = best_of([&] {
    return run_append_loop<obs::Counter, obs::Gauge, obs::Histogram, true>(
        sweeps, &append_hist);
  });

  const double overhead = instrumented / noop - 1.0;
  std::printf("noop instruments  : %8.3f ms  (%5.1f Msamples/s)\n",
              noop * 1e3, total_samples / noop / 1e6);
  std::printf("obs instruments   : %8.3f ms  (%5.1f Msamples/s)\n",
              instrumented * 1e3, total_samples / instrumented / 1e6);
  std::printf("overhead          : %+8.2f %%\n\n", overhead * 100.0);

  // What the overhead buys: the per-stage latency table. The append stage
  // comes from the instrumented run above; the query stages from a quick
  // instrumented read pass over the populated store.
  hpcmon::store::TimeSeriesStore store(kChunkPoints);
  obs::StageTimer stages;
  obs::ObsRegistry reg;
  stages.attach_to(reg);
  for (const auto& b : sweeps) {
    obs::StageTimer::Scoped span(&stages, obs::Stage::kStoreAppend);
    store.append_batch(b.samples);
  }
  for (std::uint32_t s = 0; s < kSeries; ++s) {
    obs::StageTimer::Scoped span(&stages, obs::Stage::kQueryCursor);
    const auto pts = store.query_range(
        SeriesId{s}, {0, (kSweeps + 1) * hpcmon::core::kSecond});
    if (pts.size() != static_cast<std::size_t>(kSweeps)) {
      std::printf("BUG: query returned %zu points\n", pts.size());
      return 1;
    }
  }
  const auto snap = reg.snapshot();
  std::printf("per-stage latency (us):\n");
  std::printf("  %-16s %8s  %8s  %8s  %8s  %8s\n", "stage", "n", "p50",
              "p95", "p99", "max");
  print_stage_row("store_append", *snap.histogram("stage.store_append_us"));
  print_stage_row("query_cursor", *snap.histogram("stage.query_cursor_us"));
  std::printf("\n");

  json_metric("obs.append_overhead_frac", overhead);
  shape_check(overhead < 0.05,
              "obs instruments cost < 5% over the compiled-out noop path");
  shape_check(append_hist.count == static_cast<std::uint64_t>(kSweeps),
              "every batch landed one latency histogram record");
  shape_check(snap.histogram("stage.store_append_us")->count ==
                  static_cast<std::uint64_t>(kSweeps),
              "stage timer catalogs the append stage in the obs registry");
  return finish();
}
