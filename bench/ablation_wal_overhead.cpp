// Ablation: write-ahead-log overhead on the ingest path.
//
// The WAL buys crash recovery (Sec. IV: stores must be dependable across
// restarts) at the cost of one CRC + fwrite + fflush per sample frame,
// serialized ahead of the store append. This bench bounds that cost: the
// same deterministic sweep workload is appended (a) straight into the hot
// store, (b) through the WAL first, and (c) through the WAL with small
// segments so rotation churns. The claim to check is not "the WAL is free"
// but "durability costs a bounded constant factor on the append path, and
// replay restores every record" — the trade a site accepts knowingly.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "bench_common.hpp"
#include "core/rng.hpp"
#include "resilience/wal.hpp"
#include "store/tsdb.hpp"

namespace hpcmon::bench {
namespace {

using core::Sample;
using core::SampleBatch;
using core::SeriesId;
using std::chrono::steady_clock;

constexpr std::uint32_t kSeries = 256;
constexpr int kSweeps = 1000;
constexpr std::size_t kChunkPoints = 512;

double seconds_since(steady_clock::time_point t0) {
  return std::chrono::duration<double>(steady_clock::now() - t0).count();
}

std::vector<SampleBatch> make_sweeps() {
  std::vector<SampleBatch> sweeps;
  core::Rng rng(42);
  sweeps.reserve(kSweeps);
  for (int p = 0; p < kSweeps; ++p) {
    SampleBatch b;
    b.sweep_time = (p + 1) * core::kSecond;
    b.samples.reserve(kSeries);
    for (std::uint32_t s = 0; s < kSeries; ++s) {
      b.samples.push_back(
          {SeriesId{s}, b.sweep_time, 40.0 + rng.uniform(0.0, 20.0)});
    }
    sweeps.push_back(std::move(b));
  }
  return sweeps;
}

double run_store_only(const std::vector<SampleBatch>& sweeps) {
  store::TimeSeriesStore store(kChunkPoints);
  const auto t0 = steady_clock::now();
  for (const auto& b : sweeps) store.append_batch(b.samples);
  return seconds_since(t0);
}

double run_with_wal(const std::vector<SampleBatch>& sweeps,
                    std::size_t segment_bytes,
                    resilience::WalStats* stats_out) {
  const std::string dir = "/tmp/hpcmon_bench_wal";
  std::filesystem::remove_all(dir);
  store::TimeSeriesStore store(kChunkPoints);
  resilience::WriteAheadLog wal({.dir = dir, .segment_bytes = segment_bytes});
  const auto t0 = steady_clock::now();
  for (const auto& b : sweeps) {
    wal.append(b);
    store.append_batch(b.samples);
  }
  const double secs = seconds_since(t0);
  if (stats_out != nullptr) *stats_out = wal.stats();
  return secs;
}

}  // namespace
}  // namespace hpcmon::bench

int main(int argc, char** argv) {
  hpcmon::bench::json_init(argc, argv);
  using namespace hpcmon::bench;
  header("Ablation: WAL overhead on the append path",
         "Sec. IV / Table I Data Storage — dependable ('always on') stores");

  const auto sweeps = make_sweeps();
  const std::size_t total_samples =
      static_cast<std::size_t>(kSweeps) * kSeries;
  std::printf("workload: %d sweeps x %u series = %zu samples\n\n", kSweeps,
              kSeries, total_samples);

  // Warm-up pass absorbs first-touch costs, then measure.
  run_store_only(sweeps);
  const double base = run_store_only(sweeps);
  hpcmon::resilience::WalStats wal_stats;
  const double walled = run_with_wal(sweeps, 1u << 20, &wal_stats);
  hpcmon::resilience::WalStats churn_stats;
  const double churned = run_with_wal(sweeps, 16u << 10, &churn_stats);

  const double overhead = walled / base;
  const double churn_overhead = churned / base;
  std::printf("store only        : %8.3f ms  (%5.1f Msamples/s)\n",
              base * 1e3, total_samples / base / 1e6);
  std::printf("wal + store (1MiB): %8.3f ms  overhead x%.2f, %llu segs\n",
              walled * 1e3, overhead,
              static_cast<unsigned long long>(wal_stats.segments_created));
  std::printf("wal + store (16KiB): %7.3f ms  overhead x%.2f, %llu segs\n",
              churned * 1e3, churn_overhead,
              static_cast<unsigned long long>(churn_stats.segments_created));

  // Replay the churned log and confirm nothing was lost.
  std::size_t replayed = 0;
  const auto rs = hpcmon::resilience::WriteAheadLog::replay(
      "/tmp/hpcmon_bench_wal",
      [&](hpcmon::core::SampleBatch&& b) { replayed += b.size(); });
  std::printf("replay            : %llu records, %zu samples, %s\n\n",
              static_cast<unsigned long long>(rs.records), replayed,
              rs.to_string().c_str());

  shape_check(wal_stats.appended_records == static_cast<std::uint64_t>(kSweeps),
              "every sweep frame is WAL-appended before the store append");
  shape_check(rs.records == static_cast<std::uint64_t>(kSweeps) &&
                  replayed == total_samples,
              "replay restores every appended record and sample");
  // Generous bound: fwrite+fflush per 256-sample batch amortizes well; a
  // durable append path should stay within an order of magnitude of the
  // bare in-memory append, and typically far closer.
  json_metric("wal.append_overhead_x", overhead);
  json_metric("wal.churn_vs_walled_x", churned / walled);
  shape_check(overhead < 10.0,
              "WAL durability costs < 10x the bare hot-tier append");
  shape_check(churned < walled * 8.0,
              "aggressive 16KiB segment rotation does not blow up the cost");
  std::filesystem::remove_all("/tmp/hpcmon_bench_wal");
  return finish();
}
