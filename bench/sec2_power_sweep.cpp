// Sec. II.9 (SNL): p-state sweeps for energy efficiency.
//
// "SNL, like KAUST, also investigates power profiling, sweeping
// configuration parameters such as p-state, power cap, node type, solver
// algorithm choice, and memory placement, with the goal of improving
// application and system energy efficiency while maintaining performance
// targets."
//
// We sweep the machine p-state for a compute-bound and a communication-bound
// application, measuring runtime and energy-to-solution for each point, then
// report the best p-state that keeps slowdown within a 10% performance
// target. The expected shape: downclocking barely slows the comm-bound app
// (its bottleneck is the fabric) so it can run much lower p-states within the
// target, while the compute-bound app pays ~1/f in runtime.
#include "bench_common.hpp"

namespace hpcmon::bench {
namespace {

sim::ClusterParams machine() {
  sim::ClusterParams p;
  p.shape.cabinets = 2;
  p.shape.chassis_per_cabinet = 2;
  p.shape.blades_per_chassis = 4;
  p.shape.nodes_per_blade = 4;  // 64 nodes
  p.fabric_kind = sim::FabricKind::kTorus3D;
  p.power.noise_w = 0.0;              // clean energy accounting
  p.power.blower_w_per_cabinet = 400;  // node-dominated draw for the sweep
  p.tick = 5 * core::kSecond;
  p.seed = 88;
  return p;
}

/// A genuinely communication-bound kernel: cores spend most cycles waiting
/// on the fabric (low cpu_util), so downclocking them is nearly free.
sim::AppProfile app_comm_bound() {
  auto p = sim::app_network_heavy();
  p.name = "comm_bound";
  p.phases[0].cpu_util = 0.20;
  p.phases[0].net_gbps_per_node = 3.0;
  return p;
}

struct SweepPoint {
  double pstate = 1.0;
  double runtime_s = 0.0;
  double energy_mj = 0.0;  // megajoules to solution
};

SweepPoint run_point(const sim::AppProfile& app, double pstate) {
  sim::Cluster cluster(machine());
  cluster.set_all_pstates(pstate);
  sim::JobRequest req;
  req.num_nodes = cluster.topology().num_nodes();
  req.nominal_runtime = 10 * core::kMinute;
  req.profile = app;
  const auto id = cluster.scheduler().submit(0, std::move(req));
  // Step until the job completes.
  double energy_at_start = -1.0;
  SweepPoint point;
  point.pstate = pstate;
  while (true) {
    cluster.run_for(cluster.tick_interval());
    const auto* rec = cluster.scheduler().job(id);
    if (rec->state == sim::JobState::kRunning && energy_at_start < 0) {
      energy_at_start = cluster.power().energy_joules();
    }
    if (rec->state == sim::JobState::kCompleted) {
      point.runtime_s = core::to_seconds(rec->actual_runtime());
      point.energy_mj =
          (cluster.power().energy_joules() - energy_at_start) / 1e6;
      return point;
    }
    if (cluster.now() > 2 * core::kHour) {
      point.runtime_s = -1;
      return point;
    }
  }
}

/// Lowest p-state whose runtime stays within `target` of the p=1.0 runtime.
double best_within_target(const std::vector<SweepPoint>& sweep, double target) {
  const double base = sweep.front().runtime_s;  // sweep[0] is p=1.0
  double best = 1.0;
  for (const auto& pt : sweep) {
    if (pt.runtime_s <= base * target && pt.pstate < best) best = pt.pstate;
  }
  return best;
}

}  // namespace
}  // namespace hpcmon::bench

int main() {
  using namespace hpcmon;
  using namespace hpcmon::bench;

  header("Sec II.9: p-state sweep — energy vs performance target",
         "Ahlgren et al. 2018, Sec. II.9 (SNL power sweeps)");

  const double pstates[] = {1.0, 0.9, 0.8, 0.7, 0.6, 0.5};
  struct AppSweep {
    const char* label;
    sim::AppProfile app;
    std::vector<SweepPoint> points;
  };
  AppSweep sweeps[] = {
      {"compute_bound", sim::app_compute_bound(), {}},
      {"comm_bound", app_comm_bound(), {}},
  };
  for (auto& s : sweeps) {
    for (const double p : pstates) s.points.push_back(run_point(s.app, p));
  }

  std::printf("%-14s  p-state  runtime(s)  slowdown  energy(MJ)  savings\n",
              "app");
  for (const auto& s : sweeps) {
    for (const auto& pt : s.points) {
      std::printf("%-14s  %.2f     %7.0f     %.2fx     %7.2f     %+.0f%%\n",
                  s.label, pt.pstate, pt.runtime_s,
                  pt.runtime_s / s.points[0].runtime_s, pt.energy_mj,
                  100.0 * (1.0 - pt.energy_mj / s.points[0].energy_mj));
    }
  }
  const double compute_best = best_within_target(sweeps[0].points, 1.10);
  const double comm_best = best_within_target(sweeps[1].points, 1.10);
  std::printf("\nlowest p-state within a 10%% performance target:\n");
  std::printf("  compute_bound: %.2f\n", compute_best);
  std::printf("  comm_bound:    %.2f\n\n", comm_best);

  // Shape checks.
  const auto& cb = sweeps[0].points;
  const auto& nh = sweeps[1].points;
  shape_check(cb.back().runtime_s > cb.front().runtime_s * 1.5,
              "compute-bound runtime scales strongly (~1/f) with p-state");
  shape_check(nh.back().runtime_s < nh.front().runtime_s * 1.3,
              "comm-bound runtime is nearly flat across the sweep "
              "(cores wait on the fabric)");
  shape_check(comm_best < compute_best,
              "the comm-bound app can hold the performance target at a lower "
              "p-state (the sweep's operational payoff)");
  // Energy saved at the best-within-target point.
  auto energy_at = [](const std::vector<SweepPoint>& sweep, double pstate) {
    for (const auto& pt : sweep) {
      if (pt.pstate == pstate) return pt.energy_mj;
    }
    return sweep.front().energy_mj;
  };
  const double comm_savings =
      1.0 - energy_at(nh, comm_best) / nh.front().energy_mj;
  std::printf("comm-bound energy savings within target: %.0f%%\n",
              comm_savings * 100.0);
  shape_check(comm_savings > 0.08,
              "holding the target still saves >8% energy on the comm-bound "
              "app ('efficiency while maintaining performance targets')");
  return finish();
}
