// Ablation: compressed chunked TSDB vs naive row store (Sec. IV-C).
//
// The paper: "canonical implementations of SQL-based databases lack
// scalability with respect to ingest, deletion, and query impacts and
// performance" and ALCF chose InfluxDB "for its superior data compression
// and query performance for high-volume time series data". This bench
// quantifies both claims on identical telemetry: a naive row store (the
// SQL-table access pattern: one 16-byte row per point, full scans filtered
// by series+time) vs the chunked Gorilla-compressed TimeSeriesStore.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "store/tsdb.hpp"

namespace hpcmon::bench {
namespace {

using core::SeriesId;
using core::TimedValue;

/// SQL-table-style baseline: an append-only row log, range queries scan.
class NaiveRowStore {
 public:
  struct Row {
    std::uint32_t series;
    core::TimePoint time;
    double value;
  };
  void append(SeriesId s, core::TimePoint t, double v) {
    rows_.push_back({core::raw(s), t, v});
  }
  std::vector<TimedValue> query_range(SeriesId s,
                                      const core::TimeRange& range) const {
    std::vector<TimedValue> out;
    for (const auto& r : rows_) {  // full scan, as an unindexed table would
      if (r.series == core::raw(s) && range.contains(r.time)) {
        out.push_back({r.time, r.value});
      }
    }
    return out;
  }
  std::size_t byte_size() const { return rows_.size() * sizeof(Row); }

 private:
  std::vector<Row> rows_;
};

// Telemetry workload: S series, N points each, 1-minute cadence, smooth
// values with noise (what node/power/link metrics look like).
constexpr int kSeries = 64;
constexpr int kPoints = 4096;

std::vector<std::vector<TimedValue>> make_telemetry() {
  // Sensor-realistic values: platform sensors (SEDC power/temperature,
  // counters) report quantized readings, so consecutive samples often repeat
  // or differ in few mantissa bits — the regime Gorilla compression targets.
  std::vector<std::vector<TimedValue>> data(kSeries);
  core::Rng rng(42);
  for (int s = 0; s < kSeries; ++s) {
    double level = rng.uniform(50.0, 400.0);
    for (int i = 0; i < kPoints; ++i) {
      level += rng.normal(0.0, 0.5);
      const double reading = std::round(level * 4.0) / 4.0;  // 0.25-unit ADC
      data[s].push_back({static_cast<core::TimePoint>(i) * core::kMinute,
                         reading});
    }
  }
  return data;
}

const std::vector<std::vector<TimedValue>>& telemetry() {
  static const auto data = make_telemetry();
  return data;
}

void BM_Ingest_Tsdb(benchmark::State& state) {
  for (auto _ : state) {
    store::TimeSeriesStore store;
    for (int s = 0; s < kSeries; ++s) {
      const SeriesId sid{static_cast<std::uint32_t>(s)};
      for (const auto& p : telemetry()[s]) store.append(sid, p.time, p.value);
    }
    benchmark::DoNotOptimize(store.stats().points);
  }
  state.SetItemsProcessed(state.iterations() * kSeries * kPoints);
}
BENCHMARK(BM_Ingest_Tsdb);

void BM_Ingest_NaiveRows(benchmark::State& state) {
  for (auto _ : state) {
    NaiveRowStore store;
    for (int s = 0; s < kSeries; ++s) {
      const SeriesId sid{static_cast<std::uint32_t>(s)};
      for (const auto& p : telemetry()[s]) store.append(sid, p.time, p.value);
    }
    benchmark::DoNotOptimize(store.byte_size());
  }
  state.SetItemsProcessed(state.iterations() * kSeries * kPoints);
}
BENCHMARK(BM_Ingest_NaiveRows);

void BM_Query_Tsdb(benchmark::State& state) {
  store::TimeSeriesStore store;
  for (int s = 0; s < kSeries; ++s) {
    const SeriesId sid{static_cast<std::uint32_t>(s)};
    for (const auto& p : telemetry()[s]) store.append(sid, p.time, p.value);
  }
  const core::TimeRange window{1000 * core::kMinute, 1360 * core::kMinute};
  for (auto _ : state) {
    const auto pts = store.query_range(SeriesId{7}, window);
    benchmark::DoNotOptimize(pts.size());
  }
}
BENCHMARK(BM_Query_Tsdb);

void BM_Query_NaiveRows(benchmark::State& state) {
  NaiveRowStore store;
  for (int s = 0; s < kSeries; ++s) {
    const SeriesId sid{static_cast<std::uint32_t>(s)};
    for (const auto& p : telemetry()[s]) store.append(sid, p.time, p.value);
  }
  const core::TimeRange window{1000 * core::kMinute, 1360 * core::kMinute};
  for (auto _ : state) {
    const auto pts = store.query_range(SeriesId{7}, window);
    benchmark::DoNotOptimize(pts.size());
  }
}
BENCHMARK(BM_Query_NaiveRows);

void BM_Downsample_Tsdb(benchmark::State& state) {
  store::TimeSeriesStore store;
  const SeriesId sid{0};
  for (const auto& p : telemetry()[0]) store.append(sid, p.time, p.value);
  for (auto _ : state) {
    const auto ds = store.downsample(sid, {0, kPoints * core::kMinute},
                                     core::kHour, store::Agg::kMean);
    benchmark::DoNotOptimize(ds.size());
  }
}
BENCHMARK(BM_Downsample_Tsdb);

int summary() {
  std::printf("\n---- storage ablation summary (Sec. IV-C) ----\n");
  store::TimeSeriesStore tsdb;
  NaiveRowStore rows;
  for (int s = 0; s < kSeries; ++s) {
    const SeriesId sid{static_cast<std::uint32_t>(s)};
    for (const auto& p : telemetry()[s]) {
      tsdb.append(sid, p.time, p.value);
      rows.append(sid, p.time, p.value);
    }
  }
  const auto st = tsdb.stats();
  // Only sealed chunks are compressed; compare bytes/point on sealed data.
  const std::size_t sealed_points = st.points - st.head_points;
  const double tsdb_bpp =
      static_cast<double>(st.compressed_bytes) / sealed_points;
  const double raw_bpp = 16.0;  // (i64 time, f64 value)
  std::printf("points stored:           %zu x %d series\n",
              static_cast<std::size_t>(kPoints), kSeries);
  std::printf("naive rows bytes/point:  %.2f\n", raw_bpp);
  std::printf("tsdb bytes/point:        %.2f (sealed chunks)\n", tsdb_bpp);
  std::printf("compression ratio:       %.1fx\n", raw_bpp / tsdb_bpp);
  // Query correctness parity.
  const core::TimeRange window{100 * core::kMinute, 200 * core::kMinute};
  const auto a = tsdb.query_range(SeriesId{3}, window);
  const auto b = rows.query_range(SeriesId{3}, window);
  const bool equal = a == b;
  std::printf("query parity:            %s (%zu points)\n",
              equal ? "identical results" : "MISMATCH", a.size());
  int failures = 0;
  auto check = [&](bool ok, const char* claim) {
    std::printf("SHAPE CHECK [%s] %s\n", ok ? "PASS" : "FAIL", claim);
    if (!ok) ++failures;
  };
  check(raw_bpp / tsdb_bpp >= 8.0,
        "Gorilla-style compression >=8x smaller than row storage on "
        "smooth telemetry");
  check(equal, "compressed store returns identical query results");
  return failures;
}

}  // namespace
}  // namespace hpcmon::bench

int main(int argc, char** argv) {
  // `--json out.json` is the repo-wide bench flag; translate it to google
  // benchmark's own JSON reporter so every ablation_* binary speaks it.
  std::vector<std::string> rewritten(argv, argv + argc);
  for (std::size_t i = 1; i < rewritten.size(); ++i) {
    if (rewritten[i] == "--json" && i + 1 < rewritten.size()) {
      rewritten[i] = "--benchmark_out=" + rewritten[i + 1];
      rewritten[i + 1] = "--benchmark_out_format=json";
    } else if (rewritten[i].rfind("--json=", 0) == 0) {
      rewritten[i] = "--benchmark_out=" + rewritten[i].substr(7);
      rewritten.insert(rewritten.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                       "--benchmark_out_format=json");
    }
  }
  std::vector<char*> args;
  for (auto& a : rewritten) args.push_back(a.data());
  int args_n = static_cast<int>(args.size());
  benchmark::Initialize(&args_n, args.data());
  benchmark::RunSpecifiedBenchmarks();
  return hpcmon::bench::summary();
}
