// Sec. II.10 (HLRS): aggressor/victim classification from runtime
// variability.
//
// "Applications having high runtime variability are classified as 'victim'
// applications and those running concurrently that don't hit the 'victim'
// variability threshold are considered as possible 'aggressor' applications
// where the resource being contended for is assumed to be the HSN."
//
// We run repeated fixed-size instances of a communication-bound app
// (potential victim), a compute-bound app (bystander), and schedule an HSN
// traffic blaster during half the victim runs. The analyzer must flag the
// victim by CV, not flag the others, and rank the blaster as top suspect.
#include "bench_common.hpp"

#include "analysis/variability.hpp"

namespace hpcmon::bench {
namespace {

sim::ClusterParams machine() {
  sim::ClusterParams p;
  p.shape.cabinets = 2;
  p.shape.chassis_per_cabinet = 2;
  p.shape.blades_per_chassis = 6;
  p.shape.nodes_per_blade = 4;  // 96 nodes
  p.fabric_kind = sim::FabricKind::kTorus3D;
  // Fragmented placement (the pre-TAS Blue Waters / Hazel Hen reality):
  // jobs interleave across the torus, so their traffic shares links.
  p.placement = sim::PlacementPolicy::kRandom;
  p.tick = 5 * core::kSecond;
  p.seed = 1;
  return p;
}

}  // namespace
}  // namespace hpcmon::bench

int main() {
  using namespace hpcmon;
  using namespace hpcmon::bench;

  header("Sec II.10: aggressor/victim classification by runtime variability",
         "Ahlgren et al. 2018, Sec. II.10 (HLRS Hazel Hen)");

  MonitoredCluster mc(machine());
  // 12 victim runs, every 12 minutes. The aggressor runs during the odd
  // victim runs; a compute-bound bystander runs throughout.
  sim::JobRequest victim;
  victim.num_nodes = 16;
  victim.nominal_runtime = 5 * core::kMinute;
  victim.profile = sim::app_network_heavy();

  sim::JobRequest aggressor;
  aggressor.num_nodes = 64;
  aggressor.nominal_runtime = 8 * core::kMinute;
  aggressor.profile = sim::app_aggressor();

  sim::JobRequest bystander;
  bystander.num_nodes = 8;
  bystander.nominal_runtime = 5 * core::kMinute;
  bystander.profile = sim::app_compute_bound();

  for (int i = 0; i < 12; ++i) {
    const auto t = (5 + 12 * i) * core::kMinute;
    mc.cluster.submit_at(t, victim);
    mc.cluster.submit_at(t + 6 * core::kMinute, bystander);
    if (i % 2 == 1) mc.cluster.submit_at(t - core::kMinute, aggressor);
  }
  mc.cluster.run_for(160 * core::kMinute);

  analysis::VariabilityParams params;
  params.victim_cv_threshold = 0.08;
  analysis::VariabilityAnalyzer analyzer(params);
  const auto classes = analyzer.classify(mc.jobs);
  std::printf("app              runs  mean_runtime  cv      victim?\n");
  for (const auto& c : classes) {
    std::printf("%-16s %-5zu %8.0f s    %.4f  %s\n", c.app_name.c_str(),
                c.runs, c.mean_runtime_s, c.cv, c.is_victim ? "YES" : "no");
  }
  const auto suspects = analyzer.suspects(mc.jobs);
  std::printf("\naggressor suspects (by overlap with victim slow-runs):\n");
  for (const auto& s : suspects) {
    std::printf("  %-16s overlaps=%zu (%.0f%% of its runs)\n",
                s.app_name.c_str(), s.overlaps, s.overlap_fraction * 100.0);
  }
  std::printf("\n");

  bool victim_flagged = false;
  bool bystander_flagged = false;
  bool aggressor_flagged_victim = false;
  for (const auto& c : classes) {
    if (c.app_name == "network_heavy") victim_flagged = c.is_victim;
    if (c.app_name == "compute_bound") bystander_flagged = c.is_victim;
    if (c.app_name == "aggressor") aggressor_flagged_victim = c.is_victim;
  }
  shape_check(victim_flagged,
              "communication-bound app classified as victim (high runtime CV)");
  shape_check(!bystander_flagged,
              "compute-bound app not classified as victim");
  shape_check(!aggressor_flagged_victim,
              "the traffic blaster itself is not a victim (insensitive to "
              "its own congestion)");
  shape_check(!suspects.empty() && suspects[0].app_name == "aggressor",
              "the blaster ranks as the top aggressor suspect");
  return finish();
}
