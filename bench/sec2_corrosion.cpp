// Sec. II.6 (ORNL): datacenter-environment monitoring after the GPU
// sulfur-corrosion failure campaign.
//
// "ORNL began to see an increasing rate of GPU failures. ... it was
// determined that NVIDIA's manufacturing process for the SXM had not used
// sulfur-resistant materials. ... To ensure new and replacement hardware is
// free of this issue, ORNL now monitors their data center environment to
// ensure that ASHRAE standards for particulate and corrosive gases are
// [not] exceeded."
//
// Two 120-day eras on identical GPU fleets: a clean datacenter vs one with a
// sustained corrosive-gas excursion starting at day 30. We compare failure
// trajectories, show the environment watch (DetectorBank ASHRAE threshold)
// fires the day the excursion starts — months before the failure wave — and
// that GPU health trends detect the wave itself.
#include "bench_common.hpp"

#include "analysis/detector_bank.hpp"
#include "analysis/trend.hpp"
#include "viz/chart.hpp"

namespace hpcmon::bench {
namespace {

sim::ClusterParams machine() {
  sim::ClusterParams p;
  p.shape.cabinets = 2;
  p.shape.chassis_per_cabinet = 3;
  p.shape.blades_per_chassis = 4;
  p.shape.nodes_per_blade = 4;  // 96 nodes
  p.shape.gpu_node_fraction = 1.0;
  p.fabric_kind = sim::FabricKind::kDragonfly;
  p.tick = 10 * core::kMinute;  // 120 days at coarse resolution
  p.seed = 1977;
  return p;
}

struct EraResult {
  std::vector<core::TimedValue> bad_gpus;     // degraded+failed over time
  core::TimePoint env_alert_at = -1;          // first ASHRAE alert
  int final_bad = 0;
};

EraResult run_era(bool excursion) {
  MonitoredCluster mc(machine(), 6 * core::kHour);
  analysis::DetectorBank bank(mc.cluster.registry());
  bank.watch("ashrae", "facility.corrosion_ppb",
             analysis::above_factory(10.0, 2.0));
  EraResult result;
  // Tap the sample stream for the environment watch.
  mc.router.subscribe(transport::FrameType::kSamples,
                      [&](const transport::Frame& f) {
                        if (auto b = transport::decode_samples(f)) {
                          for (const auto& a : bank.process(b.value())) {
                            if (result.env_alert_at < 0) {
                              result.env_alert_at = a.event.time;
                            }
                          }
                        }
                      });
  const auto excursion_at = 30 * core::kDay;
  if (excursion) {
    mc.cluster.inject_corrosion_excursion(excursion_at, 25.0, 90 * core::kDay);
  }
  for (int day = 1; day <= 120; ++day) {
    mc.cluster.run_for(core::kDay);
    const int bad = mc.cluster.gpus().count(sim::GpuHealth::kDegraded) +
                    mc.cluster.gpus().count(sim::GpuHealth::kFailed);
    result.bad_gpus.push_back({mc.cluster.now(), static_cast<double>(bad)});
  }
  result.final_bad = static_cast<int>(result.bad_gpus.back().value);
  return result;
}

}  // namespace
}  // namespace hpcmon::bench

int main() {
  using namespace hpcmon;
  using namespace hpcmon::bench;

  header("Sec II.6: corrosive-gas excursion drives GPU failure wave",
         "Ahlgren et al. 2018, Sec. II.6 (ORNL Titan)");
  std::printf("96 GPUs, 120 days; corrosion excursion (25 ppb over baseline)\n"
              "from day 30 in the affected era.\n\n");

  const auto clean = run_era(false);
  const auto corroded = run_era(true);

  viz::ChartOptions opt;
  opt.title = "unhealthy GPUs (degraded+failed) over 120 days";
  opt.height = 10;
  std::printf("%s\n",
              viz::render_ascii({{"clean datacenter", clean.bad_gpus},
                                 {"corrosion excursion", corroded.bad_gpus}},
                                opt)
                  .c_str());
  std::printf("final unhealthy GPUs: clean=%d corroded=%d\n", clean.final_bad,
              corroded.final_bad);
  std::printf("ASHRAE environment alert: clean=%s corroded=%s\n\n",
              clean.env_alert_at < 0
                  ? "(never)"
                  : core::format_time(clean.env_alert_at).c_str(),
              corroded.env_alert_at < 0
                  ? "(never)"
                  : core::format_time(corroded.env_alert_at).c_str());

  shape_check(corroded.final_bad >= 3 * std::max(1, clean.final_bad) &&
                  corroded.final_bad >= 10,
              "the excursion era shows a much higher GPU failure count "
              "('an increasing rate of GPU failures')");
  shape_check(clean.env_alert_at < 0,
              "no ASHRAE alert in the clean datacenter");
  const auto excursion_at = 30 * core::kDay;
  shape_check(corroded.env_alert_at >= excursion_at &&
                  corroded.env_alert_at < excursion_at + core::kDay,
              "environment watch fires within a day of the excursion onset");
  // The env alert leads the failure wave by weeks: when the alert fired,
  // the fleet was still essentially healthy.
  double bad_at_alert = 0.0;
  for (const auto& p : corroded.bad_gpus) {
    if (p.time <= corroded.env_alert_at) bad_at_alert = p.value;
  }
  shape_check(bad_at_alert <= 0.1 * corroded.final_bad,
              "the environment alert leads the failure wave (ORNL's "
              "prevention rationale)");
  // Failure trajectory itself shows a rising trend in the corroded era.
  const auto fit = analysis::fit_trend(
      {corroded.bad_gpus.begin() + 30, corroded.bad_gpus.end()});
  shape_check(fit.slope_per_hour > 0 && fit.r2 > 0.7,
              "GPU health trend confirms a sustained failure wave");
  return finish();
}
