// Fig 2 (NERSC): periodic benchmark suite tracked over time; degradation
// onsets are "apparent in visualizations tracking performance over time and
// are used by staff to drive further investigation".
//
// We run the probe suite every 10 minutes for 2 simulated days, inject a
// filesystem degradation and an HSN congestion storm at known times, plot
// the probe series, and run onset detection — checking the detected onsets
// land at the injection times and that unperturbed probes stay quiet.
#include "bench_common.hpp"

#include "analysis/changepoint.hpp"
#include "collect/probes.hpp"
#include "viz/chart.hpp"

namespace hpcmon::bench {
namespace {

sim::ClusterParams machine() {
  sim::ClusterParams p;
  p.shape.cabinets = 2;
  p.shape.chassis_per_cabinet = 2;
  p.shape.blades_per_chassis = 4;
  p.shape.nodes_per_blade = 4;  // 64 nodes
  p.fabric_kind = sim::FabricKind::kTorus3D;
  p.tick = 10 * core::kSecond;
  p.seed = 77;
  return p;
}

}  // namespace
}  // namespace hpcmon::bench

int main() {
  using namespace hpcmon;
  using namespace hpcmon::bench;

  header("Fig 2: benchmark-suite performance over time with onsets",
         "Ahlgren et al. 2018, Fig. 2 (NERSC Edison/Cori)");

  MonitoredCluster mc(machine(), 5 * core::kMinute);
  // Probe suite on a 10-minute cadence (LANL/NERSC practice).
  collect::ProbeConfig pc;
  pc.probe_nodes = {0, 4};  // ping-pong crosses the router0->router1 link
  pc.noise_frac = 0.02;
  mc.collection.add_sampler(
      std::make_unique<collect::ProbeSuite>(mc.cluster, pc, core::Rng(5)),
      10 * core::kMinute, collect::store_sink(mc.tsdb));

  // Ground-truth degradations.
  const auto fs_fault_at = 10 * core::kHour;
  const auto fs_fault_len = 8 * core::kHour;
  mc.cluster.inject_ost_slowdown(fs_fault_at, 0, 1, 6.0, fs_fault_len);
  const auto net_fault_at = 30 * core::kHour;
  // A persistent aggressor crossing the probe path (storm on router 0's x+
  // link) — installed directly as fabric flows.
  mc.cluster.events().schedule_at(net_fault_at, [&mc](core::TimePoint) {
    std::vector<sim::Flow> storm;
    for (int i = 0; i < 4; ++i) storm.push_back({i, i + 4, 6.0});
    mc.cluster.fabric().set_job_flows(core::JobId{100000}, storm);
  });
  mc.cluster.events().schedule_at(net_fault_at + 8 * core::kHour,
                                  [&mc](core::TimePoint) {
                                    mc.cluster.fabric().clear_job_flows(
                                        core::JobId{100000});
                                  });

  std::printf("Running 48 simulated hours, probes every 10 min...\n");
  std::printf("Injected: OST slowdown at t=%s; HSN congestion at t=%s\n\n",
              core::format_time(fs_fault_at).c_str(),
              core::format_time(net_fault_at).c_str());
  mc.cluster.run_for(48 * core::kHour);

  auto& reg = mc.cluster.registry();
  const auto fs_probe = reg.series("probe.fs_read_ms",
                                   mc.cluster.topology().ost(0, 1));
  const auto net_probe =
      reg.series("probe.pingpong_usec", mc.cluster.topology().node(0));
  const auto dgemm_probe =
      reg.series("probe.dgemm_seconds", mc.cluster.topology().node(0));
  const core::TimeRange all{0, mc.cluster.now()};
  const auto fs_series = mc.tsdb.query_range(fs_probe, all);
  const auto net_series = mc.tsdb.query_range(net_probe, all);
  const auto dgemm_series = mc.tsdb.query_range(dgemm_probe, all);

  viz::ChartOptions opt;
  opt.title = "probe results over 48h (NERSC-style trending page)";
  opt.height = 12;
  std::printf("%s\n", viz::render_ascii({{"fs read probe (ms), ost1", fs_series},
                                         {"pingpong probe (us)", net_series}},
                                        opt)
                          .c_str());

  // Onset detection (the automated version of "apparent in visualizations").
  const auto fs_onsets = analysis::detect_onsets(fs_series);
  const auto net_onsets = analysis::detect_onsets(net_series);
  const auto dgemm_onsets = analysis::detect_onsets(dgemm_series);

  auto print_onsets = [](const char* name,
                         const std::vector<analysis::Onset>& onsets) {
    std::printf("%s onsets:\n", name);
    for (const auto& o : onsets) {
      std::printf("  at %s: %.2f -> %.2f (%.0f sigma)\n",
                  core::format_time(o.time).c_str(), o.before_mean,
                  o.after_mean, o.shift_sigma);
    }
    if (onsets.empty()) std::printf("  (none)\n");
  };
  print_onsets("fs probe", fs_onsets);
  print_onsets("network probe", net_onsets);
  print_onsets("dgemm probe", dgemm_onsets);
  std::printf("\n");

  auto has_onset_near = [](const std::vector<analysis::Onset>& onsets,
                           core::TimePoint when, bool upward) {
    for (const auto& o : onsets) {
      const auto d = o.time > when ? o.time - when : when - o.time;
      if (d <= core::kHour && (o.after_mean > o.before_mean) == upward) {
        return true;
      }
    }
    return false;
  };

  shape_check(has_onset_near(fs_onsets, fs_fault_at, true),
              "fs probe onset detected within 1h of the OST degradation");
  shape_check(has_onset_near(fs_onsets, fs_fault_at + fs_fault_len, false),
              "fs probe recovery detected when the degradation ends");
  shape_check(has_onset_near(net_onsets, net_fault_at, true),
              "network probe onset detected within 1h of the congestion storm");
  shape_check(dgemm_onsets.empty(),
              "unperturbed compute probe shows no onsets (no false alarms)");
  return finish();
}
