// Ablation: clock drift vs cross-component association (Sec. III-A).
//
// "Associating numerical or log events over components and time is
// particularly tricky when a single global timestamp is unavailable as local
// clock drift can result in erroneous associations."
//
// Experiment 1: events occur simultaneously on pairs of components; each
// component stamps with its own drifting clock. We sweep drift severity and
// measure association recall for exact-timestamp matching vs windowed
// matching.
//
// Experiment 2: synchronized vs locally-stamped sampling on a live cluster —
// fraction of sweeps where all nodes share one timestamp (what makes
// aggregate_across and cross-subsystem joins work).
#include "bench_common.hpp"

#include "analysis/correlate.hpp"
#include "collect/samplers.hpp"

namespace hpcmon::bench {
namespace {

struct DriftCase {
  double skew_ppm_sigma;
  core::Duration walk_sigma;
};

void experiment_association() {
  std::printf(
      "experiment 1: association recall, 500 simultaneous event pairs over "
      "8h\n");
  std::printf(
      "drift(skew ppm, walk)   exact-match recall   windowed(+/-15s) recall\n");
  const DriftCase cases[] = {
      {0.0, 0},
      {20.0, core::kMillisecond},
      {200.0, 10 * core::kMillisecond},
      {2000.0, 50 * core::kMillisecond},
  };
  bool exact_degrades = false;
  bool windowed_holds = true;
  double exact_recall_nodrift = 0.0;
  for (const auto& dc : cases) {
    core::Rng rng(11);
    core::DriftClock::Params pa;
    pa.offset0 = static_cast<core::Duration>(rng.normal(0.0, 5e3));
    pa.skew_ppm = rng.normal(0.0, dc.skew_ppm_sigma);
    pa.walk_sigma = dc.walk_sigma;
    core::DriftClock::Params pb = pa;
    pb.offset0 = static_cast<core::Duration>(rng.normal(0.0, 5e3));
    pb.skew_ppm = rng.normal(0.0, dc.skew_ppm_sigma);
    core::DriftClock clock_a(pa, rng.fork());
    core::DriftClock clock_b(pb, rng.fork());

    std::vector<analysis::Occurrence> a;
    std::vector<analysis::Occurrence> b;
    for (int i = 0; i < 500; ++i) {
      // True simultaneous events on both components, stamped locally.
      const core::TimePoint t = (i + 1) * core::kMinute;
      a.push_back({clock_a.local_time(t), core::ComponentId{1}});
      b.push_back({clock_b.local_time(t), core::ComponentId{2}});
    }
    // Exact = must land in the same 100ms collection slot; windowed = the
    // +/-15s tolerance a drift-aware correlator would use.
    const auto exact = analysis::associate(a, b, 100 * core::kMillisecond / 2);
    const auto windowed = analysis::associate(a, b, 15 * core::kSecond);
    std::printf("(%6.0f, %4lldms)        %.3f                %.3f\n",
                dc.skew_ppm_sigma,
                static_cast<long long>(dc.walk_sigma / core::kMillisecond),
                exact.recall_a(), windowed.recall_a());
    if (dc.skew_ppm_sigma == 0.0) exact_recall_nodrift = exact.recall_a();
    if (dc.skew_ppm_sigma >= 20.0 && exact.recall_a() < 0.5) {
      exact_degrades = true;
    }
    if (dc.skew_ppm_sigma <= 200.0 && windowed.recall_a() < 0.95) {
      windowed_holds = false;
    }
  }
  std::printf("\n");
  json_metric("assoc.exact_recall_nodrift", exact_recall_nodrift);
  shape_check(exact_recall_nodrift > 0.99,
              "without drift, exact matching associates everything");
  shape_check(exact_degrades,
              "with realistic drift, exact-timestamp association collapses");
  shape_check(windowed_holds,
              "skew-tolerant (+/-15s) association stays >95% through "
              "moderate drift");
}

void experiment_sampling() {
  std::printf("experiment 2: synchronized vs locally-stamped sampling\n");
  sim::ClusterParams params;
  params.shape.cabinets = 1;
  params.shape.chassis_per_cabinet = 2;
  params.shape.blades_per_chassis = 4;
  params.shape.nodes_per_blade = 4;
  params.clock_drift = true;
  params.drift_skew_ppm_sigma = 500.0;
  params.tick = 5 * core::kSecond;
  params.seed = 9;
  sim::Cluster cluster(params);

  store::TimeSeriesStore sync_store;
  store::TimeSeriesStore local_store;
  collect::CollectionService service(cluster);
  service.add_sampler(
      std::make_unique<collect::NodeSampler>(cluster, /*stamp_local=*/false),
      core::kMinute, collect::store_sink(sync_store));
  service.add_sampler(
      std::make_unique<collect::NodeSampler>(cluster, /*stamp_local=*/true),
      core::kMinute, collect::store_sink(local_store));
  cluster.run_for(2 * core::kHour);

  auto alignment = [&](const store::TimeSeriesStore& store) {
    // For each sweep timestamp of node 0, count how many nodes have a sample
    // at exactly that timestamp.
    auto& reg = cluster.registry();
    const auto base = store.query_range(
        reg.series("node.cpu_util", cluster.topology().node(0)),
        {0, cluster.now()});
    if (base.empty()) return 0.0;
    std::size_t aligned = 0;
    std::size_t total = 0;
    for (const auto& p : base) {
      for (int n = 1; n < cluster.topology().num_nodes(); ++n) {
        const auto pts = store.query_range(
            reg.series("node.cpu_util", cluster.topology().node(n)),
            {p.time, p.time + 1});
        ++total;
        if (!pts.empty()) ++aligned;
      }
    }
    return static_cast<double>(aligned) / static_cast<double>(total);
  };
  const double sync_aligned = alignment(sync_store);
  const double local_aligned = alignment(local_store);
  std::printf("  synchronized sweep alignment:    %.3f\n", sync_aligned);
  std::printf("  locally-stamped alignment:       %.3f\n\n", local_aligned);
  json_metric("sampling.sync_aligned_frac", sync_aligned);
  json_metric("sampling.local_aligned_frac", local_aligned);
  shape_check(sync_aligned > 0.999,
              "synchronized sweeps give one global timestamp per sweep");
  shape_check(local_aligned < 0.2,
              "locally-stamped samples rarely align across nodes");
}

}  // namespace
}  // namespace hpcmon::bench

int main(int argc, char** argv) {
  hpcmon::bench::json_init(argc, argv);
  using namespace hpcmon::bench;
  header("Ablation: clock drift vs cross-component association",
         "Ahlgren et al. 2018, Sec. III-A");
  experiment_association();
  experiment_sampling();
  return finish();
}
